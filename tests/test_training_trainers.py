"""Tests for the single-machine and distributed full-batch trainers."""

import numpy as np
import pytest

from repro import nn
from repro.core import SARConfig
from repro.datasets import make_sbm_dataset, ogbn_mag_mini
from repro.training import DistributedTrainer, FullBatchTrainer, TrainingConfig
from repro.utils.seed import set_seed


@pytest.fixture
def learnable_dataset():
    return make_sbm_dataset(
        name="trainer-test", num_nodes=240, num_classes=4, feature_dim=16,
        p_in=0.12, p_out=0.01, noise=1.5, train_frac=0.5, val_frac=0.2,
        test_frac=0.3, seed=2,
    )


def _sage_factory(num_classes):
    return lambda in_f: nn.GraphSageNet(in_f, 32, num_classes, dropout=0.2)


class TestFullBatchTrainer:
    def test_loss_decreases_and_accuracy_beats_chance(self, learnable_dataset):
        set_seed(0)
        model = nn.GraphSageNet(learnable_dataset.feature_dim, 32,
                                learnable_dataset.num_classes, dropout=0.2)
        config = TrainingConfig(num_epochs=20, lr=0.01, eval_every=0)
        result = FullBatchTrainer(model, learnable_dataset, config).train()
        losses = result.losses()
        assert losses[-1] < losses[0]
        assert result.final_test_accuracy > 1.5 / learnable_dataset.num_classes
        assert result.num_epochs == 20

    def test_eval_every_populates_curve(self, learnable_dataset):
        set_seed(0)
        model = nn.GraphSageNet(learnable_dataset.feature_dim, 16,
                                learnable_dataset.num_classes)
        config = TrainingConfig(num_epochs=6, eval_every=2)
        result = FullBatchTrainer(model, learnable_dataset, config).train()
        assert len(result.accuracy_curve()) == 3

    def test_label_augmentation_changes_input_width(self, learnable_dataset):
        set_seed(0)
        config = TrainingConfig(num_epochs=3, label_augmentation=True, eval_every=0)
        in_features = learnable_dataset.feature_dim + learnable_dataset.num_classes
        model = nn.GraphSageNet(in_features, 16, learnable_dataset.num_classes)
        result = FullBatchTrainer(model, learnable_dataset, config).train()
        assert np.isfinite(result.records[-1].loss)

    def test_correct_and_smooth_reported(self, learnable_dataset):
        set_seed(0)
        model = nn.GraphSageNet(learnable_dataset.feature_dim, 16,
                                learnable_dataset.num_classes)
        config = TrainingConfig(num_epochs=5, correct_and_smooth=True, eval_every=0)
        result = FullBatchTrainer(model, learnable_dataset, config).train()
        assert result.cs_accuracies is not None
        assert "test" in result.cs_accuracies

    def test_invalid_schedule_raises(self, learnable_dataset):
        model = nn.GraphSageNet(learnable_dataset.feature_dim, 8,
                                learnable_dataset.num_classes)
        with pytest.raises(ValueError):
            FullBatchTrainer(model, learnable_dataset,
                             TrainingConfig(num_epochs=1, lr_schedule="bogus")).train()


@pytest.mark.slow
class TestDistributedTrainer:
    @pytest.mark.parametrize("mode", ["sar", "dp"])
    def test_distributed_matches_single_machine_exactly(self, learnable_dataset, mode):
        """Paper §2: 'The results of training are exactly the same regardless of
        the number of machines.'  With dropout and label augmentation disabled,
        the distributed loss curve must match single-machine training."""
        dataset = learnable_dataset
        config = TrainingConfig(num_epochs=4, lr=0.01, eval_every=4, lr_schedule="none")

        set_seed(77)
        reference_state = nn.GraphSageNet(dataset.feature_dim, 16, dataset.num_classes,
                                          dropout=0.0).state_dict()

        def factory(in_f):
            model = nn.GraphSageNet(in_f, 16, dataset.num_classes, dropout=0.0)
            model.load_state_dict(reference_state)
            return model

        set_seed(0)
        single = FullBatchTrainer(factory(dataset.feature_dim), dataset, config).train()
        set_seed(0)
        distributed = DistributedTrainer(
            dataset, factory, num_workers=3, sar_config=SARConfig(mode=mode),
            config=config,
        ).run()
        np.testing.assert_allclose(distributed.training.losses(), single.losses(),
                                   rtol=1e-4, atol=1e-5)
        # Accuracy is a discrete metric: float32 summation-order differences can
        # flip a borderline node, so allow a small tolerance.
        assert abs(distributed.training.final_test_accuracy
                   - single.final_test_accuracy) < 0.03

    def test_gat_sar_trains_and_uses_less_memory_than_dp(self, learnable_dataset):
        dataset = learnable_dataset
        config = TrainingConfig(num_epochs=2, eval_every=0)

        set_seed(5)
        reference_state = nn.GATNet(dataset.feature_dim, 8, dataset.num_classes,
                                    num_heads=2, dropout=0.0).state_dict()

        def factory(in_f):
            model = nn.GATNet(in_f, 8, dataset.num_classes, num_heads=2, dropout=0.0)
            model.load_state_dict(reference_state)
            return model

        results = {}
        for mode in ("sar", "dp"):
            set_seed(0)
            results[mode] = DistributedTrainer(
                dataset, factory, num_workers=4, sar_config=SARConfig(mode=mode),
                config=config,
            ).run()
        assert max(results["sar"].cluster.peak_memory_mb) < \
            max(results["dp"].cluster.peak_memory_mb)
        # Identical numerics regardless of mode.
        np.testing.assert_allclose(results["sar"].training.losses(),
                                   results["dp"].training.losses(), rtol=1e-4, atol=1e-5)

    def test_memory_per_worker_decreases_with_more_workers(self, learnable_dataset):
        dataset = learnable_dataset
        config = TrainingConfig(num_epochs=1, eval_every=0)
        factory = _sage_factory(dataset.num_classes)
        peaks = {}
        for workers in (2, 4):
            set_seed(0)
            run = DistributedTrainer(dataset, factory, num_workers=workers,
                                     config=config).run()
            peaks[workers] = max(run.cluster.peak_memory_mb)
        assert peaks[4] < peaks[2]

    def test_label_augmentation_and_cs_run_distributed(self, learnable_dataset):
        dataset = learnable_dataset
        config = TrainingConfig(num_epochs=3, eval_every=0, label_augmentation=True,
                                correct_and_smooth=True)
        set_seed(0)
        run = DistributedTrainer(dataset, _sage_factory(dataset.num_classes),
                                 num_workers=3, config=config).run()
        assert run.training.cs_accuracies is not None
        assert np.isfinite(run.training.final_test_accuracy)

    def test_assemble_global_predictions(self, learnable_dataset):
        dataset = learnable_dataset
        config = TrainingConfig(num_epochs=1, eval_every=0)
        trainer = DistributedTrainer(dataset, _sage_factory(dataset.num_classes),
                                     num_workers=3, config=config)
        run = trainer.run()
        predictions = trainer.assemble_global_predictions(run)
        assert predictions.shape == (dataset.num_nodes, dataset.num_classes)

    def test_rgcn_on_heterogeneous_dataset(self):
        dataset = ogbn_mag_mini(scale=0.15)
        config = TrainingConfig(num_epochs=2, eval_every=2)

        def factory(in_f):
            set_seed(3)
            return nn.RGCNNet(in_f, 16, dataset.num_classes,
                              dataset.hetero_graph.relation_names, num_bases=2,
                              dropout=0.0)

        set_seed(0)
        run = DistributedTrainer(dataset, factory, num_workers=3, config=config).run()
        assert np.isfinite(run.training.final_test_accuracy)
        assert run.training.final_test_accuracy >= 0.0
