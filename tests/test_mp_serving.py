"""Process-backed serving: bit-parity from forked shards, crash handling.

The subsystem contract under test (``repro/serving/mp_server.py`` +
``repro/distributed/mp_backend.py``'s service cluster):

* ``create_server(..., ServingConfig(backend="mp"))`` serves logit rows
  **bit-identical** to the single-machine server from >= 2 forked shard
  *processes* — for every conv kind, cold and warm per-process caches, and
  under concurrent client threads;
* ``update()`` ships the parent's new ``state_dict()`` to every worker
  process atomically (serialized against batches), and a feature-store
  ``replace()`` in the parent propagates before the next batch — forked
  children never serve a stale snapshot;
* a shard process killed mid-request fails the in-flight (and every later)
  predict with :class:`~repro.distributed.mp_backend.WorkerFailedError`
  naming the dead rank — promptly (no hang: the frontend polls
  ``Process.is_alive``), and ``stop()`` still reaps everything: no child
  process (workers or the Manager) outlives the server.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.datasets import make_sbm_dataset
from repro.distributed.mp_backend import WorkerFailedError
from repro.nn.models import GATNet, GraphSageNet
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.serving import (
    MultiprocessInferenceServer,
    ServerProtocol,
    ServingConfig,
    create_server,
)
from repro.store import DenseStore
from repro.tensor import Tensor, no_grad
from repro.utils.seed import set_seed

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="mp serving backend requires the fork start method",
)

#: generous wall-clock bound proving "no hang" on the failure paths (the
#: healthy path resolves in well under a second).
_NO_HANG_S = 60.0


@pytest.fixture
def dataset():
    # Smaller than the thread-backend fixture: inter-worker traffic crosses
    # a Manager process here, so the graph stays compact to keep the suite
    # quick while still spanning 2 partitions with real halo edges.
    return make_sbm_dataset(
        name="mp-serving-sbm",
        num_nodes=120,
        num_classes=4,
        feature_dim=8,
        p_in=0.12,
        p_out=0.02,
    )


def _make_model(dataset, kind="sage"):
    set_seed(0)
    if kind == "gat":
        return GATNet(
            dataset.feature_dim, 8, dataset.num_classes, num_layers=2,
            num_heads=2, dropout=0.0, use_batch_norm=True,
        )
    return GraphSageNet(
        dataset.feature_dim, 16, dataset.num_classes, num_layers=2,
        dropout=0.5, use_batch_norm=True,
    )


def _make_shards(dataset, world_size):
    book = PartitionBook(
        partition_graph(dataset.graph, world_size, seed=0), world_size
    )
    return create_shards(dataset.graph, book)


def _reference_logits(model, graph, features):
    model.eval()
    with no_grad():
        return model(graph, Tensor(features)).data


def _assert_no_leaked_children():
    # The cluster's workers and its Manager process are all direct children;
    # give slow reapers a moment, then require the process table clean.
    deadline = time.monotonic() + 10.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert mp.active_children() == []


# --------------------------------------------------------------------------- #
# parity matrix: forked processes == single machine, bit for bit
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["sage", "gat"])
def test_mp_bit_identical_to_local_server(dataset, kind):
    """sage/gat x 2 forked shards x cold/warm caches: exact rows."""
    model = _make_model(dataset, kind)
    streams = [[5], [3, 1, 4, 1, 5], [0, 119], list(range(30))]
    with create_server(
        model, dataset.graph, dataset.features,
        ServingConfig(window_ms=0.0, byte_budget=1 << 20),
    ) as local:
        expected = [local.predict(ids) for ids in streams]

    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, byte_budget=1 << 20)
    with create_server(model, shards, dataset.features, config) as server:
        assert isinstance(server, MultiprocessInferenceServer)
        assert isinstance(server, ServerProtocol)
        assert len(server.processes) == 2
        assert all(p.is_alive() for p in server.processes)
        for ids, want in zip(streams, expected):  # cold per-process caches
            np.testing.assert_array_equal(server.predict(ids), want)
        for ids, want in zip(streams, expected):  # warm per-process caches
            np.testing.assert_array_equal(server.predict(ids), want)
        stats = server.stats()
    assert stats["served_requests"] == 2 * len(streams)
    # Warm repeats hit the all-logits fast path inside the worker processes.
    assert stats["fast_path_batches"] >= 1
    _assert_no_leaked_children()


def test_mp_concurrent_clients_bit_identical(dataset):
    """Coalesced concurrent requests against forked shards get exact rows."""
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    rng = np.random.default_rng(11)
    streams = [
        rng.integers(0, dataset.graph.num_nodes, size=6) for _ in range(4)
    ]
    errors = []
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=2.0, byte_budget=1 << 20)
    with create_server(model, shards, dataset.features, config) as server:

        def client(stream):
            try:
                for node in stream:
                    row = server.predict([int(node)])
                    np.testing.assert_array_equal(row[0], reference[node])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s,)) for s in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()
    assert not errors
    assert stats["served_requests"] == sum(len(s) for s in streams)
    _assert_no_leaked_children()


# --------------------------------------------------------------------------- #
# cross-process state propagation
# --------------------------------------------------------------------------- #
def test_mp_update_reaches_every_worker_process(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90, 110]
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, byte_budget=1 << 20)
    with create_server(model, shards, dataset.features, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        assert server.version == 1

        def perturb(m):
            for param in m.parameters():
                param.data[...] = param.data + 0.25

        assert server.update(perturb) == 2
        # The parent model mutated; the children must serve the *new*
        # weights even though they forked the old ones.
        new_reference = _reference_logits(model, dataset.graph, dataset.features)
        assert not np.array_equal(new_reference, reference)
        np.testing.assert_array_equal(server.predict(ids), new_reference[ids])
        stats = server.stats()
    assert stats["updates"] == 1
    for worker in stats["workers"]:
        assert worker["embedding_cache"]["version"] == 2
        assert worker["embedding_cache"]["invalidations"] >= 1
    _assert_no_leaked_children()


def test_mp_store_replace_propagates_to_forked_workers(dataset):
    """replace() on the parent's store reaches children before the next batch."""
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90]
    store = DenseStore(dataset.features.copy())
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, byte_budget=1 << 20)
    with create_server(model, shards, store, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        fresh = dataset.features * 1.5
        store.replace(fresh)
        new_reference = _reference_logits(model, dataset.graph, fresh)
        assert not np.array_equal(new_reference, reference)
        np.testing.assert_array_equal(server.predict(ids), new_reference[ids])
        stats = server.stats()
    assert stats["store_version"] == 2
    for worker in stats["workers"]:
        assert worker["embedding_cache"]["invalidations"] >= 1
    _assert_no_leaked_children()


@pytest.mark.parametrize("form", ["per-worker-kv", "global-dense"])
def test_mp_feature_forms_serve_identical_rows(dataset, form):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [7, 42, 100, 110]
    shards = _make_shards(dataset, 2)
    book = shards[0].book
    if form == "per-worker-kv":
        features = [dataset.features[book.nodes_of(p)] for p in range(2)]
        store_kind = "kv"
    else:
        features = dataset.features
        store_kind = "dense"
    config = ServingConfig(
        backend="mp", window_ms=0.0, feature_store=store_kind
    )
    with create_server(model, shards, features, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        stats = server.stats()
    if store_kind == "kv":
        for worker in stats["workers"]:
            assert worker["feature_store"]
        assert stats["feature_store"]
    _assert_no_leaked_children()


# --------------------------------------------------------------------------- #
# crash handling: a dead shard fails fast, leaks nothing
# --------------------------------------------------------------------------- #
def test_mp_dead_shard_fails_requests_with_rank_no_hang_no_leak(dataset):
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, comm_timeout_s=60.0)
    server = create_server(model, shards, dataset.features, config).start()
    try:
        server.predict([1, 2, 3])  # healthy first
        server._debug_crash_worker(0)
        start = time.monotonic()
        with pytest.raises(WorkerFailedError, match="rank 0") as excinfo:
            server.predict([4, 5, 6])
        # Prompt failure: liveness polling, not the comm timeout, caught it.
        assert time.monotonic() - start < _NO_HANG_S
        assert "rank 0" in str(excinfo.value)
        # Later requests fail immediately on the poisoned cluster.
        start = time.monotonic()
        with pytest.raises(WorkerFailedError, match="rank 0"):
            server.predict([7])
        assert time.monotonic() - start < 5.0
        stats = server.stats()
        assert stats["processes"]["alive"][0] is False
        assert stats["processes"]["failure"] is not None
    finally:
        server.stop()
    assert not server.running
    _assert_no_leaked_children()


def test_mp_dead_shard_fails_inflight_futures(dataset):
    """Futures already enqueued when the shard dies resolve with the error."""
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, comm_timeout_s=60.0)
    server = create_server(model, shards, dataset.features, config).start()
    try:
        server.predict([0])
        server._debug_crash_worker(1)
        futures = [server.predict_async([i, i + 1]) for i in range(4)]
        start = time.monotonic()
        for future in futures:
            with pytest.raises(WorkerFailedError, match="rank 1"):
                future.result(_NO_HANG_S)
        assert time.monotonic() - start < _NO_HANG_S
    finally:
        server.stop()
    _assert_no_leaked_children()


def test_mp_stop_reaps_workers_even_when_idle_or_dead(dataset):
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0)
    server = create_server(model, shards, dataset.features, config).start()
    processes = server.processes
    server.stop()  # graceful: stop sentinels drain the request loops
    assert not server.running
    for process in processes:
        assert not process.is_alive()
    _assert_no_leaked_children()
    with pytest.raises(RuntimeError, match="not running"):
        server.predict([0])
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()


def test_mp_stats_keep_thread_backend_shape_plus_processes(dataset):
    model = _make_model(dataset)
    ids = [3, 17, 90]
    with create_server(
        model, dataset.graph, dataset.features,
        ServingConfig(window_ms=0.0, byte_budget=1 << 20),
    ) as local:
        local.predict(ids)
        local_stats = local.stats()
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="mp", window_ms=0.0, byte_budget=1 << 20)
    with create_server(model, shards, dataset.features, config) as server:
        server.predict(ids)
        server.predict(ids)
        stats = server.stats()
    # One shared stats() shape; the mp backend adds only the process table.
    assert set(stats) - set(local_stats) == {"processes"}
    assert stats["backend"] == "mp"
    workers = stats["workers"]
    assert [w["rank"] for w in workers] == [0, 1]
    for worker in workers:
        assert {"rank", "embedding_cache", "feature_store", "comm"} <= set(worker)
    agg = stats["embedding_cache"]
    assert agg["hits"] == sum(w["embedding_cache"]["hits"] for w in workers)
    # stats() after stop serves the final pre-stop worker snapshot.
    assert stats["processes"]["alive"] == [True, True]
    post = server.stats()
    assert post["workers"] == workers
    assert post["processes"]["alive"] == [False, False]
    _assert_no_leaked_children()
