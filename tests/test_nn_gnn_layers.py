"""Tests for the GNN layers: SageConv, GATConv, FusedGATConv, RelGraphConv, models."""

import numpy as np
import pytest

from repro import nn
from repro.graph import HeteroGraph
from repro.nn.sage import sage_reference_forward
from repro.tensor import MemoryTracker, Tensor, check_gradients, track_memory
from repro.tensor import functional as F
from repro.utils.seed import set_seed


@pytest.fixture
def features(sbm_graph, rng):
    return Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32),
                  requires_grad=True)


class TestSageConv:
    def test_matches_reference_implementation(self, sbm_graph, features):
        layer = nn.SageConv(8, 5, aggregator="mean")
        out = layer(sbm_graph, features)
        expected = sage_reference_forward(
            sbm_graph, features, layer.neighbor_linear.weight,
            layer.self_linear.weight, layer.self_linear.bias, aggregator="mean",
        )
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)

    def test_sum_aggregator(self, sbm_graph, features):
        layer = nn.SageConv(8, 5, aggregator="sum")
        out = layer(sbm_graph, features)
        expected = sage_reference_forward(
            sbm_graph, features, layer.neighbor_linear.weight,
            layer.self_linear.weight, layer.self_linear.bias, aggregator="sum",
        )
        np.testing.assert_allclose(out.data, expected, rtol=1e-3, atol=1e-3)

    def test_gradients(self, tiny_graph, rng):
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32),
                   requires_grad=True)
        layer = nn.SageConv(4, 3)
        check_gradients(lambda: (layer(tiny_graph, x) ** 2).mean(),
                        [x] + layer.parameters(), atol=2e-2, rtol=2e-2)

    def test_activation_applied(self, tiny_graph, rng):
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32))
        layer = nn.SageConv(4, 3, activation=F.relu)
        assert np.all(layer(tiny_graph, x).data >= 0)

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            nn.SageConv(4, 3, aggregator="median")

    def test_wrong_feature_rows(self, tiny_graph, rng):
        layer = nn.SageConv(4, 3)
        with pytest.raises(ValueError):
            layer(tiny_graph, Tensor(np.zeros((2, 4), dtype=np.float32)))


class TestGATConv:
    def _pair(self, in_f=8, out_f=4, heads=2):
        set_seed(5)
        standard = nn.GATConv(in_f, out_f, num_heads=heads)
        fused = nn.FusedGATConv(in_f, out_f, num_heads=heads)
        fused.load_state_dict(standard.state_dict())
        return standard, fused

    def test_fused_matches_standard_forward(self, sbm_graph, features):
        standard, fused = self._pair()
        np.testing.assert_allclose(
            standard(sbm_graph, features).data, fused(sbm_graph, features).data,
            rtol=1e-4, atol=1e-5,
        )

    def test_fused_matches_standard_gradients(self, sbm_graph, features):
        standard, fused = self._pair()
        loss_s = (standard(sbm_graph, features) ** 2).mean()
        features.grad = None
        loss_s.backward()
        grad_std = {n: p.grad.copy() for n, p in standard.named_parameters()}
        x_grad_std = features.grad.copy()

        features.grad = None
        (fused(sbm_graph, features) ** 2).mean().backward()
        for name, param in fused.named_parameters():
            np.testing.assert_allclose(param.grad, grad_std[name], rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(features.grad, x_grad_std, rtol=1e-3, atol=1e-4)

    def test_standard_gradcheck(self, tiny_graph, rng):
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32),
                   requires_grad=True)
        layer = nn.GATConv(4, 3, num_heads=2)
        check_gradients(lambda: (layer(tiny_graph, x) ** 2).mean(),
                        [x] + layer.parameters(), atol=3e-2, rtol=3e-2)

    def test_fused_gradcheck(self, tiny_graph, rng):
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32),
                   requires_grad=True)
        layer = nn.FusedGATConv(4, 3, num_heads=2)
        check_gradients(lambda: (layer(tiny_graph, x) ** 2).mean(),
                        [x] + layer.parameters(), atol=3e-2, rtol=3e-2)

    def test_output_shape_multi_head(self, sbm_graph, features):
        layer = nn.GATConv(8, 4, num_heads=3)
        assert layer(sbm_graph, features).shape == (sbm_graph.num_nodes, 12)

    def test_attention_normalization_single_head_uniform_scores(self, tiny_graph):
        """With identical attention scores, GAT must reduce to mean aggregation."""
        layer = nn.GATConv(4, 4, num_heads=1, bias=False)
        layer.attn_l.data[...] = 0.0
        layer.attn_r.data[...] = 0.0
        x = Tensor(np.random.randn(tiny_graph.num_nodes, 4).astype(np.float32))
        out = layer(tiny_graph, x).data
        z = x.data @ layer.fc.weight.data
        deg = np.maximum(tiny_graph.in_degrees(), 1).astype(np.float32)
        expected = np.zeros_like(z)
        np.add.at(expected, tiny_graph.dst, z[tiny_graph.src])
        expected /= deg[:, None]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_fused_kernel_uses_less_forward_memory(self, sbm_graph):
        """The standard layer materializes per-edge tensors; the fused one must not."""
        set_seed(0)
        x = Tensor(np.random.randn(sbm_graph.num_nodes, 16).astype(np.float32),
                   requires_grad=True)
        standard, fused = nn.GATConv(16, 8, num_heads=4), nn.FusedGATConv(16, 8, num_heads=4)
        fused.load_state_dict(standard.state_dict())

        def peak(layer):
            tracker = MemoryTracker("gat")
            with track_memory(tracker):
                out = layer(sbm_graph, x)
                peak_bytes = tracker.peak_bytes
                del out
            return peak_bytes

        assert peak(fused) < peak(standard)

    def test_kernel_flags(self):
        assert nn.GATConv(4, 4).uses_fused_kernel is False
        assert nn.FusedGATConv(4, 4).uses_fused_kernel is True


class TestRelGraphConv:
    @pytest.fixture
    def hetero(self, sbm_graph):
        half = sbm_graph.num_edges // 2
        return HeteroGraph(sbm_graph.num_nodes, {
            "a": (sbm_graph.src[:half], sbm_graph.dst[:half]),
            "b": (sbm_graph.src[half:], sbm_graph.dst[half:]),
        })

    def test_output_shape(self, hetero, features):
        layer = nn.RelGraphConv(8, 6, ["a", "b"], num_bases=2)
        assert layer(hetero, features).shape == (hetero.num_nodes, 6)

    def test_basis_decomposition_reduces_parameters(self):
        full = nn.RelGraphConv(8, 6, ["a", "b", "c", "d"], num_bases=None)
        basis = nn.RelGraphConv(8, 6, ["a", "b", "c", "d"], num_bases=2)
        assert basis.num_parameters() < full.num_parameters()

    def test_num_bases_validation(self):
        with pytest.raises(ValueError):
            nn.RelGraphConv(4, 4, ["a"], num_bases=3)
        with pytest.raises(ValueError):
            nn.RelGraphConv(4, 4, [])

    def test_gradients_with_bases(self, tiny_graph, rng):
        hetero = HeteroGraph(tiny_graph.num_nodes, {
            "a": (tiny_graph.src[:10], tiny_graph.dst[:10]),
            "b": (tiny_graph.src[10:], tiny_graph.dst[10:]),
        })
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32),
                   requires_grad=True)
        layer = nn.RelGraphConv(4, 3, ["a", "b"], num_bases=2)
        check_gradients(lambda: (layer(hetero, x) ** 2).mean(),
                        [x] + layer.parameters(), atol=3e-2, rtol=3e-2)

    def test_gradients_without_bases(self, tiny_graph, rng):
        hetero = HeteroGraph(tiny_graph.num_nodes, {
            "a": (tiny_graph.src, tiny_graph.dst),
        })
        x = Tensor(rng.standard_normal((tiny_graph.num_nodes, 4)).astype(np.float32),
                   requires_grad=True)
        layer = nn.RelGraphConv(4, 3, ["a"], num_bases=None)
        check_gradients(lambda: (layer(hetero, x) ** 2).mean(),
                        [x] + layer.parameters(), atol=3e-2, rtol=3e-2)

    def test_relation_weight_shapes(self):
        layer = nn.RelGraphConv(5, 3, ["a", "b"], num_bases=2)
        assert layer.relation_weights().shape == (2, 15)
        assert layer.relation_weight(0).shape == (5, 3)


class TestModels:
    def test_graphsage_net_shapes(self, sbm_graph, rng):
        model = nn.GraphSageNet(8, 16, 5, num_layers=3)
        x = Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32))
        model.eval()
        assert model(sbm_graph, x).shape == (sbm_graph.num_nodes, 5)
        assert model.num_layers == 3

    def test_gat_net_fused_and_standard_equivalent(self, sbm_graph, rng):
        x = Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32))
        set_seed(3)
        standard = nn.GATNet(8, 4, 5, num_heads=2, dropout=0.0)
        fused = nn.GATNet(8, 4, 5, num_heads=2, dropout=0.0, fused=True)
        fused.load_state_dict(standard.state_dict())
        standard.eval(), fused.eval()
        np.testing.assert_allclose(standard(sbm_graph, x).data, fused(sbm_graph, x).data,
                                   rtol=1e-4, atol=1e-5)

    def test_rgcn_net_forward(self, sbm_graph, rng):
        hetero = HeteroGraph(sbm_graph.num_nodes, {
            "a": (sbm_graph.src, sbm_graph.dst),
            "b": (sbm_graph.dst, sbm_graph.src),
        })
        model = nn.RGCNNet(8, 16, 4, ["a", "b"], num_layers=2)
        model.eval()
        x = Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32))
        assert model(hetero, x).shape == (sbm_graph.num_nodes, 4)

    def test_batch_norm_can_be_disabled(self, sbm_graph, rng):
        model = nn.GraphSageNet(8, 16, 3, use_batch_norm=False)
        assert len(model.norms) == 0
        x = Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32))
        model.eval()
        assert model(sbm_graph, x).shape == (sbm_graph.num_nodes, 3)

    def test_set_comm_attaches_to_all_norms(self):
        model = nn.GraphSageNet(8, 16, 3)
        sentinel = object()
        model.set_comm(sentinel)
        assert all(norm.comm is sentinel for norm in model.norms)
