"""Unit tests for the primitive autograd operations."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops


def _t(shape, rng, requires_grad=True, positive=False):
    data = rng.standard_normal(shape).astype(np.float32)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=requires_grad)


class TestElementwiseOps:
    def test_add_forward(self, rng):
        a, b = _t((3, 4), rng), _t((3, 4), rng)
        out = a + b
        np.testing.assert_allclose(out.data, a.data + b.data)

    def test_add_broadcast_gradients(self, rng):
        a = _t((3, 4), rng)
        b = _t((4,), rng)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_scalar_add(self, rng):
        a = _t((2, 3), rng)
        out = a + 2.5
        np.testing.assert_allclose(out.data, a.data + 2.5)

    def test_sub_gradients(self, rng):
        a, b = _t((5,), rng), _t((5,), rng)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_rsub(self, rng):
        a = _t((4,), rng)
        out = 1.0 - a
        np.testing.assert_allclose(out.data, 1.0 - a.data)

    def test_mul_gradients(self, rng):
        a, b = _t((3, 2), rng), _t((3, 2), rng)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_row_vector(self, rng):
        a = _t((3, 4), rng)
        b = _t((1, 4), rng)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div_gradients(self, rng):
        a = _t((3, 3), rng)
        b = _t((3, 3), rng, positive=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_neg(self, rng):
        a = _t((3,), rng)
        check_gradients(lambda: (-a).sum(), [a])

    def test_pow_gradients(self, rng):
        a = _t((4,), rng, positive=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_exp_log_roundtrip(self, rng):
        a = _t((4,), rng, positive=True)
        out = a.exp().log()
        np.testing.assert_allclose(out.data, a.data, rtol=1e-5)

    def test_exp_gradients(self, rng):
        a = _t((3, 3), rng)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log_gradients(self, rng):
        a = _t((5,), rng, positive=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt_gradients(self, rng):
        a = _t((5,), rng, positive=True)
        check_gradients(lambda: a.sqrt().sum(), [a])


class TestMatMul:
    def test_forward_matches_numpy(self, rng):
        a, b = _t((4, 3), rng), _t((3, 5), rng)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data, rtol=1e-5)

    def test_gradients_2d(self, rng):
        a, b = _t((4, 3), rng), _t((3, 2), rng)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_gradients_batched_left(self, rng):
        a, b = _t((2, 4, 3), rng), _t((3, 2), rng)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_rejects_1d_right_operand(self, rng):
        a, b = _t((4, 3), rng), _t((3,), rng)
        with pytest.raises(ValueError):
            _ = a @ b


class TestReductions:
    def test_sum_all(self, rng):
        a = _t((3, 4), rng)
        assert np.isclose(a.sum().data, a.data.sum())

    def test_sum_axis_keepdims(self, rng):
        a = _t((3, 4), rng)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_sum_negative_axis(self, rng):
        a = _t((2, 3, 4), rng)
        check_gradients(lambda: (a.sum(axis=-1) ** 2).sum(), [a])

    def test_mean_gradients(self, rng):
        a = _t((4, 5), rng)
        check_gradients(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_all(self, rng):
        a = _t((4, 5), rng)
        assert np.isclose(a.mean().data, a.data.mean())

    def test_max_forward(self, rng):
        a = _t((3, 4), rng)
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))

    def test_max_gradient_flows_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]], dtype=np.float32), requires_grad=True)
        out = a.max(axis=1)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_min_gradients(self, rng):
        a = _t((6,), rng)
        check_gradients(lambda: a.min().sum() if a.min().ndim else a.min(), [a])


class TestShapeOps:
    def test_reshape_roundtrip(self, rng):
        a = _t((2, 6), rng)
        out = a.reshape(3, 4).reshape(2, 6)
        np.testing.assert_allclose(out.data, a.data)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = _t((2, 3, 4), rng)
        out = a.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        check_gradients(lambda: (a.transpose((2, 0, 1)) ** 2).sum(), [a])

    def test_transpose_default_reverses(self, rng):
        a = _t((2, 5), rng)
        assert a.T.shape == (5, 2)

    def test_concat(self, rng):
        a, b = _t((2, 3), rng), _t((4, 3), rng)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: (ops.concat([a, b], axis=0) ** 2).sum(), [a, b])

    def test_slice_rows(self, rng):
        a = _t((5, 3), rng)
        out = a[1:3]
        assert out.shape == (2, 3)
        check_gradients(lambda: (a[1:3] ** 2).sum(), [a])

    def test_boolean_mask_slice(self, rng):
        a = _t((6, 2), rng)
        mask = np.array([True, False, True, False, False, True])
        out = a[mask]
        assert out.shape == (3, 2)
        check_gradients(lambda: (a[mask] ** 2).sum(), [a])

    def test_gather_with_repeats_accumulates(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(3, 2), requires_grad=True)
        idx = np.array([0, 0, 2])
        out = ops.gather(a, idx)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(a.grad, [[2, 2], [0, 0], [1, 1]])

    def test_gather_gradcheck(self, rng):
        a = _t((5, 3), rng)
        idx = np.array([4, 0, 0, 2, 3, 1])
        check_gradients(lambda: (ops.gather(a, idx) ** 2).sum(), [a])


class TestUnbroadcast:
    def test_grad_shape_matches_parameter_shape(self, rng):
        weight = _t((1, 4), rng)
        x = _t((8, 4), rng, requires_grad=False)
        out = (x * weight).sum()
        out.backward()
        assert weight.grad.shape == (1, 4)

    def test_scalar_tensor_broadcast(self):
        scale = Tensor(np.array(2.0, dtype=np.float32), requires_grad=True)
        x = Tensor(np.ones((3, 3), dtype=np.float32))
        out = (x * scale).sum()
        out.backward()
        assert scale.grad.shape == ()
        assert np.isclose(scale.grad, 9.0)
