"""Tests for the simulated cluster runtime: communicator, collectives, cost model."""

import numpy as np
import pytest

from repro.distributed import (
    ClusterSpec,
    SimulatedCluster,
    epoch_cost,
    run_distributed,
    scaling_table,
)
from repro.distributed.thread_backend import ClusterAborted
from repro.tensor import Tensor


class TestPointToPoint:
    def test_publish_fetch_roundtrip(self):
        def worker(rank, comm):
            comm.publish("vec", np.full(4, rank, dtype=np.float32))
            neighbor = (rank + 1) % comm.world_size
            fetched = comm.fetch(neighbor, "vec")
            comm.barrier()
            return float(fetched[0])

        result = run_distributed(worker, 4)
        assert result.results == [1.0, 2.0, 3.0, 0.0]

    def test_fetch_row_subset(self):
        def worker(rank, comm):
            comm.publish("mat", np.arange(12, dtype=np.float32).reshape(6, 2) + rank)
            rows = np.array([1, 4])
            fetched = comm.fetch((rank + 1) % 2, "mat", rows=rows)
            comm.barrier()
            return fetched.copy()

        result = run_distributed(worker, 2)
        np.testing.assert_allclose(result.results[0][:, 0], [2 + 1, 8 + 1])

    def test_fetch_is_a_copy(self):
        def worker(rank, comm):
            data = np.zeros(3, dtype=np.float32)
            comm.publish("x", data)
            comm.barrier()
            fetched = comm.fetch((rank + 1) % 2, "x")
            fetched += 100.0
            comm.barrier()
            return float(data.sum())

        result = run_distributed(worker, 2)
        assert result.results == [0.0, 0.0]

    def test_self_fetch_not_counted_as_communication(self):
        def worker(rank, comm):
            comm.publish("x", np.ones(10, dtype=np.float32))
            comm.fetch(rank, "x")
            return comm.stats.bytes_received

        result = run_distributed(worker, 2)
        assert result.results == [0, 0]

    def test_communication_volume_accounting(self):
        payload_bytes = 40  # 10 float32

        def worker(rank, comm):
            comm.publish("x", np.ones(10, dtype=np.float32))
            comm.fetch((rank + 1) % 2, "x", tag="halo")
            comm.barrier()
            return None

        result = run_distributed(worker, 2)
        for stats in result.comm_stats:
            assert stats.bytes_received == payload_bytes
            assert stats.bytes_sent == payload_bytes
            assert stats.received_by_tag["halo"] == payload_bytes
            assert stats.sent_by_tag["halo"] == payload_bytes
            assert stats.bytes_for_tags(["halo"]) == (payload_bytes, payload_bytes)

    def test_unpublish_and_clear(self):
        def worker(rank, comm):
            comm.publish("a", np.ones(2))
            comm.publish("b", np.ones(2))
            comm.unpublish("a")
            comm.clear_published()
            comm.barrier()
            return True

        assert run_distributed(worker, 2).results == [True, True]


class TestCollectives:
    def test_allreduce_sum_and_max(self):
        def worker(rank, comm):
            total = comm.allreduce(np.array([rank + 1.0]), op="sum")
            biggest = comm.allreduce(np.array([float(rank)]), op="max")
            return float(total[0]), float(biggest[0])

        result = run_distributed(worker, 4)
        assert all(r == (10.0, 3.0) for r in result.results)

    def test_allreduce_mean(self):
        def worker(rank, comm):
            return float(comm.allreduce(np.array([float(rank)]), op="mean")[0])

        assert run_distributed(worker, 4).results == [1.5] * 4

    def test_allreduce_scalar(self):
        def worker(rank, comm):
            return comm.allreduce_scalar(1.0)

        assert run_distributed(worker, 3).results == [3.0] * 3

    def test_allgather(self):
        def worker(rank, comm):
            gathered = comm.allgather(np.array([rank], dtype=np.int64))
            return [int(g[0]) for g in gathered]

        result = run_distributed(worker, 3)
        assert all(r == [0, 1, 2] for r in result.results)

    def test_exchange_all_to_all(self):
        def worker(rank, comm):
            outgoing = {
                q: np.array([rank * 10 + q], dtype=np.float32)
                for q in range(comm.world_size) if q != rank
            }
            received = comm.exchange("round1", outgoing)
            return sorted((sender, float(v[0])) for sender, v in received.items())

        result = run_distributed(worker, 3)
        # worker 0 receives 10·1+0 from rank 1 and 10·2+0 from rank 2
        assert result.results[0] == [(1, 10.0), (2, 20.0)]
        assert result.results[2] == [(0, 2.0), (1, 12.0)]

    def test_exchange_with_partial_destinations(self):
        def worker(rank, comm):
            outgoing = {0: np.array([float(rank)])} if rank != 0 else {}
            received = comm.exchange("partial", outgoing)
            return sorted(received.keys())

        result = run_distributed(worker, 3)
        assert result.results[0] == [1, 2]
        assert result.results[1] == []

    def test_repeated_collectives_stay_consistent(self):
        def worker(rank, comm):
            values = []
            for step in range(5):
                out = comm.allreduce(np.array([float(rank + step)]))
                values.append(float(out[0]))
            return values

        result = run_distributed(worker, 3)
        expected = [sum(r + s for r in range(3)) for s in range(5)]
        assert all(r == expected for r in result.results)


class TestKeyedCollectives:
    """Barrier-free keyed allgather: the primitive the sampling overlap uses."""

    def test_roundtrip_and_tag_accounting(self):
        def worker(rank, comm):
            gathered = comm.allgather_keyed(
                "s/0", np.array([rank], dtype=np.int64), tag="sample_frontier"
            )
            comm.barrier()
            comm.release_keyed("s/0")
            return ([int(g[0]) for g in gathered],
                    comm.stats.received_by_tag.get("sample_frontier", 0))

        result = run_distributed(worker, 3)
        for values, received in result.results:
            assert values == [0, 1, 2]
            assert received == 2 * 8  # one int64 from each of two peers

    def test_stream_keys_survive_clear_published(self):
        from repro.distributed.comm import STREAM_KEY_PREFIX

        def worker(rank, comm):
            comm.publish(STREAM_KEY_PREFIX + "x", np.array([float(rank)], dtype=np.float32))
            comm.publish("ordinary", np.ones(1, dtype=np.float32))
            comm.clear_published()  # begin_step housekeeping: spares stream keys
            comm.barrier()
            fetched = comm.fetch((rank + 1) % 2, STREAM_KEY_PREFIX + "x")
            comm.barrier()
            comm.release_keyed("x")
            return float(fetched[0])

        assert run_distributed(worker, 2).results == [1.0, 0.0]

    def test_keyed_allgathers_concurrent_with_barrier_collectives(self):
        """A background thread streaming keyed allgathers must never perturb
        the main thread's counter-ordered collectives (the property the
        pipelined sampled-training loop stands on)."""
        import threading

        def worker(rank, comm):
            background = {}

            def stream():
                rounds = []
                for step in range(6):
                    gathered = comm.allgather_keyed(
                        f"bg/{step}", np.array([rank * 100 + step], dtype=np.int64),
                        tag="sample_frontier",
                    )
                    rounds.append([int(g[0]) for g in gathered])
                background["rounds"] = rounds

            thread = threading.Thread(target=stream)
            thread.start()
            main = [
                float(comm.allreduce(np.array([float(rank + step)]))[0])
                for step in range(6)
            ]
            thread.join()
            comm.barrier()
            for step in range(6):
                comm.release_keyed(f"bg/{step}")
            return main, background["rounds"]

        result = run_distributed(worker, 2)
        for main, rounds in result.results:
            assert main == [sum(r + step for r in range(2)) for step in range(6)]
            assert rounds == [[step, 100 + step] for step in range(6)]

    def test_sample_frontier_time_hidden_by_overlap_tags(self):
        from repro.distributed.cost_model import SAMPLING_OVERLAP_TAGS

        def worker(rank, comm):
            comm.allgather_keyed("f/0", np.ones(4096, dtype=np.int64),
                                 tag="sample_frontier")
            x = np.random.randn(150, 150)
            for _ in range(8):
                x = x @ x.T
                x /= np.abs(x).max()
            comm.barrier()
            comm.release_keyed("f/0")
            return None

        result = run_distributed(worker, 2)
        spec = ClusterSpec(bandwidth_mbps=1.0, latency_s=0.0)
        serial = epoch_cost(result, spec)
        overlapped = epoch_cost(result, spec, overlap_tags=SAMPLING_OVERLAP_TAGS)
        assert serial.hidden_comm_time_s == 0.0
        assert overlapped.hidden_comm_time_s > 0.0
        assert overlapped.epoch_time_s < serial.epoch_time_s


class TestFailureHandling:
    def test_worker_exception_propagates_without_deadlock(self):
        def worker(rank, comm):
            if rank == 1:
                raise ValueError("boom")
            # Other workers would block here forever without the abort machinery.
            comm.barrier()
            return True

        with pytest.raises(RuntimeError, match="boom"):
            run_distributed(worker, 3, timeout_s=20)

    def test_bad_worker_args_length(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(ValueError):
            cluster.run(lambda rank, comm, arg: arg, worker_args=[1])

    def test_invalid_exchange_destination(self):
        def worker(rank, comm):
            comm.exchange("x", {99: np.ones(1)})

        with pytest.raises(RuntimeError):
            run_distributed(worker, 2, timeout_s=20)


class TestMemoryAndTiming:
    def test_per_worker_memory_isolated(self):
        def worker(rank, comm):
            tensors = [Tensor(np.zeros((1000 * (rank + 1),), dtype=np.float32))]
            comm.barrier()
            return tensors[0].nbytes

        result = run_distributed(worker, 3)
        peaks = result.peak_memory_bytes
        assert peaks[0] < peaks[1] < peaks[2]
        assert peaks[0] >= 4000

    def test_compute_times_recorded(self):
        def worker(rank, comm):
            x = np.random.randn(400, 400)
            for _ in range(10):
                x = x @ x.T
                x /= np.abs(x).max()
            return None

        result = run_distributed(worker, 2)
        assert all(t >= 0 for t in result.compute_times)
        assert max(result.compute_times) > 0

    def test_summary_keys(self):
        result = run_distributed(lambda rank, comm: None, 2)
        summary = result.summary()
        assert {"world_size", "max_peak_memory_mb", "max_compute_time_s",
                "total_comm_mb"} <= set(summary)


class TestCostModel:
    def _result(self, world_size=2):
        def worker(rank, comm):
            local = Tensor(np.ones(1000, dtype=np.float32))
            comm.publish("x", local.data)
            comm.fetch((rank + 1) % comm.world_size, "x")
            comm.barrier()
            return None

        return run_distributed(worker, world_size)

    def test_epoch_cost_includes_compute_and_comm(self):
        report = epoch_cost(self._result(), ClusterSpec(bandwidth_mbps=1.0, latency_s=0.0))
        assert report.epoch_time_s >= report.comm_time_s > 0

    def test_lower_bandwidth_increases_modeled_time(self):
        result = self._result()
        fast = epoch_cost(result, ClusterSpec(bandwidth_mbps=10_000.0))
        slow = epoch_cost(result, ClusterSpec(bandwidth_mbps=1.0))
        assert slow.epoch_time_s > fast.epoch_time_s

    def test_oom_flag(self):
        result = self._result()
        spec = ClusterSpec(memory_budget_mb=1e-9)
        assert epoch_cost(result, spec).any_oom
        assert not epoch_cost(result, ClusterSpec(memory_budget_mb=1e6)).any_oom

    def test_num_epochs_scales_down(self):
        result = self._result()
        one = epoch_cost(result, num_epochs=1)
        two = epoch_cost(result, num_epochs=2)
        assert two.epoch_time_s < one.epoch_time_s

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            epoch_cost(self._result(), num_epochs=0)

    def test_scaling_table_sorted(self):
        result = self._result()
        table = scaling_table({4: epoch_cost(result), 2: epoch_cost(result)})
        assert [row["num_workers"] for row in table] == [2, 4]


class TestSharedStoreFixes:
    """Regression tests for the thread-backend aliasing and waiting fixes."""

    def test_self_fetch_whole_array_is_a_copy(self):
        """Mutating a self-fetched array must not corrupt what peers fetch."""
        def worker(rank, comm):
            comm.publish("w", np.zeros(4, dtype=np.float32))
            own = comm.fetch(rank, "w")  # rows=None: previously aliased the store
            own += 99.0
            comm.barrier()
            peer = comm.fetch((rank + 1) % 2, "w")
            comm.barrier()
            return float(peer.sum())

        result = run_distributed(worker, 2)
        assert result.results == [0.0, 0.0]

    def test_self_fetch_row_subset_is_a_copy(self):
        def worker(rank, comm):
            data = np.arange(6, dtype=np.float32)
            comm.publish("w", data)
            rows = comm.fetch(rank, "w", rows=np.array([0, 1]))
            rows += 50.0
            comm.barrier()
            return float(data[0])

        result = run_distributed(worker, 2)
        assert result.results == [0.0, 0.0]

    def test_wait_get_blocks_until_publish_and_times_out(self):
        import threading
        import time

        from repro.distributed.thread_backend import SharedStore

        store = SharedStore(world_size=2, timeout_s=0.2)
        with pytest.raises(TimeoutError):
            store.wait_get(0, "missing")

        store = SharedStore(world_size=2, timeout_s=30.0)
        payload = np.arange(3, dtype=np.float32)

        def publish_later():
            time.sleep(0.05)
            store.put(1, "late", payload)

        thread = threading.Thread(target=publish_later)
        start = time.monotonic()
        thread.start()
        got = store.wait_get(1, "late")
        elapsed = time.monotonic() - start
        thread.join()
        np.testing.assert_array_equal(got, payload)
        assert elapsed < 5.0  # woke on the event, not the full timeout

    def test_wait_get_sees_republished_key(self):
        import threading
        import time

        from repro.distributed.thread_backend import SharedStore

        store = SharedStore(world_size=2, timeout_s=30.0)
        store.put(0, "k", np.zeros(1, dtype=np.float32))
        store.remove(0, "k")

        def republished():
            time.sleep(0.05)
            store.put(0, "k", np.ones(1, dtype=np.float32))

        thread = threading.Thread(target=republished)
        thread.start()
        got = store.wait_get(0, "k")
        thread.join()
        np.testing.assert_array_equal(got, np.ones(1, dtype=np.float32))


class TestCommStatsSnapshot:
    def test_snapshot_consistent_under_concurrent_updates(self):
        import threading

        from repro.distributed.comm import CommStats

        stats = CommStats()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                stats.record_send(7, tag="halo")
                stats.record_recv(7, tag="halo")

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                snap = stats.snapshot()
                # Per-tag byte totals must always agree with message counts.
                assert snap.get("sent:halo", 0) == 7 * snap["messages_sent"]
                assert snap.get("recv:halo", 0) == 7 * snap["messages_received"]
                assert snap["bytes_sent"] == snap.get("sent:halo", 0)
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_abort_wakes_reader_even_after_event_discarded(self):
        import threading
        import time

        from repro.distributed.thread_backend import ClusterAborted, SharedStore

        store = SharedStore(world_size=2, timeout_s=30.0)
        outcome = {}

        def reader():
            try:
                store.wait_get(0, "k")
            except ClusterAborted:
                outcome["aborted_at"] = time.monotonic()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)  # reader is parked on its registered event
        store.remove(0, "k")  # discards the event the reader may hold
        start = time.monotonic()
        store.abort("boom")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome["aborted_at"] - start < 2.0  # woke promptly, not at timeout
