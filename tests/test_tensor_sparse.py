"""Unit and property-based tests for the sparse / segment message-passing ops."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, check_gradients
from repro.tensor.sparse import (
    build_csr,
    edge_softmax,
    edge_softmax_np,
    segment_count_np,
    segment_max_np,
    segment_mean_np,
    segment_sum,
    segment_sum_np,
    segment_mean,
    spmm,
    u_mul_e_sum,
)


@pytest.fixture
def edge_set(rng):
    num_src, num_dst, num_edges = 7, 5, 20
    src = rng.integers(0, num_src, size=num_edges)
    dst = rng.integers(0, num_dst, size=num_edges)
    return src, dst, num_src, num_dst


class TestSegmentHelpers:
    def test_segment_sum_matches_loop(self, rng):
        values = rng.standard_normal((10, 3)).astype(np.float32)
        segs = rng.integers(0, 4, size=10)
        out = segment_sum_np(values, segs, 4)
        expected = np.zeros((4, 3), dtype=np.float32)
        for v, s in zip(values, segs):
            expected[s] += v
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_segment_sum_empty_segment_is_zero(self):
        values = np.ones((3, 2), dtype=np.float32)
        out = segment_sum_np(values, np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out[1], 0.0)
        np.testing.assert_allclose(out[3], 0.0)

    def test_segment_mean_divides_by_count(self):
        values = np.array([[2.0], [4.0], [6.0]], dtype=np.float32)
        out = segment_mean_np(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out, [[3.0], [6.0]])

    def test_segment_max_initial_for_empty(self):
        values = np.array([[1.0], [5.0]], dtype=np.float32)
        out = segment_max_np(values, np.array([1, 1]), 3)
        assert out[0, 0] == -np.inf and out[2, 0] == -np.inf
        assert out[1, 0] == 5.0

    def test_segment_count(self):
        counts = segment_count_np(np.array([0, 0, 2, 2, 2]), 4)
        np.testing.assert_array_equal(counts, [2, 0, 3, 0])

    def test_build_csr_aggregates_parallel_edges(self):
        src = np.array([0, 0])
        dst = np.array([1, 1])
        mat = build_csr(src, dst, num_dst=2, num_src=2)
        assert mat[1, 0] == 2.0

    @given(st.integers(2, 30), st.integers(1, 60), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_segment_sum_total_is_preserved(self, num_segments, num_items, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((num_items, 2)).astype(np.float64)
        segs = rng.integers(0, num_segments, size=num_items)
        out = segment_sum_np(values, segs, num_segments)
        np.testing.assert_allclose(out.sum(axis=0), values.sum(axis=0), atol=1e-8)

    @given(st.integers(1, 20), st.integers(1, 50), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_edge_softmax_np_sums_to_one_per_destination(self, num_dst, num_edges, seed):
        rng = np.random.default_rng(seed)
        scores = (5 * rng.standard_normal((num_edges, 2))).astype(np.float32)
        dst = rng.integers(0, num_dst, size=num_edges)
        alpha = edge_softmax_np(scores, dst, num_dst)
        sums = segment_sum_np(alpha, dst, num_dst)
        present = segment_count_np(dst, num_dst) > 0
        np.testing.assert_allclose(sums[present], 1.0, rtol=1e-4)


class TestSpMM:
    def test_forward_matches_dense(self, rng):
        adj = sp.random(6, 8, density=0.4, format="csr", dtype=np.float32, random_state=0)
        x = Tensor(rng.standard_normal((8, 3)).astype(np.float32), requires_grad=True)
        out = spmm(x, adj)
        np.testing.assert_allclose(out.data, adj.toarray() @ x.data, rtol=1e-4, atol=1e-5)

    def test_gradients(self, rng):
        adj = sp.random(5, 6, density=0.5, format="csr", dtype=np.float32, random_state=1)
        x = Tensor(rng.standard_normal((6, 2)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (spmm(x, adj) ** 2).sum(), [x])

    def test_three_dimensional_features(self, rng):
        adj = sp.random(4, 5, density=0.6, format="csr", dtype=np.float32, random_state=2)
        x = Tensor(rng.standard_normal((5, 2, 3)).astype(np.float32), requires_grad=True)
        out = spmm(x, adj)
        assert out.shape == (4, 2, 3)
        check_gradients(lambda: (spmm(x, adj) ** 2).sum(), [x])

    def test_shape_mismatch_raises(self, rng):
        adj = sp.eye(4, format="csr", dtype=np.float32)
        x = Tensor(rng.standard_normal((5, 2)).astype(np.float32))
        with pytest.raises(ValueError):
            spmm(x, adj)


class TestDifferentiableSegmentOps:
    def test_segment_sum_gradients(self, rng):
        values = Tensor(rng.standard_normal((12, 3)).astype(np.float32), requires_grad=True)
        segs = rng.integers(0, 5, size=12)
        check_gradients(lambda: (segment_sum(values, segs, 5) ** 2).sum(), [values])

    def test_segment_mean_gradients(self, rng):
        values = Tensor(rng.standard_normal((10, 2)).astype(np.float32), requires_grad=True)
        segs = rng.integers(0, 4, size=10)
        check_gradients(lambda: (segment_mean(values, segs, 4) ** 2).sum(), [values])

    def test_segment_mean_empty_segments_zero(self, rng):
        values = Tensor(np.ones((2, 2), dtype=np.float32))
        out = segment_mean(values, np.array([3, 3]), 5)
        np.testing.assert_allclose(out.data[0], 0.0)


class TestUMulESum:
    def test_forward_matches_loop(self, edge_set, rng):
        src, dst, num_src, num_dst = edge_set
        x = Tensor(rng.standard_normal((num_src, 2, 3)).astype(np.float32))
        w = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32))
        out = u_mul_e_sum(x, w, src, dst, num_dst).data
        expected = np.zeros((num_dst, 2, 3), dtype=np.float32)
        for e, (s, d) in enumerate(zip(src, dst)):
            expected[d] += w.data[e][:, None] * x.data[s]
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_gradients_multi_head(self, edge_set, rng):
        src, dst, num_src, num_dst = edge_set
        x = Tensor(rng.standard_normal((num_src, 2, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (u_mul_e_sum(x, w, src, dst, num_dst) ** 2).sum(), [x, w])

    def test_gradients_single_head_2d(self, edge_set, rng):
        src, dst, num_src, num_dst = edge_set
        x = Tensor(rng.standard_normal((num_src, 4)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((len(src),)).astype(np.float32), requires_grad=True)
        out = u_mul_e_sum(x, w, src, dst, num_dst)
        assert out.shape == (num_dst, 4)
        check_gradients(lambda: (u_mul_e_sum(x, w, src, dst, num_dst) ** 2).sum(), [x, w])


class TestEdgeSoftmax:
    def test_normalization_per_destination(self, edge_set, rng):
        src, dst, num_src, num_dst = edge_set
        scores = Tensor(rng.standard_normal((len(src), 3)).astype(np.float32))
        alpha = edge_softmax(scores, dst, num_dst).data
        sums = segment_sum_np(alpha, dst, num_dst)
        present = segment_count_np(dst, num_dst) > 0
        np.testing.assert_allclose(sums[present], 1.0, rtol=1e-5)

    def test_gradients(self, edge_set, rng):
        src, dst, num_src, num_dst = edge_set
        scores = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32), requires_grad=True)
        weights = rng.standard_normal((len(src), 2)).astype(np.float32)
        check_gradients(lambda: ((edge_softmax(scores, dst, num_dst) * weights) ** 2).sum(),
                        [scores])

    def test_large_scores_stay_finite(self):
        scores = Tensor(np.array([[500.0], [501.0], [499.0]], dtype=np.float32))
        alpha = edge_softmax(scores, np.array([0, 0, 0]), 1).data
        assert np.all(np.isfinite(alpha))
        assert np.isclose(alpha.sum(), 1.0, rtol=1e-5)
