"""Tests for the mini-batch neighbour-sampling subsystem (repro.sample).

The two load-bearing contracts:

* ``fanout=-1`` sampling reproduces the full-neighbourhood MFG pipeline
  **bit-identically** (node orderings, edge order, logits);
* sampling is counter-based deterministic — batches depend only on
  ``(seed, epoch, batch, layer)``, never on threads, iteration order, or how
  the nodes are split across callers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    Graph,
    HeteroGraph,
    build_hetero_mfg_pipeline,
    build_mfg_pipeline,
)
from repro.nn.models import GATNet, GraphSageNet, RGCNNet
from repro.sample import (
    InEdgeIndex,
    MiniBatchDataLoader,
    NeighborSampler,
    NeighborSamplingConfig,
    sample_in_edges,
)
from repro.tensor import Tensor
from repro.tensor import edge_plan as edge_plan_mod
from repro.training.trainer import FullBatchTrainer, TrainingConfig
from repro.utils.seed import mix_seed, set_seed


@pytest.fixture
def star_with_isolated() -> Graph:
    """Nodes 1..4 feed node 0; node 5 is isolated; node 6 has one in-edge."""
    src = np.array([1, 2, 3, 4, 2])
    dst = np.array([0, 0, 0, 0, 6])
    return Graph(7, src, dst)


# --------------------------------------------------------------------------- #
# sample_in_edges
# --------------------------------------------------------------------------- #
class TestSampleInEdges:
    def test_fanout_minus_one_takes_full_neighbourhood(self, star_with_isolated):
        index = InEdgeIndex.from_graph(star_with_isolated)
        sel = sample_in_edges(index, np.array([0, 5, 6]), -1, False, key=7)
        np.testing.assert_array_equal(np.sort(index.eids[sel]), [0, 1, 2, 3, 4])

    def test_fanout_zero_and_isolated_nodes_sample_nothing(self, star_with_isolated):
        index = InEdgeIndex.from_graph(star_with_isolated)
        assert sample_in_edges(index, np.array([0]), 0, False, key=7).size == 0
        assert sample_in_edges(index, np.array([5]), 3, False, key=7).size == 0
        assert sample_in_edges(index, np.array([5]), 3, True, key=7).size == 0

    def test_fanout_larger_than_degree_without_replacement(self, star_with_isolated):
        index = InEdgeIndex.from_graph(star_with_isolated)
        sel = sample_in_edges(index, np.array([0, 6]), 100, False, key=7)
        np.testing.assert_array_equal(np.sort(index.eids[sel]), [0, 1, 2, 3, 4])

    def test_without_replacement_caps_and_dedupes(self, sbm_graph):
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        degrees = index.degrees(nodes)
        sel = sample_in_edges(index, nodes, 3, False, key=11)
        eids = index.eids[sel]
        assert len(np.unique(eids)) == len(eids)
        per_dst = np.bincount(index.dst[sel], minlength=sbm_graph.num_nodes)
        np.testing.assert_array_equal(per_dst, np.minimum(degrees, 3))

    def test_with_replacement_draws_exactly_fanout(self, sbm_graph):
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        sel = sample_in_edges(index, nodes, 5, True, key=11)
        per_dst = np.bincount(index.dst[sel], minlength=sbm_graph.num_nodes)
        nonzero = index.degrees(nodes) > 0
        np.testing.assert_array_equal(per_dst[nonzero], 5)
        # Draws come from each node's own candidate list.
        assert np.all(index.dst[sel] == sbm_graph.dst[index.eids[sel]])

    def test_returns_ascending_edge_ids_per_key(self, sbm_graph):
        index = InEdgeIndex.from_graph(sbm_graph)
        sel = sample_in_edges(index, np.arange(60), 4, False, key=3)
        assert np.all(np.diff(index.eids[sel]) >= 0)

    @pytest.mark.parametrize("replace", [False, True])
    def test_split_invariance(self, sbm_graph, replace):
        """Sampling node subsets separately equals sampling them together.

        This is the property the cooperative distributed sampler stands on:
        any partition of the destinations over workers draws the same edges.
        """
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        together = sample_in_edges(index, nodes, 4, replace, key=99)
        split = np.concatenate([
            sample_in_edges(index, nodes[::2], 4, replace, key=99),
            sample_in_edges(index, nodes[1::2], 4, replace, key=99),
        ])
        np.testing.assert_array_equal(
            np.sort(index.eids[together]), np.sort(index.eids[split])
        )

    def test_keys_decorrelate(self, sbm_graph):
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        a = sample_in_edges(index, nodes, 3, False, key=mix_seed(0, 1))
        b = sample_in_edges(index, nodes, 3, False, key=mix_seed(0, 2))
        assert not np.array_equal(index.eids[a], index.eids[b])


# --------------------------------------------------------------------------- #
# NeighborSampler — homogeneous
# --------------------------------------------------------------------------- #
class TestNeighborSampler:
    def test_full_fanout_matches_mfg_pipeline_bitwise(self, sbm_graph, rng):
        seeds = np.sort(rng.choice(sbm_graph.num_nodes, 12, replace=False))
        mfg = build_mfg_pipeline(sbm_graph, seeds, 2)
        sampled = NeighborSampler(sbm_graph, [-1, -1], seed=5).sample(seeds, 3, 4)
        for layer in range(2):
            ref, got = mfg.layer_block(layer), sampled.layer_block(layer)
            np.testing.assert_array_equal(ref.src_nodes, got.src_nodes)
            np.testing.assert_array_equal(ref.dst_nodes, got.dst_nodes)
            np.testing.assert_array_equal(ref.src, got.src)
            np.testing.assert_array_equal(ref.dst, got.dst)
            np.testing.assert_array_equal(ref.dst_in_src, got.dst_in_src)

    @pytest.mark.parametrize("model_cls", ["sage", "gat"])
    def test_full_fanout_logits_bit_identical(self, sbm_graph, rng, model_cls):
        seeds = np.sort(rng.choice(sbm_graph.num_nodes, 10, replace=False))
        features = rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32)
        mfg = build_mfg_pipeline(sbm_graph, seeds, 2)
        sampled = NeighborSampler(sbm_graph, [-1, -1], seed=0).sample(seeds)
        set_seed(0)
        if model_cls == "sage":
            model = GraphSageNet(8, 8, 3, num_layers=2, dropout=0.0, use_batch_norm=False)
        else:
            model = GATNet(8, 4, 3, num_layers=2, num_heads=2, dropout=0.0,
                           use_batch_norm=False)
        ref = model(mfg, Tensor(mfg.gather_inputs(features))).data
        got = model(sampled, Tensor(sampled.gather_inputs(features))).data
        np.testing.assert_array_equal(ref, got)

    def test_sampled_pipeline_runs_and_respects_fanout(self, sbm_graph, rng):
        seeds = np.sort(rng.choice(sbm_graph.num_nodes, 20, replace=False))
        pipeline = NeighborSampler(sbm_graph, [3, 2], seed=1).sample(seeds)
        np.testing.assert_array_equal(pipeline.output_nodes, seeds)
        for layer, fanout in enumerate([3, 2]):
            block = pipeline.layer_block(layer)
            degrees = np.bincount(block.dst, minlength=block.num_dst_nodes)
            assert degrees.max() <= fanout
        features = rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32)
        model = GraphSageNet(8, 8, 3, num_layers=2, dropout=0.0, use_batch_norm=False)
        logits = model(pipeline, Tensor(pipeline.gather_inputs(features)))
        assert logits.shape == (len(seeds), 3)

    def test_sampled_mean_normalizes_by_sampled_degree(self, star_with_isolated):
        graph = star_with_isolated
        features = np.zeros((7, 1), dtype=np.float32)
        features[1:5, 0] = [10.0, 20.0, 30.0, 40.0]
        pipeline = NeighborSampler(graph, [2], seed=3).sample([0])
        block = pipeline.layer_block(0)
        assert block.num_edges == 2
        plan = block.plan()
        out = plan.aggregate_mean(pipeline.gather_inputs(features))
        sampled_sources = block.src_nodes[block.src]
        expected = features[sampled_sources, 0].mean()
        np.testing.assert_allclose(out[0, 0], expected)

    def test_isolated_seed_gets_zero_aggregation(self, star_with_isolated):
        pipeline = NeighborSampler(star_with_isolated, [2, 2], seed=0).sample([5])
        features = np.ones((7, 4), dtype=np.float32)
        model = GraphSageNet(4, 4, 2, num_layers=2, dropout=0.0, use_batch_norm=False)
        logits = model(pipeline, Tensor(pipeline.gather_inputs(features)))
        assert logits.shape == (1, 2)
        assert np.all(np.isfinite(logits.data))

    def test_same_epoch_batch_reproduces_and_others_differ(self, sbm_graph, rng):
        seeds = np.sort(rng.choice(sbm_graph.num_nodes, 30, replace=False))
        sampler = NeighborSampler(sbm_graph, [3, 3], seed=7)
        a = sampler.sample(seeds, epoch=2, batch_index=1)
        b = sampler.sample(seeds, epoch=2, batch_index=1)
        c = sampler.sample(seeds, epoch=3, batch_index=1)
        for layer in range(2):
            np.testing.assert_array_equal(a.layer_block(layer).src,
                                          b.layer_block(layer).src)
        assert any(
            not np.array_equal(a.layer_block(layer).src_nodes,
                               c.layer_block(layer).src_nodes)
            or not np.array_equal(a.layer_block(layer).src, c.layer_block(layer).src)
            for layer in range(2)
        )

    def test_seed_defaults_to_global_stream(self, sbm_graph):
        set_seed(42)
        a = NeighborSampler(sbm_graph, [3], seed=None)
        set_seed(42)
        b = NeighborSampler(sbm_graph, [3], seed=None)
        assert a.seed == b.seed

    def test_validation_errors(self, sbm_graph):
        with pytest.raises(ValueError, match="fanouts"):
            NeighborSampler(sbm_graph, [])
        with pytest.raises(ValueError, match="fanout"):
            NeighborSampler(sbm_graph, [-2])
        with pytest.raises(ValueError, match="HeteroGraph"):
            NeighborSampler(sbm_graph, [{"rel": 3}])
        sampler = NeighborSampler(sbm_graph, [3])
        with pytest.raises(ValueError, match="at least one"):
            sampler.sample(np.array([], dtype=np.int64))


# --------------------------------------------------------------------------- #
# NeighborSampler — heterogeneous
# --------------------------------------------------------------------------- #
@pytest.fixture
def hetero_graph(rng) -> HeteroGraph:
    num_nodes = 40
    relations = {
        "dense": (rng.integers(0, num_nodes, 160), rng.integers(0, num_nodes, 160)),
        "sparse": (rng.integers(0, num_nodes, 30), rng.integers(0, num_nodes, 30)),
        "empty": (np.array([], dtype=np.int64), np.array([], dtype=np.int64)),
    }
    return HeteroGraph(num_nodes, relations)


class TestHeteroSampling:
    def test_full_fanout_matches_hetero_mfg_pipeline(self, hetero_graph, rng):
        seeds = np.sort(rng.choice(hetero_graph.num_nodes, 6, replace=False))
        mfg = build_hetero_mfg_pipeline(hetero_graph, seeds, 2)
        sampled = NeighborSampler(hetero_graph, [-1, -1], seed=0).sample(seeds)
        for layer in range(2):
            ref, got = mfg.layer_block(layer), sampled.layer_block(layer)
            np.testing.assert_array_equal(ref.src_nodes, got.src_nodes)
            np.testing.assert_array_equal(ref.dst_nodes, got.dst_nodes)
            assert ref.relation_names == got.relation_names
            for name in ref.relation_names:
                np.testing.assert_array_equal(ref.relation_edges[name][0],
                                              got.relation_edges[name][0])
                np.testing.assert_array_equal(ref.relation_edges[name][1],
                                              got.relation_edges[name][1])

    def test_per_relation_fanouts_and_empty_relation(self, hetero_graph, rng):
        seeds = np.sort(rng.choice(hetero_graph.num_nodes, 8, replace=False))
        fanouts = [{"dense": 2, "sparse": -1, "empty": 3}, 1]
        pipeline = NeighborSampler(hetero_graph, fanouts, seed=4).sample(seeds)
        block = pipeline.layer_block(0)
        dense_dst = block.relation_edges["dense"][1]
        degrees = np.bincount(dense_dst, minlength=block.num_dst_nodes)
        assert degrees.max() <= 2
        assert block.relation_edges["empty"][0].size == 0
        features = rng.standard_normal((hetero_graph.num_nodes, 6)).astype(np.float32)
        model = RGCNNet(6, 8, 3, hetero_graph.relation_names, num_layers=2,
                        dropout=0.0, use_batch_norm=False)
        logits = model(pipeline, Tensor(pipeline.gather_inputs(features)))
        assert logits.shape == (len(seeds), 3)

    def test_unknown_relation_rejected(self, hetero_graph):
        with pytest.raises(KeyError, match="Unknown relations"):
            NeighborSampler(hetero_graph, [{"nope": 2}])

    def test_partial_fanout_mapping_rejected(self, hetero_graph):
        """Omitting a relation must be explicit (0), never a silent skip."""
        with pytest.raises(ValueError, match="missing"):
            NeighborSampler(hetero_graph, [{"dense": 2}])


# --------------------------------------------------------------------------- #
# MiniBatchDataLoader
# --------------------------------------------------------------------------- #
class TestMiniBatchDataLoader:
    def _loader(self, graph, seeds, **kwargs):
        sampler = NeighborSampler(graph, [3, 3], seed=kwargs.pop("seed", 9))
        return MiniBatchDataLoader(sampler, seeds, **kwargs)

    def test_batch_count_and_drop_last(self, sbm_graph):
        seeds = np.arange(50)
        assert len(self._loader(sbm_graph, seeds, batch_size=20)) == 3
        assert len(self._loader(sbm_graph, seeds, batch_size=20, drop_last=True)) == 2
        with pytest.raises(ValueError, match="drop_last"):
            self._loader(sbm_graph, np.arange(5), batch_size=10, drop_last=True)

    def test_epoch_covers_every_seed_exactly_once(self, sbm_graph):
        seeds = np.arange(45)
        loader = self._loader(sbm_graph, seeds, batch_size=20)
        seen = np.concatenate(
            [loader.batch_seed_ids(1, index) for index in range(len(loader))]
        )
        np.testing.assert_array_equal(np.sort(seen), seeds)

    def test_shuffle_determinism_and_epoch_variation(self, sbm_graph):
        seeds = np.arange(40)
        loader_a = self._loader(sbm_graph, seeds, batch_size=16)
        loader_b = self._loader(sbm_graph, seeds, batch_size=16)
        np.testing.assert_array_equal(loader_a.batch_seed_ids(5, 0),
                                      loader_b.batch_seed_ids(5, 0))
        assert not np.array_equal(loader_a.batch_seed_ids(5, 0),
                                  loader_a.batch_seed_ids(6, 0))
        unshuffled = self._loader(sbm_graph, seeds, batch_size=16, shuffle=False)
        np.testing.assert_array_equal(unshuffled.batch_seed_ids(5, 0), seeds[:16])

    @pytest.mark.parametrize("num_workers", [0, 1, 2])
    def test_prefetch_identical_to_synchronous(self, sbm_graph, num_workers):
        seeds = np.arange(60)
        reference = list(
            self._loader(sbm_graph, seeds, batch_size=16, num_workers=0).iter_epoch(2)
        )
        got = list(
            self._loader(
                sbm_graph, seeds, batch_size=16, num_workers=num_workers
            ).iter_epoch(2)
        )
        assert len(reference) == len(got) == 4
        for ref, batch in zip(reference, got):
            np.testing.assert_array_equal(ref.seeds, batch.seeds)
            for layer in range(2):
                np.testing.assert_array_equal(ref.pipeline.layer_block(layer).src,
                                              batch.pipeline.layer_block(layer).src)

    def test_resident_batches_bounded(self, sbm_graph):
        loader = self._loader(sbm_graph, np.arange(60), batch_size=6, num_workers=2)
        for _ in loader.iter_epoch(1):
            pass
        assert 1 <= loader.peak_resident_batches <= 2

    def test_worker_errors_propagate(self, sbm_graph, monkeypatch):
        loader = self._loader(sbm_graph, np.arange(30), batch_size=10, num_workers=2)

        def boom(*args, **kwargs):
            raise RuntimeError("sampler exploded")

        monkeypatch.setattr(loader.sampler, "sample_structure", boom)
        with pytest.raises(RuntimeError, match="sampler exploded"):
            list(loader.iter_epoch(1))

    def test_auto_epoch_iteration_advances(self, sbm_graph):
        loader = self._loader(sbm_graph, np.arange(32), batch_size=16)
        first = [batch.seeds for batch in loader]
        second = [batch.seeds for batch in loader]
        assert not all(np.array_equal(a, b) for a, b in zip(first, second))


# --------------------------------------------------------------------------- #
# plan reuse across batches
# --------------------------------------------------------------------------- #
class TestPlanReuse:
    def test_deterministic_batches_reuse_plans_across_epochs(self, sbm_graph):
        sampler = NeighborSampler(sbm_graph, [-1, -1], seed=0)
        loader = MiniBatchDataLoader(sampler, np.arange(40), batch_size=20,
                                     shuffle=False, num_workers=0)

        def run_epoch(epoch):
            for batch in loader.iter_epoch(epoch):
                for layer in range(2):
                    block = batch.pipeline.layer_block(layer)
                    plan = block.plan()
                    plan.aggregate_sum(np.ones((block.num_src_nodes, 2), np.float32))
                    plan.aggregate_sum_t(np.ones((block.num_dst_nodes, 2), np.float32))

        run_epoch(1)
        edge_plan_mod.reset_build_counter()
        run_epoch(2)
        run_epoch(3)
        assert edge_plan_mod.build_counter == 0

    def test_plan_cache_lru_eviction(self):
        cache = edge_plan_mod.PlanCache(capacity=2)
        src = np.array([0, 1])
        dst = np.array([1, 0])
        a = cache.get(src, dst, 2, 2)
        assert cache.get(src, dst, 2, 2) is a
        cache.get(src, dst, 3, 2)
        cache.get(src, dst, 4, 2)
        assert len(cache) == 2
        assert cache.get(src, dst, 2, 2) is not a  # evicted and rebuilt
        assert cache.hits == 1 and cache.misses == 4


# --------------------------------------------------------------------------- #
# trainer integration
# --------------------------------------------------------------------------- #
class TestTrainerIntegration:
    def test_sampler_and_mfg_seeds_are_exclusive(self, small_dataset):
        model = GraphSageNet(small_dataset.feature_dim, 8, small_dataset.num_classes,
                             num_layers=2, dropout=0.0, use_batch_norm=False)
        config = TrainingConfig(
            sampler=NeighborSamplingConfig(fanouts=(3, 3)),
            mfg_seeds=small_dataset.train_indices(),
        )
        with pytest.raises(ValueError, match="mutually exclusive"):
            FullBatchTrainer(model, small_dataset, config)

    def test_fanouts_must_match_model_layers(self, small_dataset):
        model = GraphSageNet(small_dataset.feature_dim, 8, small_dataset.num_classes,
                             num_layers=3, dropout=0.0, use_batch_norm=False)
        config = TrainingConfig(sampler=NeighborSamplingConfig(fanouts=(3, 3)))
        with pytest.raises(ValueError, match="conv layers"):
            FullBatchTrainer(model, small_dataset, config)

    @pytest.mark.slow
    def test_sampled_training_learns(self, small_dataset):
        set_seed(0)
        model = GraphSageNet(small_dataset.feature_dim, 16, small_dataset.num_classes,
                             num_layers=2, dropout=0.0, use_batch_norm=False)
        config = TrainingConfig(
            num_epochs=8, lr=0.05, seed=0,
            sampler=NeighborSamplingConfig(fanouts=(5, 5), batch_size=40),
        )
        result = FullBatchTrainer(model, small_dataset, config).train()
        assert len(result.records) == 8
        assert result.losses()[-1] < result.losses()[0]
        # Evaluation runs over the full graph and reports every split.
        assert set(result.final_accuracies) == {"train", "val", "test"}
        assert result.final_accuracies["test"] > 0.5

    @pytest.mark.slow
    def test_full_fanout_sampled_single_batch_matches_full_batch(self, small_dataset):
        """One batch covering every train seed at fanout=-1 == MFG-restricted
        training over the train seeds (same loss trajectory)."""
        seeds = small_dataset.train_indices()
        common = dict(num_epochs=3, lr=0.05, seed=0, eval_every=0)
        model_kwargs = dict(num_layers=2, dropout=0.0, use_batch_norm=False)

        set_seed(0)
        baseline = FullBatchTrainer(
            GraphSageNet(small_dataset.feature_dim, 16, small_dataset.num_classes,
                         **model_kwargs),
            small_dataset, TrainingConfig(mfg_seeds=seeds, **common),
        ).train()

        set_seed(0)
        sampled = FullBatchTrainer(
            GraphSageNet(small_dataset.feature_dim, 16, small_dataset.num_classes,
                         **model_kwargs),
            small_dataset,
            TrainingConfig(
                sampler=NeighborSamplingConfig(
                    fanouts=(-1, -1), batch_size=len(seeds), shuffle=False
                ),
                **common,
            ),
        ).train()
        np.testing.assert_allclose(sampled.losses(), baseline.losses(),
                                   rtol=1e-5, atol=1e-7)
