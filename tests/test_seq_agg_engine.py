"""Tests for the unified sequential-aggregation engine.

Covers the behaviour the engine refactor must preserve and the features it
adds: SAR ↔ vanilla-DP parity (outputs, gradients, communication volumes) for
every kernel under ``prefetch=False`` and ``prefetch=True``, the new max/min
pooling aggregators (a genuine case-2 workload), the resident-halo-block
bound of the prefetch pipeline, end-to-end pooling-SAGE training, and the
split sent/received per-tag communication accounting consumed by the cost
model's overlap term.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    DOMAIN_PARALLEL,
    SAR,
    SARConfig,
    DistributedGraph,
    DistributedHeteroGraph,
    broadcast_parameters,
    sync_gradients,
)
from repro.datasets import make_hetero_sbm_dataset
from repro.distributed import (
    ClusterSpec,
    PREFETCH_OVERLAP_TAGS,
    epoch_cost,
    run_distributed,
)
from repro.partition import (
    PartitionBook,
    create_hetero_shards,
    create_shards,
    partition_graph,
)
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.optim import Adam
from repro.tensor.sparse import pool_aggregate
from repro.utils.seed import set_seed

WORLD = 4

SAR_PREFETCH = SARConfig("sar", prefetch=True)
ENGINE_CONFIGS = [SAR, SAR_PREFETCH, DOMAIN_PARALLEL]
ENGINE_CONFIG_IDS = ["sar", "sar-prefetch", "dp"]


def _shards_for(graph, num_parts=WORLD, seed=0):
    assignment = partition_graph(graph, num_parts, seed=seed)
    book = PartitionBook(assignment, num_parts)
    return book, create_shards(graph, book)


# --------------------------------------------------------------------------- #
# single-machine pooling op
# --------------------------------------------------------------------------- #
class TestPoolAggregationSingleMachine:
    @pytest.mark.parametrize("op", ["max", "min"])
    def test_forward_matches_bruteforce(self, sbm_graph, rng, op):
        z = rng.standard_normal((sbm_graph.num_nodes, 5)).astype(np.float32)
        out = pool_aggregate(Tensor(z), sbm_graph.src, sbm_graph.dst,
                             sbm_graph.num_nodes, op=op)
        reduce = np.maximum if op == "max" else np.minimum
        fill = -np.inf if op == "max" else np.inf
        expected = np.full_like(z, fill)
        for s, d in zip(sbm_graph.src, sbm_graph.dst):
            expected[d] = reduce(expected[d], z[s])
        expected = np.where(np.isfinite(expected), expected, 0.0)
        np.testing.assert_allclose(out.data, expected, rtol=1e-6, atol=1e-6)

    def test_isolated_destination_aggregates_to_zero(self):
        # Node 2 has no incoming edges.
        src = np.array([0, 1])
        dst = np.array([1, 0])
        z = Tensor(np.array([[3.0], [-2.0], [5.0]], dtype=np.float32),
                   requires_grad=True)
        out = pool_aggregate(z, src, dst, 3, op="max")
        np.testing.assert_allclose(out.data, [[-2.0], [3.0], [0.0]])
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(z.grad, [[1.0], [1.0], [0.0]])

    @pytest.mark.parametrize("op", ["max", "min"])
    def test_backward_routes_to_extremal_sources(self, sbm_graph, rng, op):
        z_data = rng.standard_normal((sbm_graph.num_nodes, 4)).astype(np.float32)
        grad_seed = rng.standard_normal(z_data.shape).astype(np.float32)
        z = Tensor(z_data, requires_grad=True)
        out = pool_aggregate(z, sbm_graph.src, sbm_graph.dst,
                             sbm_graph.num_nodes, op=op)
        out.backward(grad_seed)
        expected = np.zeros_like(z_data)
        for s, d in zip(sbm_graph.src, sbm_graph.dst):
            mask = z_data[s] == out.data[d]
            expected[s] += np.where(mask, grad_seed[d], 0.0)
        np.testing.assert_allclose(z.grad, expected, rtol=1e-5, atol=1e-5)


# --------------------------------------------------------------------------- #
# distributed pooling (the new case-2 kernel)
# --------------------------------------------------------------------------- #
class TestDistributedPooling:
    @pytest.mark.parametrize("op", ["max", "min"])
    @pytest.mark.parametrize("config", ENGINE_CONFIGS, ids=ENGINE_CONFIG_IDS)
    def test_matches_single_machine(self, sbm_graph, rng, op, config):
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, 6)).astype(np.float32)
        grad_seed = rng.standard_normal((n, 6)).astype(np.float32)
        z_ref = Tensor(z_full, requires_grad=True)
        ref_out = pool_aggregate(z_ref, sbm_graph.src, sbm_graph.dst, n, op=op)
        ref_out.backward(grad_seed)

        book, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, config)
            dg.begin_step()
            z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
            out = dg.aggregate_neighbors(z, op=op)
            out.backward(grad_seed[shard.global_node_ids])
            return out.data, z.grad

        result = run_distributed(worker, WORLD, worker_args=shards)
        np.testing.assert_allclose(
            book.scatter_to_global([r[0] for r in result.results]), ref_out.data,
            rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(
            book.scatter_to_global([r[1] for r in result.results]), z_ref.grad,
            rtol=1e-5, atol=1e-5)

    def test_pooling_is_case_2(self, sbm_graph, rng):
        """Pooling gradients need neighbour values: SAR re-fetches, DP does not,
        and SAR's total communication exceeds DP's by the re-fetch volume."""
        z_full = rng.standard_normal((sbm_graph.num_nodes, 4)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        tags, volumes = {}, {}
        for mode in ("sar", "dp"):
            def worker(rank, comm, shard, mode=mode):
                dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
                dg.begin_step()
                z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
                (dg.aggregate_neighbors(z, op="max") ** 2).sum().backward()
                return dict(comm.stats.received_by_tag)

            result = run_distributed(worker, WORLD, worker_args=shards)
            tags[mode] = result.results
            volumes[mode] = sum(sum(t.values()) for t in result.results)
        assert all("backward_refetch" in t for t in tags["sar"])
        assert all("backward_refetch" not in t for t in tags["dp"])
        assert volumes["sar"] > volumes["dp"]

    @pytest.mark.parametrize("aggregator", ["max", "min"])
    def test_sage_layer_parity(self, sbm_graph, rng, aggregator):
        """A full SageConv with pooling matches the single-machine layer."""
        set_seed(5)
        layer = nn.SageConv(8, 5, aggregator=aggregator)
        x_full = rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32)
        expected = layer(sbm_graph, Tensor(x_full)).data
        state = layer.state_dict()
        book, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            replica = nn.SageConv(8, 5, aggregator=aggregator)
            replica.load_state_dict(state)
            dg = DistributedGraph(shard, comm, SAR)
            dg.begin_step()
            x = Tensor(x_full[shard.global_node_ids], requires_grad=True)
            out = replica(dg, x)
            (out ** 2).sum().backward()
            return out.data, [p.grad.copy() for p in replica.parameters()]

        result = run_distributed(worker, WORLD, worker_args=shards)
        out_global = book.scatter_to_global([r[0] for r in result.results])
        np.testing.assert_allclose(out_global, expected, rtol=1e-4, atol=1e-4)

        x_ref = Tensor(x_full, requires_grad=True)
        layer.zero_grad()
        (layer(sbm_graph, x_ref) ** 2).sum().backward()
        for index, param in enumerate(layer.parameters()):
            total = sum(r[1][index] for r in result.results)
            np.testing.assert_allclose(total, param.grad, rtol=2e-3, atol=2e-3)


# --------------------------------------------------------------------------- #
# the prefetch pipeline
# --------------------------------------------------------------------------- #
class TestPrefetchPipeline:
    def test_prefetch_changes_neither_results_nor_volume(self, sbm_graph, rng):
        """The pipeline only overlaps fetches; bytes and math are unchanged."""
        heads, dim = 2, 3
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        s_full = rng.standard_normal((n, heads)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        outputs, volumes = {}, {}
        for prefetch in (False, True):
            def worker(rank, comm, shard, prefetch=prefetch):
                dg = DistributedGraph(shard, comm, SARConfig("sar", prefetch=prefetch))
                dg.begin_step()
                ids = shard.global_node_ids
                z = Tensor(z_full[ids], requires_grad=True)
                sd = Tensor(s_full[ids], requires_grad=True)
                ss = Tensor(s_full[ids], requires_grad=True)
                out = dg.gat_aggregate(z, sd, ss)
                (out ** 2).sum().backward()
                return out.data, z.grad, comm.stats.total_bytes

            result = run_distributed(worker, WORLD, worker_args=shards)
            outputs[prefetch] = result.results
            volumes[prefetch] = sum(r[2] for r in result.results)
        for no_pf, pf in zip(outputs[False], outputs[True]):
            np.testing.assert_allclose(pf[0], no_pf[0], rtol=1e-6, atol=1e-6)
            np.testing.assert_allclose(pf[1], no_pf[1], rtol=1e-6, atol=1e-6)
        assert volumes[True] == volumes[False]

    @pytest.mark.parametrize("config,expectation", [
        (SAR, "one"), (SAR_PREFETCH, "two"), (DOMAIN_PARALLEL, "all"),
    ], ids=ENGINE_CONFIG_IDS)
    def test_resident_remote_blocks_bound(self, sbm_graph, rng, config, expectation):
        """SAR keeps one remote halo block resident, prefetching at most two,
        vanilla DP all of them — the paper's 2/N vs 3/N memory accounting."""
        z_full = rng.standard_normal((sbm_graph.num_nodes, 4)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, config)
            dg.begin_step()
            z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
            (dg.aggregate_neighbors(z, op="max") ** 2).sum().backward()
            remote_blocks = sum(
                1 for q, b in enumerate(shard.blocks)
                if q != rank and b.num_edges > 0
            )
            return dg.engine.max_resident_remote_blocks, remote_blocks

        result = run_distributed(worker, WORLD, worker_args=shards)
        for peak, remote_blocks in result.results:
            assert remote_blocks >= 2  # otherwise the bound is vacuous
            if expectation == "one":
                assert peak == 1
            elif expectation == "two":
                assert 1 <= peak <= 2
            else:
                assert peak == remote_blocks

    def test_prefetch_parity_mean_and_rgcn(self, sbm_graph, rng):
        """Case-1 (mean) and the multi-pass R-GCN kernel are prefetch-safe."""
        z_full = rng.standard_normal((sbm_graph.num_nodes, 5)).astype(np.float32)
        grad_seed = rng.standard_normal(z_full.shape).astype(np.float32)
        adj = sbm_graph.adjacency(normalization="mean")
        book, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SAR_PREFETCH)
            dg.begin_step()
            z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
            out = dg.aggregate_neighbors(z, op="mean")
            out.backward(grad_seed[shard.global_node_ids])
            return out.data, z.grad

        result = run_distributed(worker, WORLD, worker_args=shards)
        np.testing.assert_allclose(
            book.scatter_to_global([r[0] for r in result.results]),
            np.asarray(adj @ z_full), rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(
            book.scatter_to_global([r[1] for r in result.results]),
            np.asarray(adj.T @ grad_seed), rtol=1e-3, atol=1e-3)

        # R-GCN: one engine pass per relation, under the prefetch pipeline.
        dataset = make_hetero_sbm_dataset(
            "engine-mag", num_nodes=160, num_classes=4, feature_dim=6,
            relation_specs={
                "a": {"p_in": 0.1, "p_out": 0.01},
                "b": {"p_in": 0.05, "p_out": 0.02},
            }, seed=4,
        )
        hetero = dataset.hetero_graph
        assignment = partition_graph(dataset.graph, WORLD, seed=0)
        hbook = PartitionBook(assignment, WORLD)
        hshards = create_hetero_shards(hetero, hbook)
        set_seed(9)
        layer = nn.RelGraphConv(6, 5, ["a", "b"], num_bases=2)
        x_full = rng.standard_normal((hetero.num_nodes, 6)).astype(np.float32)
        expected = layer(hetero, Tensor(x_full)).data
        state = layer.state_dict()

        def hetero_worker(rank, comm, shard):
            replica = nn.RelGraphConv(6, 5, ["a", "b"], num_bases=2)
            replica.load_state_dict(state)
            dg = DistributedHeteroGraph(shard, comm, SAR_PREFETCH)
            dg.begin_step()
            x = Tensor(x_full[shard.global_node_ids], requires_grad=True)
            out = replica(dg, x)
            (out ** 2).sum().backward()
            return out.data

        hresult = run_distributed(hetero_worker, WORLD, worker_args=hshards)
        np.testing.assert_allclose(
            hbook.scatter_to_global(hresult.results), expected, rtol=1e-3, atol=1e-3)


# --------------------------------------------------------------------------- #
# end-to-end pooling-SAGE training through the engine
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestPoolingSageTrainsEndToEnd:
    def test_max_pool_sage_trains_under_sar(self, small_dataset):
        dataset = small_dataset
        dataset.attach_to_graph()
        assignment = partition_graph(dataset.graph, WORLD, seed=0)
        book = PartitionBook(assignment, WORLD)
        shards = create_shards(dataset.graph, book)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SAR_PREFETCH)
            model = nn.GraphSageNet(dataset.feature_dim, 16, dataset.num_classes,
                                    num_layers=2, dropout=0.0, use_batch_norm=False,
                                    aggregator="max")
            broadcast_parameters(model.parameters(), comm)
            optimizer = Adam(model.parameters(), lr=0.05)
            feats = shard.node_data["feat"]
            labels = shard.node_data["label"]
            train_mask = shard.node_data["train_mask"].astype(bool)
            losses = []
            for _ in range(5):
                dg.begin_step()
                logits = model(dg, Tensor(feats))
                if train_mask.any():
                    loss = F.cross_entropy(logits[train_mask], labels[train_mask],
                                           reduction="sum")
                else:
                    loss = logits.sum() * 0.0
                model.zero_grad()
                loss.backward()
                global_count = comm.allreduce_scalar(float(train_mask.sum()))
                sync_gradients(model.parameters(), comm,
                               scale=1.0 / max(global_count, 1.0))
                optimizer.step()
                losses.append(comm.allreduce_scalar(float(loss.data)) / global_count)
            return losses, dg.engine.max_resident_remote_blocks

        result = run_distributed(worker, WORLD, worker_args=shards, timeout_s=300)
        losses = [r[0] for r in result.results]
        # Workers run replicas: every worker sees the same global loss curve.
        for other in losses[1:]:
            np.testing.assert_allclose(other, losses[0], rtol=1e-5)
        assert all(np.isfinite(losses[0]))
        assert losses[0][-1] < losses[0][0]
        # SAR memory behaviour: never more than two remote halo blocks
        # (the computing block plus the prefetched one) were resident.
        for _, peak in result.results:
            assert peak <= 2


# --------------------------------------------------------------------------- #
# communication accounting and the cost model's overlap term
# --------------------------------------------------------------------------- #
class TestCommAccounting:
    def test_per_tag_totals_are_symmetric(self, sbm_graph, rng):
        """Cluster-wide, bytes sent under a tag equal bytes received under it."""
        heads, dim = 2, 2
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        s_full = rng.standard_normal((n, heads)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SAR)
            dg.begin_step()
            ids = shard.global_node_ids
            z = Tensor(z_full[ids], requires_grad=True)
            sd = Tensor(s_full[ids], requires_grad=True)
            ss = Tensor(s_full[ids], requires_grad=True)
            (dg.gat_aggregate(z, sd, ss) ** 2).sum().backward()
            return None

        result = run_distributed(worker, WORLD, worker_args=shards)
        sent = result.total_sent_by_tag()
        received = result.total_received_by_tag()
        assert set(sent) == set(received)
        for tag in sent:
            assert sent[tag] == received[tag], tag
        assert {"forward_halo", "backward_refetch", "backward_error"} <= set(sent)

    def test_overlap_tags_hide_comm_behind_compute(self):
        def worker(rank, comm):
            comm.publish("x", np.ones((4000, 32), dtype=np.float32))
            comm.fetch((rank + 1) % comm.world_size, "x", tag="forward_halo")
            # Enough compute for a measurable thread-CPU time.
            m = np.random.default_rng(rank).standard_normal((300, 300))
            for _ in range(20):
                m = m @ m.T
                m /= np.abs(m).max()
            comm.barrier()
            return None

        result = run_distributed(worker, 2)
        spec = ClusterSpec(bandwidth_mbps=1.0, latency_s=0.0)
        serial = epoch_cost(result, spec)
        overlapped = epoch_cost(result, spec, overlap_tags=PREFETCH_OVERLAP_TAGS)
        assert overlapped.hidden_comm_time_s > 0
        assert overlapped.epoch_time_s < serial.epoch_time_s
        # Hiding is capped by both compute time and total comm time.
        for w in overlapped.workers:
            assert w.hidden_comm_time_s <= w.compute_time_s + 1e-12
            assert w.hidden_comm_time_s <= w.comm_time_s + 1e-12
