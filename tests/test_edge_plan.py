"""Tests for the EdgePlan kernel layer (sort-once/reduce-many message passing).

Every plan-backed kernel is checked against the naive scipy / ``ufunc.at``
reference implementation on adversarial edge sets (empty segments, parallel
edges, isolated sources, multiple heads), the differentiable ops are
gradchecked with plans attached, and the ``build_counter`` tests prove that a
training loop constructs each plan exactly once — the hot path performs zero
per-call sparsity derivation after warm-up.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import SAR, DistributedGraph, broadcast_parameters, sync_gradients
from repro.distributed import run_distributed
from repro.graph import Graph
from repro.graph.hetero import HeteroGraph
from repro.graph.mfg import message_flow_masks
from repro.nn.gat_fused import fused_gat_backward_np, fused_gat_forward_np
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.tensor import Tensor, edge_plan
from repro.tensor.edge_plan import EdgePlan, plans_disabled
from repro.tensor.gradcheck import check_gradients
from repro.tensor.optim import Adam
from repro.tensor.sparse import (
    edge_softmax,
    edge_softmax_np,
    neighbor_aggregate,
    pool_aggregate,
    segment_max_np,
    segment_min_np,
    segment_sum_np,
    u_add_v,
    u_mul_e_sum,
)


def _random_edges(rng, num_src, num_dst, num_edges, parallel=False):
    src = rng.integers(0, num_src, num_edges).astype(np.int64)
    dst = rng.integers(0, num_dst, num_edges).astype(np.int64)
    if parallel:
        # Duplicate a third of the edges so parallel edges must accumulate.
        take = rng.integers(0, num_edges, num_edges // 3)
        src = np.concatenate([src, src[take]])
        dst = np.concatenate([dst, dst[take]])
    return src, dst


EDGE_CASES = [
    # (num_src, num_dst, num_edges, parallel)
    pytest.param(30, 20, 150, False, id="dense"),
    pytest.param(30, 50, 40, False, id="empty-segments"),
    pytest.param(25, 25, 90, True, id="parallel-edges"),
    pytest.param(10, 10, 0, False, id="no-edges"),
]


class TestPlanKernelsMatchNaive:
    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    @pytest.mark.parametrize("trailing", [(), (3,), (2, 4)])
    def test_segment_sum(self, rng, num_src, num_dst, num_edges, parallel, trailing):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        vals = rng.standard_normal((len(src),) + trailing).astype(np.float32)
        naive = segment_sum_np(vals, dst, num_dst)
        np.testing.assert_allclose(plan.segment_sum(vals), naive, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    def test_segment_mean_max_min(self, rng, num_src, num_dst, num_edges, parallel):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        vals = rng.standard_normal((len(src), 4)).astype(np.float32)
        np.testing.assert_allclose(
            plan.segment_mean(vals),
            segment_sum_np(vals, dst, num_dst)
            / np.maximum(np.bincount(dst, minlength=num_dst), 1)[:, None],
            rtol=1e-5, atol=1e-5,
        )
        np.testing.assert_allclose(plan.segment_max(vals),
                                   segment_max_np(vals, dst, num_dst))
        np.testing.assert_allclose(plan.segment_min(vals),
                                   segment_min_np(vals, dst, num_dst))

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    def test_segment_sum_src_is_the_transpose_reduction(self, rng, num_src, num_dst,
                                                        num_edges, parallel):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        vals = rng.standard_normal((len(src), 3)).astype(np.float32)
        np.testing.assert_allclose(plan.segment_sum_src(vals),
                                   segment_sum_np(vals, src, num_src),
                                   rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    def test_aggregate_sum_mean_and_transpose(self, rng, num_src, num_dst,
                                              num_edges, parallel):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        x = rng.standard_normal((num_src, 5)).astype(np.float32)
        g = rng.standard_normal((num_dst, 5)).astype(np.float32)
        np.testing.assert_allclose(plan.aggregate_sum(x),
                                   segment_sum_np(x[src], dst, num_dst),
                                   rtol=1e-5, atol=1e-5)
        counts = np.maximum(np.bincount(dst, minlength=num_dst), 1)[:, None]
        np.testing.assert_allclose(plan.aggregate_mean(x),
                                   segment_sum_np(x[src], dst, num_dst) / counts,
                                   rtol=1e-5, atol=1e-5)
        np.testing.assert_allclose(plan.aggregate_sum_t(g),
                                   segment_sum_np(g[dst], src, num_src),
                                   rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    def test_aggregate_max_min(self, rng, num_src, num_dst, num_edges, parallel):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        x = rng.standard_normal((num_src, 4)).astype(np.float32)
        np.testing.assert_allclose(plan.aggregate_max(x),
                                   segment_max_np(x[src], dst, num_dst))
        np.testing.assert_allclose(plan.aggregate_min(x),
                                   segment_min_np(x[src], dst, num_dst))

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    @pytest.mark.parametrize("heads", [1, 4])
    def test_u_mul_e_sum_and_transpose(self, rng, num_src, num_dst, num_edges,
                                       parallel, heads):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        x = rng.standard_normal((num_src, heads, 6)).astype(np.float32)
        w = rng.standard_normal((len(src), heads)).astype(np.float32)
        g = rng.standard_normal((num_dst, heads, 6)).astype(np.float32)
        expected = np.zeros((num_dst, heads, 6), dtype=np.float32)
        for e in range(len(src)):
            expected[dst[e]] += w[e][:, None] * x[src[e]]
        np.testing.assert_allclose(plan.u_mul_e_sum(x, w), expected,
                                   rtol=1e-4, atol=1e-4)
        expected_t = np.zeros((num_src, heads, 6), dtype=np.float32)
        for e in range(len(src)):
            expected_t[src[e]] += w[e][:, None] * g[dst[e]]
        np.testing.assert_allclose(plan.u_mul_e_sum_t(g, w), expected_t,
                                   rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("num_src,num_dst,num_edges,parallel", EDGE_CASES)
    @pytest.mark.parametrize("heads", [1, 3])
    def test_edge_softmax(self, rng, num_src, num_dst, num_edges, parallel, heads):
        src, dst = _random_edges(rng, num_src, num_dst, num_edges, parallel)
        plan = EdgePlan(src, dst, num_dst, num_src)
        scores = (3.0 * rng.standard_normal((len(src), heads))).astype(np.float32)
        np.testing.assert_allclose(plan.edge_softmax(scores),
                                   edge_softmax_np(scores, dst, num_dst),
                                   rtol=1e-5, atol=1e-6)

    def test_finite_initial_clamps_like_reference(self, rng):
        """segment_max/min_np with a finite ``initial`` must clamp non-empty
        segments exactly like the ``ufunc.at`` reference path."""
        src, dst = _random_edges(rng, 20, 15, 60)
        plan = EdgePlan(src, dst, 15, 20)
        vals = -np.abs(rng.standard_normal((len(src), 3))).astype(np.float32)
        np.testing.assert_allclose(
            segment_max_np(vals, dst, 15, initial=0.0, plan=plan),
            segment_max_np(vals, dst, 15, initial=0.0),
        )
        np.testing.assert_allclose(
            segment_min_np(-vals, dst, 15, initial=0.0, plan=plan),
            segment_min_np(-vals, dst, 15, initial=0.0),
        )

    def test_shape_validation(self, rng):
        src, dst = _random_edges(rng, 10, 10, 30)
        plan = EdgePlan(src, dst, 10, 10)
        with pytest.raises(ValueError):
            plan.segment_sum(np.zeros((7, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            EdgePlan(src, dst[:-1], 10, 10)


class TestPlanBackedAutogradOps:
    """Gradcheck the differentiable ops with a plan attached."""

    def _graph(self, rng, num_nodes=12, num_edges=40):
        src, dst = _random_edges(rng, num_nodes, num_nodes, num_edges, parallel=True)
        return src, dst, EdgePlan(src, dst, num_nodes, num_nodes)

    def test_u_mul_e_sum_gradcheck(self, rng):
        src, dst, plan = self._graph(rng)
        x = Tensor(rng.standard_normal((12, 2, 3)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32), requires_grad=True)
        check_gradients(
            lambda: u_mul_e_sum(x, w, src, dst, 12, plan=plan).sum(), [x, w]
        )

    def test_edge_softmax_gradcheck(self, rng):
        src, dst, plan = self._graph(rng)
        scores = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32),
                        requires_grad=True)
        weights = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32))
        check_gradients(
            lambda: (edge_softmax(scores, dst, 12, plan=plan) * weights).sum(),
            [scores],
        )

    def test_u_add_v_gradcheck(self, rng):
        src, dst, plan = self._graph(rng)
        sd = Tensor(rng.standard_normal((12, 2)).astype(np.float32), requires_grad=True)
        ss = Tensor(rng.standard_normal((12, 2)).astype(np.float32), requires_grad=True)
        scale = Tensor(rng.standard_normal((len(src), 2)).astype(np.float32))
        check_gradients(lambda: (u_add_v(sd, ss, plan) * scale).sum(), [sd, ss])

    def test_u_add_v_matches_gather_sum(self, rng):
        src, dst, plan = self._graph(rng)
        sd = rng.standard_normal((12, 3)).astype(np.float32)
        ss = rng.standard_normal((12, 3)).astype(np.float32)
        out = u_add_v(Tensor(sd), Tensor(ss), plan)
        np.testing.assert_allclose(out.data, sd[dst] + ss[src])

    def test_neighbor_aggregate_gradcheck(self, rng):
        src, dst, plan = self._graph(rng)
        x = Tensor(rng.standard_normal((12, 4)).astype(np.float32), requires_grad=True)
        scale = Tensor(rng.standard_normal((12, 4)).astype(np.float32))
        for op in ("sum", "mean"):
            check_gradients(
                lambda op=op: (neighbor_aggregate(x, plan, op=op) * scale).sum(), [x]
            )

    def test_pool_aggregate_plan_matches_naive(self, rng):
        src, dst, plan = self._graph(rng)
        data = rng.standard_normal((12, 4)).astype(np.float32)
        grad_seed = rng.standard_normal((12, 4)).astype(np.float32)
        outputs = {}
        for use_plan in (True, False):
            x = Tensor(data.copy(), requires_grad=True)
            out = pool_aggregate(x, src, dst, 12, op="max",
                                 plan=plan if use_plan else None)
            out.backward(grad_seed)
            outputs[use_plan] = (out.data, x.grad)
        np.testing.assert_allclose(outputs[True][0], outputs[False][0])
        np.testing.assert_allclose(outputs[True][1], outputs[False][1],
                                   rtol=1e-5, atol=1e-5)

    def test_plan_and_naive_layer_outputs_match(self, rng, sbm_graph):
        """Full GAT/SAGE layers produce identical results with plans on or off."""
        x_data = rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32)
        for layer_cls, kwargs in [
            (nn.GATConv, dict(num_heads=2)),
            (nn.FusedGATConv, dict(num_heads=2)),
            (nn.SageConv, dict(aggregator="mean")),
            (nn.SageConv, dict(aggregator="max")),
        ]:
            layer = layer_cls(8, 6, **kwargs)
            x = Tensor(x_data, requires_grad=True)
            out_plan = layer(sbm_graph, x)
            out_plan.backward(np.ones_like(out_plan.data))
            grad_plan = x.grad.copy()
            with plans_disabled():
                naive_graph = Graph(sbm_graph.num_nodes, sbm_graph.src, sbm_graph.dst)
                x.grad = None
                out_naive = layer(naive_graph, x)
                out_naive.backward(np.ones_like(out_naive.data))
            np.testing.assert_allclose(out_plan.data, out_naive.data,
                                       rtol=1e-4, atol=1e-4)
            np.testing.assert_allclose(grad_plan, x.grad, rtol=1e-4, atol=1e-4)

    def test_fused_gat_np_kernels_match_naive(self, rng):
        src, dst, plan = self._graph(rng, num_nodes=15, num_edges=60)
        z = rng.standard_normal((15, 2, 4)).astype(np.float32)
        sd = rng.standard_normal((15, 2)).astype(np.float32)
        ss = rng.standard_normal((15, 2)).astype(np.float32)
        grad = rng.standard_normal((15, 2, 4)).astype(np.float32)
        fwd_plan = fused_gat_forward_np(z, sd, ss, src, dst, 15, 0.2, plan=plan)
        fwd_naive = fused_gat_forward_np(z, sd, ss, src, dst, 15, 0.2, plan=None)
        np.testing.assert_allclose(fwd_plan, fwd_naive, rtol=1e-5, atol=1e-5)
        bwd_plan = fused_gat_backward_np(grad, z, sd, ss, src, dst, 15, 0.2, plan=plan)
        bwd_naive = fused_gat_backward_np(grad, z, sd, ss, src, dst, 15, 0.2, plan=None)
        for a, b in zip(bwd_plan, bwd_naive):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-4)


class TestMessageFlowMasksWithPlan:
    def test_plan_and_adjacency_masks_agree(self, sbm_graph):
        seeds = np.array([0, 5, 77])
        with_plan = message_flow_masks(sbm_graph, seeds, 3)
        with plans_disabled():
            naive_graph = Graph(sbm_graph.num_nodes, sbm_graph.src, sbm_graph.dst)
            without = message_flow_masks(naive_graph, seeds, 3)
        for a, b in zip(with_plan, without):
            np.testing.assert_array_equal(a, b)


class TestPlanCacheStats:
    def test_counters_track_hits_misses_evictions(self):
        cache = edge_plan.PlanCache(capacity=2)
        a = (np.array([0, 1]), np.array([1, 0]))
        b = (np.array([0, 2]), np.array([2, 1]))
        c = (np.array([1, 2]), np.array([0, 0]))
        cache.get(*a, 3, 3)
        cache.get(*a, 3, 3)
        cache.get(*b, 3, 3)
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 2, "evictions": 0, "size": 2, "capacity": 2,
        }
        cache.get(*c, 3, 3)  # third structure evicts the LRU entry (a)
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["size"] == 2
        cache.clear()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "capacity": 2,
        }

    def test_shared_cache_exposes_stats(self):
        stats = edge_plan.shared_plan_cache().stats()
        assert set(stats) == {"hits", "misses", "evictions", "size", "capacity"}


class TestBuildCounter:
    def test_graph_plan_is_built_once(self, sbm_graph):
        before = edge_plan.build_counter
        p1 = sbm_graph.plan()
        after_first = edge_plan.build_counter
        p2 = sbm_graph.plan()
        assert p1 is p2
        assert after_first == before + 1
        assert edge_plan.build_counter == after_first

    def test_plans_disabled_returns_none_and_builds_nothing(self, sbm_graph):
        graph = Graph(sbm_graph.num_nodes, sbm_graph.src, sbm_graph.dst)
        before = edge_plan.build_counter
        with plans_disabled():
            assert graph.plan() is None
        assert edge_plan.build_counter == before

    def test_training_loop_builds_each_plan_exactly_once(self, rng, sbm_graph):
        """3 GAT iterations: warm-up builds the plan, later iterations build none."""
        x = Tensor(rng.standard_normal((sbm_graph.num_nodes, 8)).astype(np.float32))
        model = nn.GATConv(8, 4, num_heads=2)
        opt = Adam(model.parameters(), lr=1e-2)

        def iteration():
            opt.zero_grad()
            out = model(sbm_graph, x)
            loss = (out * out).sum()
            loss.backward()
            opt.step()

        iteration()  # warm-up: builds the graph's single plan
        after_warmup = edge_plan.build_counter
        for _ in range(2):
            iteration()
        assert edge_plan.build_counter == after_warmup

    def test_distributed_training_builds_each_block_plan_once(self, small_dataset):
        """A 2-worker SAR GAT loop builds only per-block plans, all in iteration 1."""
        graph = small_dataset.graph
        assignment = partition_graph(graph, 2, seed=0)
        book = PartitionBook(assignment, 2)
        shards = create_shards(graph, book)
        counts = {}

        def worker(rank, comm, shard):
            dist = DistributedGraph(shard, comm, SAR)
            model = nn.GATConv(small_dataset.features.shape[1], 4, num_heads=2)
            broadcast_parameters(model.parameters(), comm)
            opt = Adam(model.parameters(), lr=1e-2)
            feats = Tensor(small_dataset.features[shard.global_node_ids])
            per_iter = []
            for _ in range(3):
                before = edge_plan.build_counter
                dist.begin_step()
                opt.zero_grad()
                out = model(dist, feats)
                loss = (out * out).sum()
                loss.backward()
                sync_gradients(model.parameters(), comm)
                opt.step()
                per_iter.append(edge_plan.build_counter - before)
            counts[rank] = per_iter
            comm.barrier()

        run_distributed(worker, 2, worker_args=shards)
        total_first = sum(counts[r][0] for r in counts)
        assert total_first > 0  # warm-up really did build block plans
        for rank, per_iter in counts.items():
            assert per_iter[1] == 0 and per_iter[2] == 0, (
                f"rank {rank} built plans after warm-up: {per_iter}"
            )

    def test_hetero_relation_plans_cached(self):
        hg = HeteroGraph(6, {
            "a": (np.array([0, 1, 2]), np.array([1, 2, 3])),
            "b": (np.array([3, 4]), np.array([4, 5])),
        })
        before = edge_plan.build_counter
        p1 = hg.relation_plan("a")
        p2 = hg.relation_plan("a")
        p3 = hg.relation_plan("b")
        assert p1 is p2 and p1 is not p3
        assert edge_plan.build_counter == before + 2
