"""Unit tests for activations, softmax, dropout and losses."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients
from repro.tensor import functional as F
from repro.utils.seed import set_seed


def _t(shape, rng, scale=1.0):
    return Tensor(scale * rng.standard_normal(shape).astype(np.float32), requires_grad=True)


class TestActivations:
    def test_relu_forward(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_gradients(self, rng):
        x = _t((4, 3), rng)
        check_gradients(lambda: (F.relu(x) ** 2).sum(), [x])

    def test_leaky_relu_negative_slope(self):
        x = Tensor(np.array([-2.0, 3.0], dtype=np.float32))
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).data, [-0.2, 3.0], rtol=1e-6)

    def test_leaky_relu_gradients(self, rng):
        x = _t((5,), rng)
        check_gradients(lambda: (F.leaky_relu(x, 0.2) ** 2).sum(), [x])

    def test_sigmoid_range(self, rng):
        x = _t((10,), rng, scale=3.0)
        out = F.sigmoid(x).data
        assert np.all((out > 0) & (out < 1))

    def test_sigmoid_gradients(self, rng):
        x = _t((6,), rng)
        check_gradients(lambda: (F.sigmoid(x) ** 2).sum(), [x])

    def test_tanh_gradients(self, rng):
        x = _t((6,), rng)
        check_gradients(lambda: (F.tanh(x) ** 2).sum(), [x])

    def test_elu_continuity_at_zero(self):
        x = Tensor(np.array([-1e-4, 1e-4], dtype=np.float32))
        out = F.elu(x).data
        assert abs(out[0] - out[1]) < 1e-3

    def test_elu_gradients(self, rng):
        x = _t((8,), rng)
        check_gradients(lambda: (F.elu(x) ** 2).sum(), [x])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = _t((5, 7), rng, scale=4.0)
        out = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-5)

    def test_stability_with_large_logits(self):
        x = Tensor(np.array([[1e4, 1e4 + 1.0]], dtype=np.float32))
        out = F.softmax(x).data
        assert np.all(np.isfinite(out))

    def test_softmax_gradients(self, rng):
        x = _t((3, 4), rng)
        w = rng.standard_normal((3, 4)).astype(np.float32)
        check_gradients(lambda: (F.softmax(x, axis=-1) * w).sum(), [x])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = _t((4, 6), rng, scale=2.0)
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12), atol=1e-4
        )

    def test_log_softmax_gradients(self, rng):
        x = _t((3, 5), rng)
        w = rng.standard_normal((3, 5)).astype(np.float32)
        check_gradients(lambda: (F.log_softmax(x) * w).sum(), [x])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = _t((20, 10), rng)
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_training_scales_kept_units(self):
        set_seed(0)
        x = Tensor(np.ones((2000, 10), dtype=np.float32))
        out = F.dropout(x, 0.5, training=True).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # roughly half are kept
        assert 0.4 < (out != 0).mean() < 0.6

    def test_zero_probability_is_identity(self, rng):
        x = _t((4, 4), rng)
        np.testing.assert_array_equal(F.dropout(x, 0.0, training=True).data, x.data)

    def test_invalid_probability_raises(self, rng):
        x = _t((2, 2), rng)
        with pytest.raises(ValueError):
            F.dropout(x, 1.5, training=True)

    def test_gradient_uses_same_mask(self):
        set_seed(3)
        x = Tensor(np.ones((50, 4), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.5, training=True)
        mask = (out.data != 0)
        out.sum().backward()
        np.testing.assert_allclose((x.grad != 0), mask)


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = _t((6, 4), rng, scale=2.0)
        labels = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(logits, labels).data
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        assert np.isclose(loss, expected, rtol=1e-5)

    def test_sum_reduction(self, rng):
        logits = _t((5, 3), rng)
        labels = rng.integers(0, 3, size=5)
        mean_loss = float(F.cross_entropy(logits, labels, reduction="mean").data)
        sum_loss = float(F.cross_entropy(logits, labels, reduction="sum").data)
        assert np.isclose(sum_loss, mean_loss * 5, rtol=1e-5)

    def test_none_reduction_shape(self, rng):
        logits = _t((5, 3), rng)
        labels = rng.integers(0, 3, size=5)
        assert F.cross_entropy(logits, labels, reduction="none").shape == (5,)

    def test_gradients(self, rng):
        logits = _t((7, 5), rng)
        labels = rng.integers(0, 5, size=7)
        check_gradients(lambda: F.cross_entropy(logits, labels), [logits])

    def test_perfect_prediction_low_loss(self):
        labels = np.array([0, 1, 2])
        logits = Tensor(50.0 * np.eye(3, dtype=np.float32))
        assert float(F.cross_entropy(logits, labels).data) < 1e-4

    def test_rejects_bad_shapes(self, rng):
        logits = _t((4, 3), rng)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.zeros(4, dtype=np.int64), reduction="bogus")

    def test_nll_loss_matches_cross_entropy(self, rng):
        logits = _t((6, 4), rng)
        labels = rng.integers(0, 4, size=6)
        ce = float(F.cross_entropy(logits, labels).data)
        nll = float(F.nll_loss(F.log_softmax(logits), labels).data)
        assert np.isclose(ce, nll, rtol=1e-4)


class TestAccuracy:
    def test_accuracy_basic(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]], dtype=np.float32)
        labels = np.array([0, 1, 1])
        assert np.isclose(F.accuracy(logits, labels), 2.0 / 3.0)

    def test_accuracy_empty(self):
        assert np.isnan(F.accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)))
