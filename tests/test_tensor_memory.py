"""Tests for the per-worker memory tracker."""

import threading

import numpy as np

from repro.tensor import MemoryTracker, Tensor, track_memory, active_tracker, no_tracking


class TestMemoryTracker:
    def test_allocation_and_release(self):
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            t = Tensor(np.zeros((1000, 10), dtype=np.float32))
            assert tracker.current_bytes == t.nbytes
            peak = tracker.peak_bytes
            del t
        assert tracker.current_bytes == 0
        assert tracker.peak_bytes == peak > 0

    def test_views_not_double_counted(self):
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            base = Tensor(np.zeros((100, 10), dtype=np.float32))
            view = base.reshape(10, 100)
            assert tracker.current_bytes == base.nbytes
            del view, base
        assert tracker.current_bytes == 0

    def test_peak_tracks_high_water_mark(self):
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            a = Tensor(np.zeros(1000, dtype=np.float32))
            b = Tensor(np.zeros(2000, dtype=np.float32))
            del a, b
            _ = Tensor(np.zeros(10, dtype=np.float32))
        assert tracker.peak_bytes == 3000 * 4

    def test_reset_peak(self):
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            a = Tensor(np.zeros(1000, dtype=np.float32))
            del a
            tracker.reset_peak()
            assert tracker.peak_bytes == 0

    def test_nested_trackers_inner_wins(self):
        outer, inner = MemoryTracker("outer"), MemoryTracker("inner")
        with track_memory(outer):
            with track_memory(inner):
                _ = Tensor(np.zeros(100, dtype=np.float32))
            assert inner.total_allocated_bytes == 400
            assert outer.total_allocated_bytes == 0

    def test_no_tracking_context(self):
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            with no_tracking():
                _ = Tensor(np.zeros(100, dtype=np.float32))
        assert tracker.total_allocated_bytes == 0

    def test_no_active_tracker_is_fine(self):
        assert active_tracker() is None
        t = Tensor(np.zeros(10, dtype=np.float32))
        assert t._tracker is None

    def test_thread_local_isolation(self):
        main_tracker = MemoryTracker("main")
        other_result = {}

        def other_thread():
            other_tracker = MemoryTracker("other")
            with track_memory(other_tracker):
                _ = Tensor(np.zeros(500, dtype=np.float32))
            other_result["bytes"] = other_tracker.total_allocated_bytes

        with track_memory(main_tracker):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
            _ = Tensor(np.zeros(100, dtype=np.float32))
        assert other_result["bytes"] == 2000
        assert main_tracker.total_allocated_bytes == 400

    def test_snapshot_and_mb_properties(self):
        tracker = MemoryTracker("snap")
        with track_memory(tracker):
            keep = Tensor(np.zeros((1024, 256), dtype=np.float32))
            snap = tracker.snapshot()
            assert snap["label"] == "snap"
            assert snap["peak_bytes"] == keep.nbytes
            assert np.isclose(tracker.peak_mb, keep.nbytes / 2**20)
            assert np.isclose(tracker.current_mb, tracker.peak_mb)
            del keep

    def test_saved_activations_counted_until_backward(self):
        """The end-of-forward peak should include intermediate activations."""
        tracker = MemoryTracker("t")
        with track_memory(tracker):
            x = Tensor(np.random.randn(200, 50).astype(np.float32), requires_grad=True)
            w = Tensor(np.random.randn(50, 50).astype(np.float32), requires_grad=True)
            h = x @ w
            loss = (h * h).sum()
            peak_forward = tracker.current_bytes
            loss.backward()
            del h, loss
            after = tracker.current_bytes
        assert peak_forward > x.nbytes + w.nbytes
        assert after < peak_forward
