"""Tests for the pluggable feature-store layer (:mod:`repro.store`).

Covers the LRUDict byte-budget edge cases, the store backends (dense,
partitioned KV, learnable sparse embeddings), the sparse optimizers, the
EmbeddingCache admission gate, and the store-vs-dense bit-parity matrix
across models (sage/gat), placements (single machine / 2-worker cluster),
and execution paths (sampled training / layer-wise inference / serving).
"""

import numpy as np
import pytest

from repro import nn
from repro.datasets import make_sbm_dataset
from repro.distributed import run_distributed
from repro.partition import PartitionBook
from repro.sample.inference import LayerWiseInference
from repro.sample.loader import MiniBatchDataLoader, NeighborSamplingConfig
from repro.sample.neighbor import NeighborSampler
from repro.serving import InferenceServer, ServingConfig
from repro.serving.cache import EmbeddingCache
from repro.store import (
    DenseStore,
    PartitionedKVStore,
    SparseEmbeddingStore,
    as_feature_store,
)
from repro.tensor import Tensor
from repro.tensor.optim import Adam, SparseAdam, SparseSGD
from repro.training import DistributedTrainer, FullBatchTrainer, TrainingConfig
from repro.utils.lru import LRUDict
from repro.utils.seed import set_seed


@pytest.fixture(scope="module")
def dataset():
    return make_sbm_dataset(
        name="featstore-test", num_nodes=160, num_classes=3, feature_dim=8,
        p_in=0.12, p_out=0.015, noise=1.5, train_frac=0.5, val_frac=0.2,
        test_frac=0.3, seed=2,
    )


def _make_model(kind, in_dim, num_classes):
    if kind == "sage":
        return nn.GraphSageNet(in_dim, 16, num_classes, num_layers=2,
                               dropout=0.0)
    return nn.GATNet(in_dim, 4, num_classes, num_layers=2, num_heads=2,
                     dropout=0.0, use_batch_norm=False)


# --------------------------------------------------------------------------- #
# LRUDict edge cases
# --------------------------------------------------------------------------- #
class TestLRUDictEdgeCases:
    def test_zero_byte_budget_retains_nothing(self):
        cache = LRUDict(capacity=None, byte_budget=0)
        cache["a"] = np.ones(4, dtype=np.float32)
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.evictions == 1

    def test_oversized_item_does_not_stick_but_observes_eviction(self):
        seen = []
        cache = LRUDict(capacity=None, byte_budget=8,
                        on_evict=lambda k, v: seen.append(k))
        cache["small"] = np.ones(1, dtype=np.float32)  # 4 bytes: fits
        cache["huge"] = np.ones(100, dtype=np.float32)  # 400 bytes: never fits
        assert "small" not in cache and "huge" not in cache
        # LRU order: "small" went first, then the oversized entry itself.
        assert seen == ["small", "huge"]
        assert cache.current_bytes == 0

    def test_eviction_callback_reentrancy(self):
        # An on_evict that re-inserts into the cache must observe consistent
        # state (the evictee already removed) and must not loop forever.
        cache = LRUDict(capacity=2)

        def resurrect(key, value):
            if key == "a":  # re-insert once, under a different key
                cache["a2"] = value
        cache._on_evict = resurrect
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3  # evicts "a" -> callback inserts "a2" -> evicts "b"
        assert set(cache) == {"c", "a2"}
        assert cache.evictions == 2

    def test_byte_accounting_on_overwrite_and_delete(self):
        cache = LRUDict(capacity=None, byte_budget=100)
        cache["k"] = np.ones(5, dtype=np.float32)   # 20 bytes
        cache["k"] = np.ones(10, dtype=np.float32)  # replaces: 40 bytes
        assert cache.current_bytes == 40
        del cache["k"]
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_requires_some_bound_and_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUDict(capacity=None, byte_budget=None)
        with pytest.raises(ValueError):
            LRUDict(0)
        with pytest.raises(ValueError):
            LRUDict(capacity=None, byte_budget=-1)

    def test_read_refreshes_recency(self):
        cache = LRUDict(capacity=2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"]
        cache["c"] = 3  # "b" is now LRU
        assert set(cache) == {"a", "c"}


# --------------------------------------------------------------------------- #
# backends: dispatch, dense, sparse embeddings
# --------------------------------------------------------------------------- #
class TestStoreDispatch:
    def test_as_feature_store_passthrough_and_wrap(self):
        matrix = np.ones((4, 2), dtype=np.float32)
        store = as_feature_store(matrix)
        assert isinstance(store, DenseStore)
        assert as_feature_store(store) is store
        with pytest.raises(ValueError, match="2-D"):
            as_feature_store(np.ones(4))  # 1-D
        with pytest.raises(ValueError, match="2-D"):
            as_feature_store("nope")

    def test_dense_store_gather_and_validation(self):
        matrix = np.arange(12, dtype=np.float32).reshape(6, 2)
        store = DenseStore(matrix)
        assert store.gather(None) is matrix  # zero-copy full read
        assert np.array_equal(store.gather(np.array([3, 0, 3])),
                              matrix[[3, 0, 3]])
        with pytest.raises(IndexError):
            store.gather(np.array([6]))
        with pytest.raises(NotImplementedError):
            store.scatter_grad(np.array([0]), np.zeros((1, 2), dtype=np.float32))
        assert not store.trainable

    def test_dense_store_replace_bumps_version(self):
        store = DenseStore(np.zeros((3, 2), dtype=np.float32))
        v0 = store.version
        store.replace(np.ones((3, 2), dtype=np.float32))
        assert store.version == v0 + 1
        assert float(store.gather(None)[0, 0]) == 1.0


class TestSparseEmbeddingStore:
    def test_backward_scatters_without_dense_gradient(self):
        store = SparseEmbeddingStore(100, 4, seed=0)
        ids = np.array([7, 3, 7])
        out = store.gather_tensor(ids)
        assert out.requires_grad
        (out * 2.0).sum().backward()
        unique, summed = store.pending_gradients()
        assert unique.tolist() == [3, 7]
        # Row 7 appears twice in the gather: its gradient accumulates.
        assert np.allclose(summed[unique.tolist().index(7)], 4.0)
        assert np.allclose(summed[unique.tolist().index(3)], 2.0)

    def test_apply_row_update_bumps_version_and_touches_only_rows(self):
        store = SparseEmbeddingStore(50, 4, seed=1)
        before = store.weight.copy()
        v0 = store.version
        store.apply_row_update(np.array([5]), np.ones((1, 4), dtype=np.float32))
        assert store.version == v0 + 1
        untouched = np.ones(50, dtype=bool)
        untouched[5] = False
        assert np.array_equal(store.weight[untouched], before[untouched])

    def test_state_dict_roundtrip_and_validation(self):
        store = SparseEmbeddingStore(10, 3, seed=2)
        state = store.state_dict()
        other = SparseEmbeddingStore(10, 3, seed=99)
        other.load_state_dict(state)
        assert np.array_equal(other.weight, store.weight)
        with pytest.raises(ValueError):
            store.scatter_grad(np.array([0]), np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            SparseEmbeddingStore(0, 3)

    def test_seeded_init_is_deterministic(self):
        a = SparseEmbeddingStore(20, 4, seed=5)
        b = SparseEmbeddingStore(20, 4, seed=5)
        c = SparseEmbeddingStore(20, 4, seed=6)
        assert np.array_equal(a.weight, b.weight)
        assert not np.array_equal(a.weight, c.weight)


# --------------------------------------------------------------------------- #
# sparse optimizers
# --------------------------------------------------------------------------- #
class TestSparseOptimizers:
    def test_only_touched_rows_move(self):
        store = SparseEmbeddingStore(40, 3, seed=0)
        before = store.weight.copy()
        opt = SparseAdam(store, lr=0.1)
        store.scatter_grad(np.array([4, 9]), np.ones((2, 3), dtype=np.float32))
        touched = opt.step()
        assert touched == 2
        mask = np.zeros(40, dtype=bool)
        mask[[4, 9]] = True
        assert np.array_equal(store.weight[~mask], before[~mask])
        assert not np.array_equal(store.weight[mask], before[mask])

    def test_adam_per_row_step_counts_match_dense_adam(self):
        # One row updated twice must match a dense Adam updating a 1-row
        # parameter twice (per-row bias correction, no decay while absent).
        grads = [np.array([[0.5, -1.0]], dtype=np.float32),
                 np.array([[0.25, 0.75]], dtype=np.float32)]
        store = SparseEmbeddingStore(10, 2, weight=np.zeros((10, 2)))
        sparse = SparseAdam(store, lr=0.05)
        param = Tensor(np.zeros((1, 2), dtype=np.float32), requires_grad=True)
        dense = Adam([param], lr=0.05)
        for g in grads:
            store.scatter_grad(np.array([6]), g)
            sparse.step()
            param.grad = g.copy()
            dense.step()
        assert np.allclose(store.weight[6], param.data[0], atol=1e-7)
        assert sparse._t[6] == 2 and sparse._t[0] == 0

    def test_grad_scale_matches_prescaled_gradients(self):
        g = np.array([[2.0, -4.0]], dtype=np.float32)
        a = SparseEmbeddingStore(4, 2, weight=np.zeros((4, 2)))
        b = SparseEmbeddingStore(4, 2, weight=np.zeros((4, 2)))
        oa, ob = SparseSGD(a, lr=0.1), SparseSGD(b, lr=0.1)
        a.scatter_grad(np.array([1]), g)
        oa.step(grad_scale=0.5)
        b.scatter_grad(np.array([1]), g * 0.5)
        ob.step()
        assert np.array_equal(a.weight, b.weight)

    def test_sgd_momentum_frozen_while_row_absent(self):
        store = SparseEmbeddingStore(5, 2, weight=np.zeros((5, 2)))
        opt = SparseSGD(store, lr=1.0, momentum=0.5)
        g = np.ones((1, 2), dtype=np.float32)
        store.scatter_grad(np.array([2]), g)
        opt.step()  # velocity[2] = 1, row 2 -= 1
        store.scatter_grad(np.array([4]), g)
        opt.step()  # row 2 untouched: its velocity must not decay
        assert np.allclose(opt._velocity[2], 1.0)
        store.scatter_grad(np.array([2]), g)
        opt.step()  # velocity[2] = 0.5 * 1 + 1 = 1.5
        assert np.allclose(opt._velocity[2], 1.5)

    def test_rejects_non_trainable_store(self):
        dense = DenseStore(np.zeros((3, 2), dtype=np.float32))
        with pytest.raises(TypeError):
            SparseAdam(dense, lr=0.1)


# --------------------------------------------------------------------------- #
# partitioned KV store (2-worker thread cluster)
# --------------------------------------------------------------------------- #
class TestPartitionedKVStore:
    @pytest.fixture(scope="class")
    def matrix_and_book(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((60, 4)).astype(np.float32)
        assignment = (np.arange(60) % 2).astype(np.int64)
        return matrix, PartitionBook(assignment, 2)

    def test_gather_parity_dedup_and_telemetry(self, matrix_and_book):
        matrix, book = matrix_and_book
        # Remote ids repeat within the request: rows must be deduplicated
        # into one coalesced fetch per owner, and the result must be
        # bit-identical to a dense gather.
        requests = [np.array([0, 1, 3, 1, 58, 3]),
                    np.array([2, 2, 5, 17, 17, 40])]

        def worker(rank, comm):
            store = PartitionedKVStore(comm, book, matrix[book.nodes_of(rank)],
                                       cache_bytes=1 << 16)
            comm.barrier()
            ids = requests[rank]
            first = store.gather(ids)
            again = store.gather(ids)  # second pass: all remote rows cached
            comm.barrier()
            stats = store.stats()
            comm_stats = comm.stats.snapshot()
            store.release()
            return first, again, stats, comm_stats

        result = run_distributed(worker, 2, timeout_s=120)
        for rank, (first, again, stats, comm_stats) in enumerate(result.results):
            assert np.array_equal(first, matrix[requests[rank]])
            assert np.array_equal(again, first)
            remote = len({i for i in requests[rank]
                          if book.assignment[i] != rank})
            # One coalesced fetch on the cold pass, none on the warm pass.
            assert stats["fetch_calls"] == 1
            assert stats["cache_misses"] == remote
            assert stats["cache_hits"] == remote
            assert stats["bytes_saved"] == stats["bytes_fetched"]
            assert comm_stats["cache_hit_rows"] == remote
            assert "recv:feature_fetch" in comm_stats

    def test_cache_respects_byte_budget(self, matrix_and_book):
        matrix, book = matrix_and_book
        row_bytes = 4 * matrix.dtype.itemsize
        budget = 3 * row_bytes  # room for three remote rows

        def worker(rank, comm):
            store = PartitionedKVStore(comm, book, matrix[book.nodes_of(rank)],
                                       cache_bytes=budget)
            comm.barrier()
            other = 1 - rank
            remote_ids = book.nodes_of(other)[:10]
            store.gather(np.asarray(remote_ids))
            comm.barrier()
            stats = store.stats()
            store.release()
            return stats

        result = run_distributed(worker, 2, timeout_s=120)
        for stats in result.results:
            assert stats["cache_bytes"] <= budget
            assert stats["cache_rows"] == 3
            assert stats["cache_evictions"] == 7

    def test_cache_none_disables_caching(self, matrix_and_book):
        matrix, book = matrix_and_book

        def worker(rank, comm):
            store = PartitionedKVStore(comm, book, matrix[book.nodes_of(rank)],
                                       cache_bytes=None)
            comm.barrier()
            ids = book.nodes_of(1 - rank)[:4]
            store.gather(np.asarray(ids))
            store.gather(np.asarray(ids))
            comm.barrier()
            stats = store.stats()
            store.release()
            return stats

        result = run_distributed(worker, 2, timeout_s=120)
        for stats in result.results:
            assert stats["cache_hits"] == 0
            assert stats["fetch_calls"] == 2
            assert "cache_rows" not in stats

    def test_replace_bumps_version_and_invalidates(self, matrix_and_book):
        matrix, book = matrix_and_book

        def worker(rank, comm):
            local = matrix[book.nodes_of(rank)]
            store = PartitionedKVStore(comm, book, local, cache_bytes=1 << 16)
            comm.barrier()
            ids = np.asarray(book.nodes_of(1 - rank)[:3])
            old = store.gather(ids)
            comm.barrier()
            store.replace(local * 2.0)
            comm.barrier()
            new = store.gather(ids)
            comm.barrier()
            version = store.version
            store.release()
            return old, new, version

        result = run_distributed(worker, 2, timeout_s=120)
        for old, new, version in result.results:
            assert version == 2
            assert np.array_equal(new, old * 2.0)  # not served from stale cache

    def test_validates_local_rows(self, matrix_and_book):
        matrix, book = matrix_and_book

        def worker(rank, comm):
            try:
                PartitionedKVStore(comm, book, matrix)  # full matrix: wrong count
            except ValueError as exc:
                return str(exc)
            return None

        result = run_distributed(worker, 2, timeout_s=120)
        assert all("owns" in msg for msg in result.results)


# --------------------------------------------------------------------------- #
# loader validation (bugfix satellite)
# --------------------------------------------------------------------------- #
class TestLoaderSetFeaturesValidation:
    def _loader(self, dataset):
        sampler = NeighborSampler(dataset.graph, (3, 3), seed=0)
        return MiniBatchDataLoader(sampler, dataset.train_indices(),
                                   batch_size=16)

    def test_row_count_mismatch_raises_eagerly(self, dataset):
        loader = self._loader(dataset)
        wrong = np.zeros((dataset.graph.num_nodes - 1, 4), dtype=np.float32)
        with pytest.raises(ValueError, match="one row per graph node"):
            loader.set_features(wrong)

    def test_non_numeric_dtype_raises(self, dataset):
        loader = self._loader(dataset)
        bad = np.full((dataset.graph.num_nodes, 2), "x", dtype=object)
        with pytest.raises(TypeError):
            loader.set_features(bad)

    def test_store_accepted_and_cleared(self, dataset):
        loader = self._loader(dataset)
        store = DenseStore(np.zeros(
            (dataset.graph.num_nodes, 4), dtype=np.float32))
        loader.set_features(store)
        loader.set_features(None)


# --------------------------------------------------------------------------- #
# EmbeddingCache admission gate
# --------------------------------------------------------------------------- #
class TestEmbeddingCacheAdmission:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingCache(1024, admission="tinylfu")

    def test_gate_keeps_hot_rows_against_scan(self):
        rng = np.random.default_rng(0)
        row = lambda: rng.normal(size=8).astype(np.float32)  # 32 bytes
        hot = np.arange(4)
        cache = EmbeddingCache(capacity_bytes=4 * 32, admission="frequency")
        # Warm the hot set (requests feed the frequency sketch).
        for _ in range(5):
            if cache.lookup(1, hot) is None:
                cache.put(1, hot, np.stack([row() for _ in hot]))
        assert cache.lookup(1, hot) is not None
        # A cold scan must bounce off the gate, not evict the hot rows.
        scan = np.arange(100, 120)
        cache.lookup(1, scan)
        cache.put(1, scan, np.stack([row() for _ in scan]))
        assert cache.stats()["rejected_admissions"] >= len(scan) - 1
        assert cache.lookup(1, hot) is not None

    def test_plain_lru_admits_everything(self):
        rng = np.random.default_rng(0)
        cache = EmbeddingCache(capacity_bytes=4 * 32)
        hot = np.arange(4)
        cache.put(1, hot, rng.normal(size=(4, 8)).astype(np.float32))
        scan = np.arange(100, 108)
        cache.put(1, scan, rng.normal(size=(8, 8)).astype(np.float32))
        assert cache.lookup(1, hot) is None  # flushed by the scan
        assert cache.stats()["rejected_admissions"] == 0

    def test_frequency_sketch_ages(self):
        cache = EmbeddingCache(capacity_bytes=1024, admission="frequency")
        cache.FREQ_AGING_THRESHOLD = 8
        for _ in range(6):
            cache.lookup(0, np.array([1]))
        cache.lookup(0, np.array([2, 3]))  # hits the aging threshold
        # Counts were halved, zeros dropped; the sketch keeps working.
        assert cache._freq[(0, 1)] == 3
        assert (0, 2) not in cache._freq
        cache.lookup(0, np.array([1]))
        assert cache._freq[(0, 1)] == 4


# --------------------------------------------------------------------------- #
# store-vs-dense bit-parity matrix
# --------------------------------------------------------------------------- #
class TestStoreParityMatrix:
    """DenseStore / PartitionedKVStore runs must be bit-identical to raw
    matrix runs across models, placements, and execution paths."""

    @pytest.mark.parametrize("kind", ["sage", "gat"])
    def test_single_machine_sampled_and_layerwise(self, dataset, kind):
        cfg = dict(num_epochs=2, lr=0.01, seed=1, eval_every=0,
                   eval_inference="layerwise", eval_batch_size=48,
                   sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=32))
        set_seed(3)
        model = _make_model(kind, dataset.feature_dim, dataset.num_classes)
        plain = FullBatchTrainer(model, dataset, TrainingConfig(**cfg))
        plain_result = plain.train()
        _, plain_logits = plain.evaluate()

        set_seed(3)
        model = _make_model(kind, dataset.feature_dim, dataset.num_classes)
        stored = FullBatchTrainer(model, dataset, TrainingConfig(
            feature_store=DenseStore(dataset.features), **cfg))
        stored_result = stored.train()
        _, stored_logits = stored.evaluate()

        assert plain_result.losses() == stored_result.losses()
        assert np.array_equal(plain_logits, stored_logits)

    @pytest.mark.parametrize("kind", ["sage", "gat"])
    def test_two_worker_sampled_and_layerwise(self, dataset, kind):
        cfg = dict(num_epochs=2, lr=0.01, seed=1, eval_every=0,
                   eval_inference="layerwise", eval_batch_size=48,
                   sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=32))
        # Workers build their model inside concurrent threads, where the
        # shared global RNG interleaves nondeterministically — so initialize
        # once on this thread and have the factory load the reference state.
        set_seed(7)
        reference_state = _make_model(
            kind, dataset.feature_dim, dataset.num_classes).state_dict()

        def factory(in_f, kind=kind):
            model = _make_model(kind, in_f, dataset.num_classes)
            model.load_state_dict(reference_state)
            return model

        runs = {}
        for label, store in (("off", None), ("kv", "kv")):
            set_seed(7)
            trainer = DistributedTrainer(
                dataset, factory, 2,
                config=TrainingConfig(feature_store=store, **cfg))
            result = trainer.run()
            runs[label] = (
                result.training.losses(),
                trainer.assemble_global_predictions(result),
                result.cluster.results[0].get("feature_store_stats"),
            )
        assert runs["off"][0] == runs["kv"][0]
        assert np.array_equal(runs["off"][1], runs["kv"][1])
        assert runs["kv"][2] is not None  # stats made it into the result

    @pytest.mark.parametrize("kind", ["sage", "gat"])
    def test_serving_store_parity(self, dataset, kind):
        set_seed(4)
        model = _make_model(kind, dataset.feature_dim, dataset.num_classes)
        model.eval()
        seeds = [0, 7, 31, 7]
        with InferenceServer(model, dataset.graph, dataset.features,
                             config=ServingConfig(window_ms=0.0)) as plain:
            raw = plain.predict(seeds)
        with InferenceServer(model, dataset.graph,
                             DenseStore(dataset.features),
                             config=ServingConfig(
                                 window_ms=0.0, byte_budget=1 << 20,
                             )) as stored:
            via_store = stored.predict(seeds)
        assert np.array_equal(raw, via_store)

    def test_layerwise_inference_accepts_store(self, dataset):
        set_seed(6)
        model = _make_model("sage", dataset.feature_dim, dataset.num_classes)
        engine = LayerWiseInference(model, dataset.graph, batch_size=40)
        direct = engine.run(dataset.features)
        stored = engine.run(DenseStore(dataset.features))
        assert np.array_equal(direct, stored)


# --------------------------------------------------------------------------- #
# trainer integration: trainable store + config validation
# --------------------------------------------------------------------------- #
class TestTrainerFeatureStore:
    def test_sparse_embedding_training_learns(self, dataset):
        emb = SparseEmbeddingStore(dataset.graph.num_nodes, 8, seed=3)
        before = emb.weight.copy()
        set_seed(5)
        model = _make_model("sage", 8, dataset.num_classes)
        trainer = FullBatchTrainer(model, dataset, TrainingConfig(
            feature_store=emb, feature_store_lr=0.05, num_epochs=6, lr=0.01,
            seed=1, eval_every=0,
            sampler=NeighborSamplingConfig(fanouts=(4, 4), batch_size=32)))
        result = trainer.train()
        losses = result.losses()
        assert losses[-1] < losses[0]
        assert trainer.sparse_optimizer.steps_taken > 0
        assert not np.array_equal(emb.weight, before)
        # Evaluation reads the learned table (full coverage, no crash).
        accs, logits = trainer.evaluate()
        assert logits.shape == (dataset.graph.num_nodes, dataset.num_classes)

    def test_config_validation(self, dataset):
        model = _make_model("sage", dataset.feature_dim, dataset.num_classes)
        with pytest.raises(ValueError, match="distributed-only"):
            FullBatchTrainer(model, dataset,
                             TrainingConfig(feature_store="kv"))
        with pytest.raises(ValueError, match="label_augmentation"):
            FullBatchTrainer(model, dataset, TrainingConfig(
                feature_store=DenseStore(dataset.features),
                label_augmentation=True))
        with pytest.raises(ValueError, match="rows"):
            FullBatchTrainer(model, dataset, TrainingConfig(
                feature_store=DenseStore(
                    np.zeros((3, 8), dtype=np.float32))))
        with pytest.raises(ValueError, match="'adam' or 'sgd'"):
            trainer_cfg = TrainingConfig(
                feature_store=SparseEmbeddingStore(
                    dataset.graph.num_nodes, 8),
                feature_store_optimizer="rmsprop")
            FullBatchTrainer(model, dataset, trainer_cfg)


# --------------------------------------------------------------------------- #
# serving version composition
# --------------------------------------------------------------------------- #
class TestServingStoreVersion:
    def test_store_replace_invalidates_cached_results(self, dataset):
        set_seed(8)
        model = _make_model("sage", dataset.feature_dim, dataset.num_classes)
        model.eval()
        store = DenseStore(dataset.features.copy())
        seeds = [1, 2, 3]
        with InferenceServer(model, dataset.graph, store,
                             config=ServingConfig(
                                 window_ms=0.0, byte_budget=1 << 20,
                             )) as server:
            first = server.predict(seeds)
            server.predict(seeds)  # warm the activation cache
            store.replace(dataset.features * 0.5)
            after = server.predict(seeds)
            stats = server.stats()
        assert stats["store_version"] == store.version
        assert not np.array_equal(first, after)  # not served from stale cache
