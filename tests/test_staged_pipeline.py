"""Tests for the composable staged-prefetch pipeline and the loader's
feature-fetch stage.

Contract (see :mod:`repro.sample.pipeline`): results arrive strictly in
input order, at most ``max_resident`` items are ever materialized, inline
(``num_workers=0``) stages run on the thread that produced their input, and
stage errors reach the consumer on the item they occurred on.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.sample import MiniBatchDataLoader, NeighborSampler
from repro.sample.pipeline import Stage, StagedPipeline


class TestStagedPipeline:
    def test_results_arrive_in_input_order(self):
        pipeline = StagedPipeline(
            stages=(Stage("inc", lambda x: x + 1, num_workers=2),
                    Stage("scale", lambda x: x * 10, num_workers=1)),
            max_resident=3,
        )
        assert list(pipeline.run(range(8))) == [(i + 1) * 10 for i in range(8)]

    def test_out_of_order_completion_reorders(self):
        def slow_first(x):
            if x == 0:
                time.sleep(0.05)
            return x

        pipeline = StagedPipeline(stages=(Stage("s", slow_first, num_workers=3),),
                                  max_resident=4)
        assert list(pipeline.run(range(4))) == [0, 1, 2, 3]

    @pytest.mark.parametrize("max_resident", [1, 2, 4])
    def test_residency_bound_held(self, max_resident):
        live = []
        lock = threading.Lock()
        peak = [0]

        def enter(x):
            with lock:
                live.append(x)
                peak[0] = max(peak[0], len(live))
            time.sleep(0.002)
            return x

        def leave(x):
            with lock:
                live.remove(x)
            return x

        pipeline = StagedPipeline(
            stages=(Stage("enter", enter, num_workers=2),
                    Stage("leave", leave, num_workers=1)),
            max_resident=max_resident,
        )
        assert list(pipeline.run(range(12))) == list(range(12))
        # Items materialized concurrently inside the stages can never exceed
        # the admission window (the consumer's held item counts too).
        assert peak[0] <= max_resident
        assert 1 <= pipeline.peak_resident <= max_resident
        assert set(pipeline.stage_peak_inflight) == {"enter", "leave"}
        assert pipeline.stage_peak_inflight["enter"] >= 1

    def test_inline_stage_runs_on_producing_thread(self):
        threads = []

        def record(x):
            threads.append(threading.current_thread().name)
            return x

        pipeline = StagedPipeline(
            stages=(Stage("work", lambda x: x, num_workers=1),
                    Stage("inline", record, num_workers=0)),
            max_resident=2,
        )
        list(pipeline.run(range(3)))
        assert len(threads) == 3
        # An inline stage owns no executor: it runs either on the previous
        # stage's worker or on the consumer thread (when the upstream future
        # resolved before its completion callback was attached) — never on a
        # thread of its own.
        assert not any(name.startswith("stage-inline") for name in threads)
        allowed = ("stage-work", threading.current_thread().name)
        assert all(name.startswith(allowed) for name in threads)

    def test_fully_synchronous_mode_uses_no_threads(self):
        threads = set()

        def record(x):
            threads.add(threading.current_thread())
            return x + 1

        pipeline = StagedPipeline(
            stages=(Stage("a", record, num_workers=0),
                    Stage("b", record, num_workers=0)),
            max_resident=2,
        )
        assert pipeline.synchronous
        assert list(pipeline.run(range(5))) == [i + 2 for i in range(5)]
        assert threads == {threading.current_thread()}
        assert pipeline.peak_resident == 1

    def test_stage_error_reaches_consumer(self):
        def explode(x):
            if x == 2:
                raise RuntimeError("stage exploded")
            return x

        pipeline = StagedPipeline(stages=(Stage("maybe", explode, num_workers=2),),
                                  max_resident=2)
        results = []
        with pytest.raises(RuntimeError, match="stage exploded"):
            for value in pipeline.run(range(5)):
                results.append(value)
        assert results == [0, 1]

    def test_error_in_later_stage_propagates(self):
        def explode(x):
            raise ValueError("late stage")

        pipeline = StagedPipeline(
            stages=(Stage("ok", lambda x: x, num_workers=1),
                    Stage("boom", explode, num_workers=1)),
            max_resident=2,
        )
        with pytest.raises(ValueError, match="late stage"):
            list(pipeline.run(range(3)))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            StagedPipeline(stages=())
        with pytest.raises(ValueError, match="max_resident"):
            StagedPipeline(stages=(Stage("s", lambda x: x),), max_resident=0)


class TestLoaderFeatureFetch:
    def _loader(self, graph, **kwargs):
        sampler = NeighborSampler(graph, [3, 3], seed=9)
        return MiniBatchDataLoader(sampler, np.arange(40), batch_size=16, **kwargs)

    @pytest.mark.parametrize("num_workers", [0, 2])
    def test_prefetched_inputs_match_gather(self, sbm_graph, rng, num_workers):
        features = rng.standard_normal((sbm_graph.num_nodes, 6)).astype(np.float32)
        loader = self._loader(sbm_graph, num_workers=num_workers)
        loader.set_features(features)
        count = 0
        for batch in loader.iter_epoch(1):
            assert batch.inputs is not None
            np.testing.assert_array_equal(batch.inputs, batch.gather_inputs(features))
            assert batch.input_features(features) is batch.inputs
            count += 1
        assert count == len(loader)

    def test_fetch_stage_disabled_by_default_and_by_none(self, sbm_graph, rng):
        features = rng.standard_normal((sbm_graph.num_nodes, 6)).astype(np.float32)
        loader = self._loader(sbm_graph, num_workers=1)
        for batch in loader.iter_epoch(1):
            assert batch.inputs is None
            np.testing.assert_array_equal(batch.input_features(features),
                                          batch.gather_inputs(features))
        loader.set_features(features)
        assert all(b.inputs is not None for b in loader.iter_epoch(1))
        loader.set_features(None)
        assert all(b.inputs is None for b in loader.iter_epoch(1))
