"""Distributed neighbour-sampled training: cooperative protocol + parity.

The contract under test: a 2-worker distributed sampled run trains the same
mini-batch sequence as the single-machine sampled run with the same seed —
identical sampled edge multisets per batch, matching loss trajectories, and
shrunken per-batch halo exchanges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import GATNet, GraphSageNet
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.sample import (
    NeighborSampler,
    NeighborSamplingConfig,
    build_sampling_plan,
    epoch_seed_order,
)
from repro.sample.distributed import DistributedNeighborSampler
from repro.distributed.cluster import run_distributed
from repro.training.trainer import DistributedTrainer, FullBatchTrainer, TrainingConfig
from repro.utils.seed import set_seed


def _make_model(feature_dim, num_classes, kind="sage"):
    if kind == "sage":
        return GraphSageNet(feature_dim, 16, num_classes, num_layers=2,
                            dropout=0.0, use_batch_norm=False)
    return GATNet(feature_dim, 8, num_classes, num_layers=2, num_heads=2,
                  dropout=0.0, use_batch_norm=False)


def _fixed_weights(feature_dim, num_classes, kind):
    set_seed(0)
    template = _make_model(feature_dim, num_classes, kind)
    return [p.data.copy() for p in template.parameters()]


def _with_weights(model, weights):
    for param, value in zip(model.parameters(), weights):
        param.data[...] = value
    return model


# --------------------------------------------------------------------------- #
# protocol-level structural parity
# --------------------------------------------------------------------------- #
def _sample_worker(rank, comm, shard, *, plan, batch_ids, epoch, batch_index):
    sampler = DistributedNeighborSampler(plan, shard.book, comm)
    blocks = sampler.sample_blocks(np.asarray(batch_ids), epoch, batch_index)
    out = []
    for layer_blocks in blocks:
        src_global = []
        dst_global = []
        for block in layer_blocks:
            src_global.append(
                shard.book.to_global(block.src_rank,
                                     block.required_src_local[block.src_index])
            )
            dst_global.append(shard.book.to_global(rank, block.dst_local))
        out.append((np.concatenate(src_global), np.concatenate(dst_global)))
    return out


@pytest.mark.parametrize("world_size", [2, 3])
@pytest.mark.parametrize("replace", [False, True])
def test_distributed_sample_matches_single_machine(sbm_graph, rng, world_size, replace):
    """Union of the workers' sampled edges == the single-machine sample."""
    graph = sbm_graph
    book = PartitionBook(partition_graph(graph, world_size, seed=0), world_size)
    shards = create_shards(graph, book)
    config = NeighborSamplingConfig(fanouts=(3, 4), replace=replace, batch_size=24)
    train_ids = np.sort(rng.choice(graph.num_nodes, 24, replace=False))
    plan = build_sampling_plan(graph, book, config, train_ids, seed=77)

    result = run_distributed(_sample_worker, world_size, worker_args=shards,
                             plan=plan, batch_ids=train_ids, epoch=1, batch_index=0)

    reference = NeighborSampler(graph, (3, 4), replace=replace, seed=77)
    pipeline = reference.sample(train_ids, epoch=1, batch_index=0)
    for layer in range(2):
        block = pipeline.layer_block(layer)
        ref = np.stack([block.src_nodes[block.src], block.dst_nodes[block.dst]])
        ref = ref[:, np.lexsort(ref)]
        merged_src = np.concatenate([r[layer][0] for r in result.results])
        merged_dst = np.concatenate([r[layer][1] for r in result.results])
        got = np.stack([merged_src, merged_dst])
        got = got[:, np.lexsort(got)]
        np.testing.assert_array_equal(ref, got)


def test_epoch_seed_order_identical_everywhere():
    seeds = np.arange(100, 150)
    a = epoch_seed_order(9, seeds, epoch=4, shuffle=True)
    b = epoch_seed_order(9, seeds, epoch=4, shuffle=True)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, epoch_seed_order(9, seeds, epoch=5, shuffle=True))
    np.testing.assert_array_equal(epoch_seed_order(9, seeds, 4, False), seeds)


# --------------------------------------------------------------------------- #
# end-to-end trainer parity
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("kind", ["sage", "gat"])
def test_two_worker_sampled_run_matches_single_machine(small_dataset, kind):
    weights = _fixed_weights(small_dataset.feature_dim, small_dataset.num_classes, kind)
    sampling = NeighborSamplingConfig(fanouts=(4, 4), batch_size=48)
    common = dict(num_epochs=3, lr=0.05, eval_every=0, seed=0)

    single = FullBatchTrainer(
        _with_weights(
            _make_model(small_dataset.feature_dim, small_dataset.num_classes, kind),
            weights,
        ),
        small_dataset,
        TrainingConfig(sampler=sampling, **common),
    ).train()

    dist = DistributedTrainer(
        small_dataset,
        lambda dim: _with_weights(
            _make_model(dim, small_dataset.num_classes, kind), weights
        ),
        num_workers=2,
        config=TrainingConfig(sampler=sampling, **common),
    ).run()

    np.testing.assert_allclose(dist.training.losses(), single.losses(),
                               rtol=1e-4, atol=1e-6)
    for split in ("train", "val", "test"):
        assert abs(
            dist.training.final_accuracies[split] - single.final_accuracies[split]
        ) <= 0.05


@pytest.mark.slow
def test_sampled_halo_traffic_shrinks_vs_full_batch(small_dataset):
    weights = _fixed_weights(small_dataset.feature_dim, small_dataset.num_classes, "sage")
    common = dict(num_epochs=2, lr=0.05, eval_every=0, seed=0)

    def factory(dim):
        return _with_weights(
            _make_model(dim, small_dataset.num_classes, "sage"), weights
        )

    sampled = DistributedTrainer(
        small_dataset, factory, num_workers=2,
        config=TrainingConfig(
            sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=60), **common
        ),
    ).run()
    full = DistributedTrainer(
        small_dataset, factory, num_workers=2, config=TrainingConfig(**common),
    ).run()

    halo = "forward_halo"
    assert sampled.cluster.total_received_by_tag()[halo] < \
        full.cluster.total_received_by_tag()[halo]
    assert np.isfinite(sampled.training.final_test_accuracy)


@pytest.mark.slow
def test_overlap_never_changes_training(small_dataset):
    """Pipelining batch b+1's sampling behind batch b's compute must be a
    pure scheduling change: identical losses, and the frontier traffic
    tagged so the cost model can hide it behind compute."""
    from repro.distributed.cost_model import (
        PAPER_LIKE_SPEC,
        PIPELINE_OVERLAP_TAGS,
        epoch_cost,
    )

    weights = _fixed_weights(small_dataset.feature_dim, small_dataset.num_classes, "sage")
    common = dict(num_epochs=2, lr=0.05, eval_every=0, seed=0)

    def factory(dim):
        return _with_weights(
            _make_model(dim, small_dataset.num_classes, "sage"), weights
        )

    def run(overlap):
        return DistributedTrainer(
            small_dataset, factory, num_workers=2,
            config=TrainingConfig(
                sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=48,
                                               overlap_sampling=overlap),
                **common,
            ),
        ).run()

    on, off = run(True), run(False)
    np.testing.assert_array_equal(on.training.losses(), off.training.losses())
    # The cooperative frontier merges travel under their own tag...
    frontier = on.cluster.total_received_by_tag().get("sample_frontier", 0)
    assert frontier > 0
    assert frontier == off.cluster.total_received_by_tag().get("sample_frontier", 0)
    # ...so the cost model can prove their wire time hides behind compute.
    report = epoch_cost(on.cluster, PAPER_LIKE_SPEC, num_epochs=2,
                        overlap_tags=PIPELINE_OVERLAP_TAGS)
    serial = epoch_cost(on.cluster, PAPER_LIKE_SPEC, num_epochs=2)
    assert report.hidden_comm_time_s > 0
    assert report.epoch_time_s < serial.epoch_time_s


@pytest.mark.slow
def test_three_worker_sampled_run_completes(small_dataset):
    config = TrainingConfig(
        num_epochs=2, lr=0.05, eval_every=2, seed=0,
        sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=32),
    )
    result = DistributedTrainer(
        small_dataset,
        lambda dim: _make_model(dim, small_dataset.num_classes, "sage"),
        num_workers=3,
        config=config,
    ).run()
    assert len(result.training.records) == 2
    assert np.isfinite(result.training.final_test_accuracy)


def test_hetero_distributed_sampling_rejected():
    from repro.datasets import make_hetero_sbm_dataset

    dataset = make_hetero_sbm_dataset(
        name="h", num_nodes=60, num_classes=3, feature_dim=6,
        relation_specs={"a": {"p_in": 0.2, "p_out": 0.02}}, seed=0,
    )
    trainer_config = TrainingConfig(sampler=NeighborSamplingConfig(fanouts=(2, 2)))
    with pytest.raises(ValueError, match="homogeneous"):
        DistributedTrainer(
            dataset,
            lambda dim: _make_model(dim, dataset.num_classes, "sage"),
            num_workers=2,
            config=trainer_config,
        ).run()
