"""Tests for heterogeneous graphs and message-flow-graph (MFG) utilities."""

import numpy as np
import pytest

from repro.graph import Graph, HeteroGraph, message_flow_masks, mfg_savings, required_node_counts
from repro.graph.generators import ring_graph


@pytest.fixture
def small_hetero():
    relations = {
        "cites": (np.array([0, 1, 2]), np.array([1, 2, 3])),
        "writes": (np.array([3, 4]), np.array([0, 1])),
    }
    return HeteroGraph(5, relations)


class TestHeteroGraph:
    def test_counts(self, small_hetero):
        assert small_hetero.num_relations == 2
        assert small_hetero.num_edges == 5
        assert small_hetero.num_edges_of("cites") == 3

    def test_unknown_relation_raises(self, small_hetero):
        with pytest.raises(KeyError):
            small_hetero.num_edges_of("bogus")

    def test_requires_at_least_one_relation(self):
        with pytest.raises(ValueError):
            HeteroGraph(3, {})

    def test_relation_graph(self, small_hetero):
        g = small_hetero.relation_graph("writes")
        assert isinstance(g, Graph)
        assert g.num_edges == 2
        assert g.num_nodes == 5

    def test_to_homogeneous_preserves_all_edges(self, small_hetero):
        merged, etypes = small_hetero.to_homogeneous()
        assert merged.num_edges == 5
        assert len(etypes) == 5
        assert set(np.unique(etypes)) == {0, 1}

    def test_in_degrees_per_relation_and_total(self, small_hetero):
        total = small_hetero.in_degrees()
        cites = small_hetero.in_degrees("cites")
        writes = small_hetero.in_degrees("writes")
        np.testing.assert_array_equal(total, cites + writes)

    def test_relation_adjacency_mean_normalized(self, small_hetero):
        adj = small_hetero.relation_adjacency("cites", normalization="mean")
        rows = np.asarray(adj.sum(axis=1)).reshape(-1)
        present = small_hetero.in_degrees("cites") > 0
        np.testing.assert_allclose(rows[present], 1.0)

    def test_relation_adjacency_cached(self, small_hetero):
        a1 = small_hetero.relation_adjacency("cites")
        a2 = small_hetero.relation_adjacency("cites")
        assert a1 is a2

    def test_relation_subset(self, small_hetero):
        sub = small_hetero.relation_subset(["cites"])
        assert sub.relation_names == ["cites"]

    def test_ndata_validation(self, small_hetero):
        small_hetero.set_ndata("feat", np.zeros((5, 2)))
        with pytest.raises(ValueError):
            small_hetero.set_ndata("bad", np.zeros((4, 2)))

    def test_node_types_length_checked(self):
        relations = {"r": (np.array([0]), np.array([1]))}
        with pytest.raises(ValueError):
            HeteroGraph(3, relations, node_types=np.array([0, 1]))


class TestMessageFlowGraph:
    def test_masks_grow_backwards_from_seeds(self):
        # Path graph 0→1→2→3→4 (messages flow along edges).
        g = Graph(5, [0, 1, 2, 3], [1, 2, 3, 4])
        masks = message_flow_masks(g, seed_nodes=[4], num_layers=2)
        np.testing.assert_array_equal(masks[2], [False, False, False, False, True])
        np.testing.assert_array_equal(masks[1], [False, False, False, True, True])
        np.testing.assert_array_equal(masks[0], [False, False, True, True, True])

    def test_counts_monotonically_decrease_towards_output(self, sbm_graph):
        seeds = np.arange(5)
        counts = required_node_counts(sbm_graph, seeds, num_layers=3)
        assert counts[-1] == 5
        assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))

    def test_all_nodes_seeded_gives_no_savings(self, tiny_graph):
        seeds = np.arange(tiny_graph.num_nodes)
        assert mfg_savings(tiny_graph, seeds, num_layers=2) == 0.0

    def test_sparse_seeds_give_savings_on_ring(self):
        g = ring_graph(100)
        savings = mfg_savings(g, seed_nodes=[0], num_layers=2)
        assert savings > 0.9

    def test_seed_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            message_flow_masks(tiny_graph, [99], num_layers=2)
        with pytest.raises(ValueError):
            message_flow_masks(tiny_graph, [0], num_layers=0)
