"""Tests for the Graph data structure and generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    barabasi_albert,
    erdos_renyi,
    ring_graph,
    star_graph,
    stochastic_block_model,
)


class TestGraphBasics:
    def test_construction_and_counts(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 5], [1, 2])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])

    def test_degrees(self):
        g = Graph(4, [0, 1, 1, 2], [1, 2, 2, 3])
        np.testing.assert_array_equal(g.in_degrees(), [0, 1, 2, 1])
        np.testing.assert_array_equal(g.out_degrees(), [1, 2, 1, 0])

    def test_ndata_validation(self):
        g = Graph(3, [0], [1])
        g.set_ndata("feat", np.zeros((3, 4)))
        with pytest.raises(ValueError):
            g.set_ndata("bad", np.zeros((2, 4)))

    def test_neighbors(self):
        g = Graph(4, [0, 2, 3], [1, 1, 2])
        np.testing.assert_array_equal(np.sort(g.in_neighbors(1)), [0, 2])
        np.testing.assert_array_equal(g.out_neighbors(3), [2])


class TestAdjacency:
    def test_sum_adjacency_matches_manual_aggregation(self, tiny_graph):
        x = np.random.randn(tiny_graph.num_nodes, 3).astype(np.float32)
        agg = tiny_graph.adjacency() @ x
        expected = np.zeros_like(x)
        np.add.at(expected, tiny_graph.dst, x[tiny_graph.src])
        # atol guards the near-zero sums of random normals, where a pure
        # relative tolerance occasionally explodes.
        np.testing.assert_allclose(agg, expected, rtol=1e-5, atol=1e-5)

    def test_mean_normalization_rows(self, tiny_graph):
        adj = tiny_graph.adjacency(normalization="mean")
        row_sums = np.asarray(adj.sum(axis=1)).reshape(-1)
        present = tiny_graph.in_degrees() > 0
        np.testing.assert_allclose(row_sums[present], 1.0, rtol=1e-5)

    def test_transpose_cached_consistent(self, tiny_graph):
        adj = tiny_graph.adjacency()
        adj_t = tiny_graph.adjacency(transpose=True)
        np.testing.assert_allclose(adj.toarray().T, adj_t.toarray())

    def test_sym_normalization_eigenvalue_bound(self, sbm_graph):
        adj = sbm_graph.adjacency(normalization="sym")
        x = np.random.randn(sbm_graph.num_nodes).astype(np.float32)
        # ||A_sym|| <= 1, so repeated application must not blow up.
        for _ in range(20):
            x = adj @ x
        assert np.all(np.isfinite(x))

    def test_unknown_normalization_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.adjacency(normalization="bogus")


class TestTransformations:
    def test_add_self_loops(self):
        g = Graph(3, [0], [1]).add_self_loops()
        assert g.num_edges == 4
        assert np.all(g.in_degrees() >= 1)

    def test_remove_self_loops(self):
        g = Graph(3, [0, 1, 2], [0, 2, 2]).remove_self_loops()
        assert g.num_edges == 1

    def test_reverse_swaps_directions(self):
        g = Graph(3, [0, 1], [1, 2]).reverse()
        np.testing.assert_array_equal(g.src, [1, 2])
        np.testing.assert_array_equal(g.dst, [0, 1])

    def test_to_bidirected_is_symmetric(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3]).to_bidirected()
        assert g.is_bidirected()

    def test_coalesce_removes_duplicates(self):
        g = Graph(3, [0, 0, 1], [1, 1, 2]).coalesce()
        assert g.num_edges == 2

    def test_subgraph_relabels_and_keeps_internal_edges(self):
        g = Graph(5, [0, 1, 2, 3], [1, 2, 3, 4])
        sub, nodes = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # 1→2 and 2→3 survive
        np.testing.assert_array_equal(nodes, [1, 2, 3])

    def test_subgraph_carries_ndata(self):
        g = Graph(4, [0], [1], ndata={"feat": np.arange(8).reshape(4, 2)})
        sub, nodes = g.subgraph([2, 3])
        np.testing.assert_array_equal(sub.ndata["feat"], [[4, 5], [6, 7]])

    def test_edge_subgraph_arrays(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        src, dst = g.edge_subgraph_arrays(np.array([True, False, True]))
        np.testing.assert_array_equal(src, [0, 2])
        with pytest.raises(ValueError):
            g.edge_subgraph_arrays(np.array([True]))

    def test_from_scipy_and_edge_list(self):
        g1 = Graph.from_edge_list(3, [(0, 1), (1, 2)])
        g2 = Graph.from_scipy(g1.adjacency())
        assert g2.num_edges == g1.num_edges


class TestGenerators:
    def test_sbm_homophily(self):
        graph, blocks = stochastic_block_model([50, 50], p_in=0.2, p_out=0.01, seed=0)
        same = (blocks[graph.src] == blocks[graph.dst]).mean()
        assert same > 0.7

    def test_sbm_is_bidirected(self):
        graph, _ = stochastic_block_model([20, 20], 0.2, 0.05, seed=1)
        assert graph.is_bidirected()

    def test_sbm_reproducible(self):
        g1, _ = stochastic_block_model([30, 30], 0.1, 0.02, seed=5)
        g2, _ = stochastic_block_model([30, 30], 0.1, 0.02, seed=5)
        assert g1.num_edges == g2.num_edges
        np.testing.assert_array_equal(g1.src, g2.src)

    def test_sbm_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([10, 10], p_in=1.5, p_out=0.1)

    def test_erdos_renyi_degree(self):
        g = erdos_renyi(500, avg_degree=10, seed=0)
        assert 6 < g.num_edges / g.num_nodes < 14

    def test_barabasi_albert_power_law_hubs(self):
        g = barabasi_albert(300, attach=2, seed=0)
        degrees = g.in_degrees()
        assert degrees.max() > 4 * np.median(degrees[degrees > 0])

    def test_ring_graph_structure(self):
        g = ring_graph(10)
        np.testing.assert_array_equal(g.in_degrees(), np.full(10, 2))

    def test_star_graph_structure(self):
        g = star_graph(6)
        assert g.num_nodes == 7
        assert g.in_degrees()[0] == 6

    @given(st.integers(2, 6), st.integers(10, 40), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_sbm_block_sizes_respected(self, num_blocks, block_size, seed):
        graph, blocks = stochastic_block_model(
            [block_size] * num_blocks, p_in=0.1, p_out=0.02, seed=seed
        )
        assert graph.num_nodes == num_blocks * block_size
        assert len(np.unique(blocks)) == num_blocks
        # every edge endpoint must be a valid node id
        if graph.num_edges:
            assert graph.src.max() < graph.num_nodes
            assert graph.dst.max() < graph.num_nodes
