"""Tests for the running (incremental) stable softmax of paper §3.4."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RunningSoftmaxAccumulator
from repro.tensor.sparse import edge_softmax_np, segment_sum_np


def _reference(logits, values, src, dst, num_nodes):
    """Direct (non-incremental) softmax-weighted aggregation."""
    alpha = edge_softmax_np(logits, dst, num_nodes)
    heads, dim = values.shape[1], values.shape[2]
    out = np.zeros((num_nodes, heads, dim), dtype=values.dtype)
    for e in range(len(src)):
        out[dst[e]] += alpha[e][:, None] * values[src[e]]
    return out


def _block_aggregate(values, src, dst, num_nodes):
    def fn(weights):
        heads, dim = values.shape[1], values.shape[2]
        out = np.zeros((num_nodes, heads, dim), dtype=values.dtype)
        for e in range(len(src)):
            out[dst[e]] += weights[e][:, None] * values[src[e]]
        return out
    return fn


def _random_problem(rng, num_nodes=6, num_edges=25, heads=2, dim=3, scale=1.0):
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    logits = (scale * rng.standard_normal((num_edges, heads))).astype(np.float32)
    values = rng.standard_normal((num_nodes, heads, dim)).astype(np.float32)
    return src, dst, logits, values


class TestRunningSoftmax:
    def test_single_block_matches_reference(self, rng):
        src, dst, logits, values = _random_problem(rng)
        acc = RunningSoftmaxAccumulator(6, 2, 3)
        acc.add_block(logits, values, dst, _block_aggregate(values, src, dst, 6))
        np.testing.assert_allclose(acc.finalize(), _reference(logits, values, src, dst, 6),
                                   rtol=1e-4, atol=1e-5)

    def test_incremental_blocks_match_reference(self, rng):
        src, dst, logits, values = _random_problem(rng, num_edges=30)
        acc = RunningSoftmaxAccumulator(6, 2, 3)
        for chunk in np.array_split(np.arange(30), 4):
            acc.add_block(logits[chunk], values, dst[chunk],
                          _block_aggregate(values, src[chunk], dst[chunk], 6))
        np.testing.assert_allclose(acc.finalize(), _reference(logits, values, src, dst, 6),
                                   rtol=1e-4, atol=1e-5)

    def test_block_order_does_not_matter(self, rng):
        src, dst, logits, values = _random_problem(rng, num_edges=24)
        order_a = np.array_split(np.arange(24), 3)
        order_b = [chunk for chunk in reversed(order_a)]
        results = []
        for order in (order_a, order_b):
            acc = RunningSoftmaxAccumulator(6, 2, 3)
            for chunk in order:
                acc.add_block(logits[chunk], values, dst[chunk],
                              _block_aggregate(values, src[chunk], dst[chunk], 6))
            results.append(acc.finalize())
        np.testing.assert_allclose(results[0], results[1], rtol=1e-4, atol=1e-5)

    def test_large_logits_stay_finite_only_when_stable(self, rng):
        """Reproduces the §3.4 observation: without the running-max correction,
        incremental attention aggregation overflows for large logits."""
        src, dst, logits, values = _random_problem(rng, scale=60.0)
        stable = RunningSoftmaxAccumulator(6, 2, 3, stable=True)
        naive = RunningSoftmaxAccumulator(6, 2, 3, stable=False)
        with np.errstate(over="ignore", invalid="ignore"):
            for chunk in np.array_split(np.arange(len(src)), 3):
                for acc in (stable, naive):
                    acc.add_block(logits[chunk], values, dst[chunk],
                                  _block_aggregate(values, src[chunk], dst[chunk], 6))
            stable_out = stable.finalize()
            naive_out = naive.finalize()
        assert np.all(np.isfinite(stable_out))
        assert not np.all(np.isfinite(naive_out))

    def test_nodes_without_edges_stay_zero(self, rng):
        logits = np.zeros((2, 1), dtype=np.float32)
        values = rng.standard_normal((3, 1, 2)).astype(np.float32)
        src = np.array([0, 1])
        dst = np.array([0, 0])
        acc = RunningSoftmaxAccumulator(3, 1, 2)
        acc.add_block(logits, values, dst, _block_aggregate(values, src, dst, 3))
        out = acc.finalize()
        np.testing.assert_allclose(out[1], 0.0)
        np.testing.assert_allclose(out[2], 0.0)

    def test_state_returns_final_max_and_denominator(self, rng):
        src, dst, logits, values = _random_problem(rng)
        acc = RunningSoftmaxAccumulator(6, 2, 3)
        acc.add_block(logits, values, dst, _block_aggregate(values, src, dst, 6))
        running_max, denom = acc.state()
        safe_max = np.where(np.isfinite(running_max), running_max, 0.0)
        weights = np.exp(logits - safe_max[dst])
        np.testing.assert_allclose(segment_sum_np(weights, dst, 6),
                                   denom, rtol=1e-4, atol=1e-5)

    def test_head_count_mismatch_raises(self, rng):
        acc = RunningSoftmaxAccumulator(4, 2, 3)
        with pytest.raises(ValueError):
            acc.add_block(np.zeros((3, 5), dtype=np.float32),
                          np.zeros((4, 2, 3), dtype=np.float32),
                          np.array([0, 1, 2]), lambda w: np.zeros((4, 2, 3)))

    @given(st.integers(1, 5), st.integers(1, 40), st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_incremental_equals_direct_property(self, num_blocks, num_edges, seed):
        rng = np.random.default_rng(seed)
        num_nodes, heads, dim = 5, 2, 2
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        logits = (3 * rng.standard_normal((num_edges, heads))).astype(np.float32)
        values = rng.standard_normal((num_nodes, heads, dim)).astype(np.float32)
        acc = RunningSoftmaxAccumulator(num_nodes, heads, dim)
        for chunk in np.array_split(np.arange(num_edges), min(num_blocks, max(num_edges, 1))):
            if len(chunk) == 0:
                continue
            acc.add_block(logits[chunk], values, dst[chunk],
                          _block_aggregate(values, src[chunk], dst[chunk], num_nodes))
        np.testing.assert_allclose(
            acc.finalize(), _reference(logits, values, src, dst, num_nodes),
            rtol=1e-3, atol=1e-4,
        )
