"""Bit-parity and branch coverage for the neighbour-selection kernels.

The contract under test (see :mod:`repro.sample.kernels`): which kernel runs
— bucketed vs. all-candidates sorted, composite argsort vs. lexsort — never
changes which edges are selected, only what selecting them costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, HeteroGraph
from repro.sample import InEdgeIndex, sample_in_edges
from repro.sample import kernels
from repro.sample.kernels import (
    bottomk_bucketed,
    bottomk_sorted,
    candidate_positions,
    segmented_key_order,
)
from repro.utils.seed import hash_u64, mix_seed


def _slices(index: InEdgeIndex, nodes: np.ndarray):
    starts = index.indptr[nodes]
    counts = index.indptr[nodes + 1] - starts
    return starts, counts


@pytest.fixture
def skewed_graph(rng) -> Graph:
    """A few hub destinations with hundreds of in-edges next to leaf nodes."""
    hub_dst = np.repeat(np.arange(4), 300)
    hub_src = rng.integers(4, 200, hub_dst.size)
    leaf_dst = rng.integers(4, 200, 400)
    leaf_src = rng.integers(0, 200, 400)
    return Graph(200, np.concatenate([hub_src, leaf_src]),
                 np.concatenate([hub_dst, leaf_dst]))


class TestBottomKParity:
    @pytest.mark.parametrize("fanout", [1, 2, 3, 5, 10, 37, 299])
    def test_bucketed_matches_sorted_bitwise(self, skewed_graph, fanout):
        index = InEdgeIndex.from_graph(skewed_graph)
        nodes = np.arange(skewed_graph.num_nodes)
        starts, counts = _slices(index, nodes)
        key = mix_seed(5, 0, 0, fanout)
        ref = bottomk_sorted(index.eids, starts, counts, fanout, key)
        got = bottomk_bucketed(index.eids, starts, counts, fanout, key)
        np.testing.assert_array_equal(ref, got)

    @pytest.mark.parametrize("replace", [False, True])
    @pytest.mark.parametrize("fanout", [1, 3, 7])
    def test_dispatcher_methods_agree(self, sbm_graph, replace, fanout):
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        ref = sample_in_edges(index, nodes, fanout, replace, key=31, method="sorted")
        got = sample_in_edges(index, nodes, fanout, replace, key=31, method="bucketed")
        np.testing.assert_array_equal(ref, got)

    def test_isolated_and_low_degree_nodes(self):
        # Nodes 1..4 feed node 0; node 5 is isolated; node 6 has one in-edge.
        src = np.array([1, 2, 3, 4, 2])
        dst = np.array([0, 0, 0, 0, 6])
        index = InEdgeIndex.from_graph(Graph(7, src, dst))
        nodes = np.arange(7)
        for fanout in (1, 2, 3):
            ref = sample_in_edges(index, nodes, fanout, False, key=9, method="sorted")
            got = sample_in_edges(index, nodes, fanout, False, key=9, method="bucketed")
            np.testing.assert_array_equal(ref, got)
        assert sample_in_edges(index, np.array([5]), 2, False, key=9).size == 0

    def test_hetero_relations_agree_per_relation(self, rng):
        relations = {
            "dense": (rng.integers(0, 40, 400), rng.integers(0, 40, 400)),
            "sparse": (rng.integers(0, 40, 25), rng.integers(0, 40, 25)),
            "empty": (np.array([], dtype=np.int64), np.array([], dtype=np.int64)),
        }
        graph = HeteroGraph(40, relations)
        nodes = np.arange(40)
        for rel_index, name in enumerate(graph.relation_names):
            src, dst = graph.relations[name]
            index = InEdgeIndex(src, dst, 40)
            key = mix_seed(7, 1, 0, 0) ^ np.uint64(rel_index).item()
            for fanout in (1, 4):
                ref = sample_in_edges(index, nodes, fanout, False, key=key,
                                      method="sorted")
                got = sample_in_edges(index, nodes, fanout, False, key=key,
                                      method="bucketed")
                np.testing.assert_array_equal(ref, got)

    def test_escalation_path_is_exact(self, skewed_graph, monkeypatch):
        """With the threshold forced to 0, every segment underfills its bucket
        and escalates to its full candidate list — the result must still be
        the exact bottom-k."""
        monkeypatch.setattr(kernels, "_BUCKET_SAFETY", 0)
        index = InEdgeIndex.from_graph(skewed_graph)
        nodes = np.arange(skewed_graph.num_nodes)
        starts, counts = _slices(index, nodes)
        ref = bottomk_sorted(index.eids, starts, counts, 3, 17)
        got = bottomk_bucketed(index.eids, starts, counts, 3, 17)
        np.testing.assert_array_equal(ref, got)

    def test_huge_fanout_routes_to_sorted_kernel(self, sbm_graph):
        # Fanouts at/above _BUCKET_FANOUT_LIMIT would overflow the bucketed
        # threshold arithmetic; the dispatcher must route them safely (here
        # they exceed every degree, so they take the full neighbourhood).
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        huge = kernels._BUCKET_FANOUT_LIMIT
        ref = sample_in_edges(index, nodes, -1, False, key=3)
        got = sample_in_edges(index, nodes, huge, False, key=3, method="bucketed")
        np.testing.assert_array_equal(index.eids[ref], index.eids[got])


class TestSegmentedOrder:
    def test_lexsort_fallback_matches_composite(self, skewed_graph, monkeypatch):
        """Beyond the composite-key segment limit the kernel falls back to
        np.lexsort; both branches must produce the identical permutation
        (stability included)."""
        index = InEdgeIndex.from_graph(skewed_graph)
        nodes = np.arange(skewed_graph.num_nodes)
        starts, counts = _slices(index, nodes)
        pos, seg = candidate_positions(starts, counts)
        keys = hash_u64(index.eids[pos], 23) >> np.uint64(24)
        # Inject duplicate keys so the tie-break (ascending position) matters.
        keys[seg == 0] = keys[seg == 0] % np.uint64(4)
        composite = segmented_key_order(keys, seg, len(counts))
        monkeypatch.setattr(kernels, "_COMPOSITE_SEGMENT_LIMIT", 1)
        fallback = segmented_key_order(keys, seg, len(counts))
        np.testing.assert_array_equal(composite, fallback)

    def test_selection_identical_across_sort_branches(self, sbm_graph, monkeypatch):
        index = InEdgeIndex.from_graph(sbm_graph)
        nodes = np.arange(sbm_graph.num_nodes)
        ref = sample_in_edges(index, nodes, 4, False, key=77)
        monkeypatch.setattr(kernels, "_COMPOSITE_SEGMENT_LIMIT", 1)
        got = sample_in_edges(index, nodes, 4, False, key=77)
        np.testing.assert_array_equal(ref, got)
        for method in ("bucketed", "sorted"):
            again = sample_in_edges(index, nodes, 4, False, key=77, method=method)
            np.testing.assert_array_equal(ref, again)
