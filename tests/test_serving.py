"""Online inference serving: parity under concurrency, caching, invalidation.

The subsystem contract under test (``repro/serving/``):

* every logit row served by :class:`~repro.serving.InferenceServer` is
  **bit-identical** to the corresponding row of the full-graph
  ``model(graph, features)`` eval-mode forward — under concurrent clients,
  with the embedding cache on or off, with the micro-batch window on or off,
  and across version-bump invalidation;
* a repeated request topology builds **zero** new edge plans (the shared
  structural plan cache satisfies every block);
* the historical-embedding cache truncates repeat traffic (logits fast
  path), evicts by bytes, and invalidates atomically on version bump;
* model updates serialize with request batches: served rows always come
  from exactly one (weights, cache-version) pair.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.datasets import make_sbm_dataset
from repro.nn.models import GATNet, GraphSageNet
from repro.serving import EmbeddingCache, InferenceServer, ServingConfig
from repro.tensor import Tensor, no_grad
from repro.tensor import edge_plan as edge_plan_mod
from repro.utils.seed import set_seed


@pytest.fixture
def dataset():
    return make_sbm_dataset(
        name="serving-sbm",
        num_nodes=200,
        num_classes=4,
        feature_dim=12,
        p_in=0.12,
        p_out=0.02,
    )


def _make_model(dataset, kind="sage"):
    set_seed(0)
    if kind == "gat":
        return GATNet(
            dataset.feature_dim, 8, dataset.num_classes, num_layers=2,
            num_heads=2, dropout=0.0, use_batch_norm=True,
        )
    return GraphSageNet(
        dataset.feature_dim, 16, dataset.num_classes, num_layers=2,
        dropout=0.5, use_batch_norm=True,
    )


def _reference_logits(model, graph, features):
    model.eval()
    with no_grad():
        return model(graph, Tensor(features)).data


# --------------------------------------------------------------------------- #
# serving parity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["sage", "gat"])
@pytest.mark.parametrize("window_ms", [0.0, 2.0])
@pytest.mark.parametrize("cache_bytes", [None, 1 << 20])
def test_served_logits_bit_identical(dataset, kind, window_ms, cache_bytes):
    model = _make_model(dataset, kind)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    config = ServingConfig(window_ms=window_ms, byte_budget=cache_bytes)
    with InferenceServer(
        model, dataset.graph, dataset.features, config=config
    ) as server:
        for ids in ([5], [3, 1, 4, 1, 5], [0, 199], list(range(40))):
            np.testing.assert_array_equal(server.predict(ids), reference[ids])


@pytest.mark.parametrize("window_ms", [0.0, 2.0])
@pytest.mark.parametrize("cache_bytes", [None, 1 << 20])
def test_concurrent_clients_bit_identical(dataset, window_ms, cache_bytes):
    """N threads with overlapping skewed requests all get exact rows."""
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    rng = np.random.default_rng(7)
    # Popularity skew: half of all requests land on a 10-node hot set.
    hot = rng.choice(dataset.graph.num_nodes, size=10, replace=False)
    streams = []
    for _ in range(6):
        cold = rng.integers(0, dataset.graph.num_nodes, size=8)
        mixed = np.concatenate([cold, rng.choice(hot, size=8)])
        rng.shuffle(mixed)
        streams.append(mixed)
    errors = []

    config = ServingConfig(window_ms=window_ms, byte_budget=cache_bytes)
    with InferenceServer(
        model, dataset.graph, dataset.features, config=config
    ) as server:

        def client(stream):
            try:
                for node in stream:
                    row = server.predict([int(node)])
                    np.testing.assert_array_equal(row[0], reference[node])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s,)) for s in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()

    assert not errors
    assert stats["served_requests"] == sum(len(s) for s in streams)


def test_request_rows_follow_request_order(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    with InferenceServer(model, dataset.graph, dataset.features) as server:
        ids = [9, 2, 9, 0, 2]  # duplicates and non-ascending order
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        assert server.predict(np.array([], dtype=np.int64)).size == 0


# --------------------------------------------------------------------------- #
# micro-batching
# --------------------------------------------------------------------------- #
def test_window_coalesces_async_requests(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=200.0),
    ) as server:
        futures = [server.predict_async([i, i + 1]) for i in range(12)]
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(future.result(30), reference[[i, i + 1]])
        stats = server.stats()
    # 12 requests submitted well inside one 200 ms window: strictly fewer
    # executions than requests, and at least one multi-request batch.
    assert stats["batches"] < stats["served_requests"]
    assert stats["max_requests_in_batch"] >= 2


def test_window_zero_serves_one_request_per_batch(dataset):
    model = _make_model(dataset)
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=0.0),
    ) as server:
        for i in range(5):
            server.predict([i])
        stats = server.stats()
    assert stats["batches"] == 5
    assert stats["max_requests_in_batch"] == 1


def test_max_batch_seeds_closes_window_early(dataset):
    model = _make_model(dataset)
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=500.0, max_batch_seeds=4),
    ) as server:
        futures = [server.predict_async([i]) for i in range(8)]
        for future in futures:
            future.result(30)
        stats = server.stats()
    # 8 single-seed requests against a 4-seed cap: no batch may exceed it,
    # and the 500 ms window alone would otherwise have merged all 8.
    assert stats["batches"] >= 2
    assert stats["seeds_executed"] <= stats["batches"] * 4


# --------------------------------------------------------------------------- #
# plan-cache warmth (zero plan builds on repeated topology)
# --------------------------------------------------------------------------- #
def test_repeated_topology_builds_zero_plans(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [7, 11, 42]
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=0.0),
    ) as server:
        server.predict(ids)  # builds (or reuses) this topology's plans
        built = edge_plan_mod.build_counter
        hits_before = edge_plan_mod.shared_plan_cache().stats()["hits"]
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        assert edge_plan_mod.build_counter == built
        stats = server.stats()
    assert stats["plan_cache"]["hits"] > hits_before


# --------------------------------------------------------------------------- #
# embedding cache behaviour through the server
# --------------------------------------------------------------------------- #
def test_repeat_request_takes_logits_fast_path(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90]
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=0.0, byte_budget=1 << 20),
    ) as server:
        server.predict(ids)
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        stats = server.stats()
    assert stats["fast_path_batches"] >= 1
    # Frontier histogram: one full-depth batch (layer 0), one all-cached
    # batch (layer num_layers).
    assert stats["frontier_layers"][0] == 1
    assert stats["frontier_layers"][model.num_layers] == 1
    assert stats["embedding_cache"]["hits"] >= len(ids)


def test_version_bump_invalidates_and_reserves_fresh_rows(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90]
    with InferenceServer(
        model, dataset.graph, dataset.features,
        config=ServingConfig(window_ms=0.0, byte_budget=1 << 20),
    ) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        assert server.version == 1

        def perturb(m):
            for param in m.parameters():
                param.data[...] = param.data + 0.25

        assert server.update(perturb) == 2
        with no_grad():
            new_reference = model(dataset.graph, Tensor(dataset.features)).data
        assert not np.array_equal(new_reference, reference)
        # Post-update requests serve the new weights, never stale rows.
        np.testing.assert_array_equal(server.predict(ids), new_reference[ids])
        stats = server.stats()
    assert stats["embedding_cache"]["version"] == 2
    assert stats["embedding_cache"]["invalidations"] == 1
    assert stats["updates"] == 1


def test_bump_version_without_cache_still_advances(dataset):
    model = _make_model(dataset)
    with InferenceServer(model, dataset.graph, dataset.features) as server:
        assert server.version == 1
        assert server.bump_version() == 2
        assert server.version == 2
        assert server.stats()["embedding_cache"] is None


def test_update_failure_propagates_and_server_survives(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    with InferenceServer(model, dataset.graph, dataset.features) as server:

        def boom(_model):
            raise RuntimeError("bad checkpoint")

        with pytest.raises(RuntimeError, match="bad checkpoint"):
            server.update(boom)
        np.testing.assert_array_equal(server.predict([5]), reference[[5]])


# --------------------------------------------------------------------------- #
# lifecycle + validation
# --------------------------------------------------------------------------- #
def test_lifecycle_and_input_validation(dataset):
    model = _make_model(dataset)
    server = InferenceServer(model, dataset.graph, dataset.features)
    with pytest.raises(RuntimeError, match="not running"):
        server.predict([0])
    server.start()
    with pytest.raises(ValueError, match="node_ids"):
        server.predict([dataset.graph.num_nodes])
    with pytest.raises(ValueError, match="node_ids"):
        server.predict([-1])
    server.stop()
    with pytest.raises(RuntimeError, match="not running"):
        server.predict([0])
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()

    with pytest.raises(ValueError, match="rows"):
        InferenceServer(model, dataset.graph, dataset.features[:-1])
    with pytest.raises(ValueError, match="window_ms"):
        InferenceServer(model, dataset.graph, dataset.features,
                        config=ServingConfig(window_ms=-1.0))
    with pytest.raises(ValueError, match="forward_layer"):
        InferenceServer(object(), dataset.graph, dataset.features)
    with pytest.raises(ValueError, match="Graph"):
        InferenceServer(model, object(), dataset.features)


def test_stop_drains_queued_requests(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    server = InferenceServer(model, dataset.graph, dataset.features).start()
    futures = [server.predict_async([i]) for i in range(6)]
    server.stop()
    for i, future in enumerate(futures):
        np.testing.assert_array_equal(future.result(30), reference[[i]])


# --------------------------------------------------------------------------- #
# EmbeddingCache unit behaviour
# --------------------------------------------------------------------------- #
def test_embedding_cache_roundtrip_and_all_or_nothing():
    cache = EmbeddingCache(1 << 20)
    values = np.arange(12, dtype=np.float32).reshape(3, 4)
    cache.put(1, np.array([5, 9, 2]), values)
    got = cache.lookup(1, np.array([9, 2]))
    np.testing.assert_array_equal(got, values[[1, 2]])
    assert cache.lookup(1, np.array([5, 7])) is None  # 7 missing: whole miss
    assert cache.lookup(2, np.array([5])) is None  # other layer
    stats = cache.stats()
    assert stats["hits"] == 2 and stats["misses"] == 2
    assert stats["rows"] == 3 and stats["insertions"] == 3


def test_embedding_cache_rows_are_copies():
    cache = EmbeddingCache(1 << 20)
    values = np.ones((1, 4), dtype=np.float32)
    cache.put(1, np.array([0]), values)
    values[...] = -1.0
    np.testing.assert_array_equal(
        cache.lookup(1, np.array([0])), np.ones((1, 4), dtype=np.float32)
    )


def test_embedding_cache_evicts_by_bytes_lru():
    row_bytes = 4 * 4  # float32 width 4
    cache = EmbeddingCache(3 * row_bytes)
    cache.put(1, np.array([0, 1, 2]), np.zeros((3, 4), dtype=np.float32))
    cache.lookup(1, np.array([0]))  # refresh 0: node 1 becomes LRU
    cache.put(1, np.array([3]), np.ones((1, 4), dtype=np.float32))
    assert cache.lookup(1, np.array([1])) is None  # evicted
    assert cache.lookup(1, np.array([0])) is not None
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["current_bytes"] == 3 * row_bytes


def test_embedding_cache_oversized_batch_does_not_stick():
    cache = EmbeddingCache(8)
    cache.put(1, np.array([0, 1]), np.zeros((2, 4), dtype=np.float32))
    assert len(cache) == 0
    assert cache.stats()["current_bytes"] == 0


def test_embedding_cache_version_bump_drops_rows():
    cache = EmbeddingCache(1 << 20)
    cache.put(1, np.array([0]), np.zeros((1, 4), dtype=np.float32))
    assert cache.bump_version() == 2
    assert len(cache) == 0
    assert cache.lookup(1, np.array([0])) is None
    cache.put(1, np.array([0]), np.zeros((1, 4), dtype=np.float32))
    assert cache.stats()["rows"] == 1


def test_embedding_cache_validates():
    with pytest.raises(ValueError, match="capacity_bytes"):
        EmbeddingCache(0)
    cache = EmbeddingCache(1 << 10)
    with pytest.raises(ValueError, match="rows"):
        cache.put(1, np.array([0, 1]), np.zeros((1, 4), dtype=np.float32))
