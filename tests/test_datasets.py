"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    available_datasets,
    get_dataset,
    make_hetero_sbm_dataset,
    make_sbm_dataset,
    ogbn_mag_mini,
    ogbn_papers_mini,
    ogbn_products_mini,
    random_split,
)


class TestSplits:
    def test_split_fractions(self, rng):
        train, val, test = random_split(1000, 0.5, 0.2, 0.3, rng)
        assert abs(train.sum() - 500) <= 1
        assert abs(val.sum() - 200) <= 1
        assert abs(test.sum() - 300) <= 1

    def test_splits_disjoint(self, rng):
        train, val, test = random_split(500, 0.4, 0.3, 0.3, rng)
        assert not np.any(train & val)
        assert not np.any(train & test)
        assert not np.any(val & test)

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError):
            random_split(100, 0.6, 0.3, 0.3)


class TestSBMDataset:
    def test_basic_properties(self, small_dataset):
        ds = small_dataset
        assert ds.num_nodes == ds.graph.num_nodes == len(ds.labels)
        assert ds.features.shape == (ds.num_nodes, ds.feature_dim)
        assert ds.labels.max() < ds.num_classes
        assert ds.features.dtype == np.float32

    def test_labels_match_blocks_homophily(self, small_dataset):
        g, labels = small_dataset.graph, small_dataset.labels
        no_self = g.src != g.dst
        same = (labels[g.src[no_self]] == labels[g.dst[no_self]]).mean()
        assert same > 0.6

    def test_attach_to_graph(self, small_dataset):
        assert "feat" in small_dataset.graph.ndata
        assert "train_mask" in small_dataset.graph.ndata

    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["num_nodes"] == small_dataset.num_nodes
        assert summary["train_nodes"] == int(small_dataset.train_mask.sum())

    def test_reproducible_with_seed(self):
        a = make_sbm_dataset("x", 100, 4, 8, 0.1, 0.01, seed=3)
        b = make_sbm_dataset("x", 100, 4, 8, 0.1, 0.01, seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.num_edges == b.num_edges

    def test_split_indices_helpers(self, small_dataset):
        assert len(small_dataset.train_indices()) == small_dataset.train_mask.sum()
        assert len(small_dataset.test_indices()) == small_dataset.test_mask.sum()

    def test_features_are_class_informative(self, small_dataset):
        """A trivial nearest-centroid classifier must beat chance on the features."""
        ds = small_dataset
        centroids = np.stack([
            ds.features[ds.labels == c].mean(axis=0) for c in range(ds.num_classes)
        ])
        distances = ((ds.features[:, None, :] - centroids[None]) ** 2).sum(-1)
        accuracy = (distances.argmin(axis=1) == ds.labels).mean()
        assert accuracy > 1.5 / ds.num_classes


class TestOgbLikeDatasets:
    def test_products_mini_shape(self):
        ds = ogbn_products_mini(scale=0.2)
        assert ds.feature_dim == 100
        assert ds.num_classes == 12
        assert ds.name == "ogbn-products-mini"

    def test_papers_mini_sparse_labels(self):
        ds = ogbn_papers_mini(scale=0.2)
        assert ds.feature_dim == 128
        assert ds.train_mask.mean() < 0.2

    def test_mag_mini_is_heterogeneous(self):
        ds = ogbn_mag_mini(scale=0.2)
        assert ds.hetero_graph is not None
        assert set(ds.hetero_graph.relation_names) == {
            "cites", "writes", "affiliated_with", "has_topic"
        }
        assert ds.graph.num_edges == ds.hetero_graph.num_edges

    def test_registry(self):
        assert set(available_datasets()) == {
            "ogbn-products-mini", "ogbn-papers-mini", "ogbn-mag-mini"
        }
        ds = get_dataset("ogbn-products-mini", scale=0.2)
        assert ds.num_nodes > 0
        with pytest.raises(KeyError):
            get_dataset("ogbn-unknown")

    def test_scale_parameter_changes_size(self):
        small = ogbn_products_mini(scale=0.2)
        large = ogbn_products_mini(scale=0.4)
        assert large.num_nodes > small.num_nodes

    def test_hetero_relations_have_different_densities(self):
        ds = ogbn_mag_mini(scale=0.3)
        counts = [ds.hetero_graph.num_edges_of(r) for r in ds.hetero_graph.relation_names]
        assert len(set(counts)) > 1
