"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    available_datasets,
    get_dataset,
    make_hetero_sbm_dataset,
    make_sbm_dataset,
    ogbn_mag_mini,
    ogbn_papers_mini,
    ogbn_products_mini,
    random_split,
)


class TestSplits:
    def test_split_fractions(self, rng):
        train, val, test = random_split(1000, 0.5, 0.2, 0.3, rng)
        assert abs(train.sum() - 500) <= 1
        assert abs(val.sum() - 200) <= 1
        assert abs(test.sum() - 300) <= 1

    def test_splits_disjoint(self, rng):
        train, val, test = random_split(500, 0.4, 0.3, 0.3, rng)
        assert not np.any(train & val)
        assert not np.any(train & test)
        assert not np.any(val & test)

    def test_invalid_fractions_raise(self):
        with pytest.raises(ValueError):
            random_split(100, 0.6, 0.3, 0.3)


class TestSBMDataset:
    def test_basic_properties(self, small_dataset):
        ds = small_dataset
        assert ds.num_nodes == ds.graph.num_nodes == len(ds.labels)
        assert ds.features.shape == (ds.num_nodes, ds.feature_dim)
        assert ds.labels.max() < ds.num_classes
        assert ds.features.dtype == np.float32

    def test_labels_match_blocks_homophily(self, small_dataset):
        g, labels = small_dataset.graph, small_dataset.labels
        no_self = g.src != g.dst
        same = (labels[g.src[no_self]] == labels[g.dst[no_self]]).mean()
        assert same > 0.6

    def test_attach_to_graph(self, small_dataset):
        assert "feat" in small_dataset.graph.ndata
        assert "train_mask" in small_dataset.graph.ndata

    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["num_nodes"] == small_dataset.num_nodes
        assert summary["train_nodes"] == int(small_dataset.train_mask.sum())

    def test_reproducible_with_seed(self):
        a = make_sbm_dataset("x", 100, 4, 8, 0.1, 0.01, seed=3)
        b = make_sbm_dataset("x", 100, 4, 8, 0.1, 0.01, seed=3)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.num_edges == b.num_edges

    def test_split_indices_helpers(self, small_dataset):
        assert len(small_dataset.train_indices()) == small_dataset.train_mask.sum()
        assert len(small_dataset.test_indices()) == small_dataset.test_mask.sum()

    def test_features_are_class_informative(self, small_dataset):
        """A trivial nearest-centroid classifier must beat chance on the features."""
        ds = small_dataset
        centroids = np.stack([
            ds.features[ds.labels == c].mean(axis=0) for c in range(ds.num_classes)
        ])
        distances = ((ds.features[:, None, :] - centroids[None]) ** 2).sum(-1)
        accuracy = (distances.argmin(axis=1) == ds.labels).mean()
        assert accuracy > 1.5 / ds.num_classes


class TestOgbLikeDatasets:
    def test_products_mini_shape(self):
        ds = ogbn_products_mini(scale=0.2)
        assert ds.feature_dim == 100
        assert ds.num_classes == 12
        assert ds.name == "ogbn-products-mini"

    def test_papers_mini_sparse_labels(self):
        ds = ogbn_papers_mini(scale=0.2)
        assert ds.feature_dim == 128
        assert ds.train_mask.mean() < 0.2

    def test_mag_mini_is_heterogeneous(self):
        ds = ogbn_mag_mini(scale=0.2)
        assert ds.hetero_graph is not None
        assert set(ds.hetero_graph.relation_names) == {
            "cites", "writes", "affiliated_with", "has_topic"
        }
        assert ds.graph.num_edges == ds.hetero_graph.num_edges

    def test_registry(self):
        assert set(available_datasets()) == {
            "ogbn-products-mini", "ogbn-papers-mini", "ogbn-mag-mini"
        }
        ds = get_dataset("ogbn-products-mini", scale=0.2)
        assert ds.num_nodes > 0
        with pytest.raises(KeyError):
            get_dataset("ogbn-unknown")

    def test_scale_parameter_changes_size(self):
        small = ogbn_products_mini(scale=0.2)
        large = ogbn_products_mini(scale=0.4)
        assert large.num_nodes > small.num_nodes

    def test_hetero_relations_have_different_densities(self):
        ds = ogbn_mag_mini(scale=0.3)
        counts = [ds.hetero_graph.num_edges_of(r) for r in ds.hetero_graph.relation_names]
        assert len(set(counts)) > 1


class TestOgbLikeSplitHandling:
    """Split-handling guarantees the trainers and the sampler rely on."""

    @pytest.mark.parametrize("maker,fractions", [
        (ogbn_products_mini, (0.4, 0.2, 0.4)),
        (ogbn_papers_mini, (0.10, 0.10, 0.20)),
        (ogbn_mag_mini, (0.4, 0.2, 0.4)),
    ])
    def test_split_fractions_and_disjointness(self, maker, fractions):
        ds = maker(scale=0.25)
        masks = (ds.train_mask, ds.val_mask, ds.test_mask)
        for mask, fraction in zip(masks, fractions):
            assert mask.dtype == np.bool_
            assert mask.shape == (ds.num_nodes,)
            assert abs(int(mask.sum()) - round(fraction * ds.num_nodes)) <= 1
        assert not np.any(ds.train_mask & ds.val_mask)
        assert not np.any(ds.train_mask & ds.test_mask)
        assert not np.any(ds.val_mask & ds.test_mask)

    def test_split_indices_sorted_and_consistent_with_masks(self):
        ds = ogbn_papers_mini(scale=0.25)
        for indices, mask in [
            (ds.train_indices(), ds.train_mask),
            (ds.val_indices(), ds.val_mask),
            (ds.test_indices(), ds.test_mask),
        ]:
            assert np.all(np.diff(indices) > 0)
            np.testing.assert_array_equal(np.flatnonzero(mask), indices)

    def test_same_seed_reproduces_splits_and_scale_preserves_fractions(self):
        a = ogbn_papers_mini(scale=0.25, seed=5)
        b = ogbn_papers_mini(scale=0.25, seed=5)
        np.testing.assert_array_equal(a.train_mask, b.train_mask)
        np.testing.assert_array_equal(a.val_mask, b.val_mask)
        np.testing.assert_array_equal(a.test_mask, b.test_mask)
        c = ogbn_papers_mini(scale=0.25, seed=6)
        assert not np.array_equal(a.train_mask, c.train_mask)
        small, large = ogbn_papers_mini(scale=0.25), ogbn_papers_mini(scale=0.5)
        assert abs(small.train_mask.mean() - large.train_mask.mean()) < 0.02

    def test_masks_are_attached_to_graph_ndata(self):
        ds = ogbn_products_mini(scale=0.2)
        for key in ("train_mask", "val_mask", "test_mask", "feat", "label"):
            assert key in ds.graph.ndata
        np.testing.assert_array_equal(ds.graph.ndata["train_mask"], ds.train_mask)
        hetero = ogbn_mag_mini(scale=0.2)
        for key in ("train_mask", "val_mask", "test_mask"):
            assert key in hetero.hetero_graph.ndata

    def test_registry_forwards_scale_and_seed(self):
        via_registry = get_dataset("ogbn-papers-mini", scale=0.25, seed=9)
        direct = ogbn_papers_mini(scale=0.25, seed=9)
        assert via_registry.num_nodes == direct.num_nodes
        np.testing.assert_array_equal(via_registry.train_mask, direct.train_mask)

    def test_hetero_split_masks_cover_shared_node_space(self):
        ds = make_hetero_sbm_dataset(
            name="h", num_nodes=120, num_classes=4, feature_dim=8,
            relation_specs={"a": {"p_in": 0.2, "p_out": 0.02},
                            "b": {"p_in": 0.05, "p_out": 0.01}},
            train_frac=0.5, val_frac=0.2, test_frac=0.3, seed=2,
        )
        assert ds.hetero_graph.num_nodes == ds.graph.num_nodes == len(ds.train_mask)
        covered = ds.train_mask | ds.val_mask | ds.test_mask
        assert covered.sum() == ds.num_nodes
