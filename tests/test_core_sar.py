"""Tests for the SAR core: distributed aggregation correctness, communication
behaviour (case 1 vs case 2), memory behaviour (SAR vs vanilla DP), and
gradient synchronization."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    DOMAIN_PARALLEL,
    SAR,
    SARConfig,
    DistributedGraph,
    DistributedHeteroGraph,
    broadcast_parameters,
    parameters_in_sync,
    sync_gradients,
)
from repro.datasets import make_hetero_sbm_dataset
from repro.distributed import run_distributed
from repro.partition import (
    PartitionBook,
    create_hetero_shards,
    create_shards,
    partition_graph,
)
from repro.tensor import Tensor
from repro.tensor.sparse import edge_softmax_np
from repro.utils.seed import set_seed

WORLD = 4


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _shards_for(graph, num_parts=WORLD, seed=0):
    assignment = partition_graph(graph, num_parts, seed=seed)
    book = PartitionBook(assignment, num_parts)
    return book, create_shards(graph, book)


def _reference_gat_aggregate(graph, z, sd, ss, slope=0.2):
    raw = sd[graph.dst] + ss[graph.src]
    logits = np.where(raw > 0, raw, slope * raw)
    alpha = edge_softmax_np(logits, graph.dst, graph.num_nodes)
    out = np.zeros_like(z)
    for e in range(graph.num_edges):
        out[graph.dst[e]] += alpha[e][:, None] * z[graph.src[e]]
    return out


# --------------------------------------------------------------------------- #
# case 1: sum/mean aggregation
# --------------------------------------------------------------------------- #
class TestDistributedSumAggregation:
    @pytest.mark.parametrize("mode", ["sar", "dp"])
    @pytest.mark.parametrize("op", ["sum", "mean"])
    def test_matches_single_machine_forward_and_backward(self, sbm_graph, rng, mode, op):
        z_full = rng.standard_normal((sbm_graph.num_nodes, 6)).astype(np.float32)
        grad_seed = rng.standard_normal((sbm_graph.num_nodes, 6)).astype(np.float32)
        # single-machine reference
        norm = "mean" if op == "mean" else "none"
        adj = sbm_graph.adjacency(normalization=norm)
        expected = np.asarray(adj @ z_full)
        expected_grad = np.asarray(adj.T @ grad_seed)

        book, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
            dg.begin_step()
            z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
            out = dg.aggregate_neighbors(z, op=op)
            out.backward(grad_seed[shard.global_node_ids])
            return out.data, z.grad

        result = run_distributed(worker, WORLD, worker_args=shards)
        out_global = book.scatter_to_global([r[0] for r in result.results])
        grad_global = book.scatter_to_global([r[1] for r in result.results])
        np.testing.assert_allclose(out_global, expected, rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(grad_global, expected_grad, rtol=1e-3, atol=1e-3)

    def test_case1_has_no_backward_refetch(self, sbm_graph, rng):
        """GraphSage is 'case 1': SAR must not re-fetch features in backward."""
        z_full = rng.standard_normal((sbm_graph.num_nodes, 4)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SAR)
            dg.begin_step()
            z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
            out = dg.aggregate_neighbors(z, op="mean")
            (out ** 2).sum().backward()
            return dict(comm.stats.received_by_tag)

        result = run_distributed(worker, WORLD, worker_args=shards)
        for tags in result.results:
            assert "backward_refetch" not in tags
            assert "forward_halo" in tags

    def test_sar_and_dp_same_communication_volume_for_case1(self, sbm_graph, rng):
        """Paper §3.2: for sum/mean aggregation SAR introduces no comm overhead."""
        z_full = rng.standard_normal((sbm_graph.num_nodes, 4)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        volumes = {}
        for mode in ("sar", "dp"):
            def worker(rank, comm, shard, mode=mode):
                dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
                dg.begin_step()
                z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
                (dg.aggregate_neighbors(z, op="mean") ** 2).sum().backward()
                return comm.stats.bytes_sent + comm.stats.bytes_received

            result = run_distributed(worker, WORLD, worker_args=shards)
            volumes[mode] = sum(result.results)
        assert volumes["sar"] == volumes["dp"]


# --------------------------------------------------------------------------- #
# case 2: attention aggregation
# --------------------------------------------------------------------------- #
class TestDistributedGATAggregation:
    @pytest.mark.parametrize("mode,fused", [("sar", False), ("sar", True), ("dp", False)])
    def test_matches_single_machine(self, sbm_graph, rng, mode, fused):
        heads, dim = 2, 3
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        sd_full = rng.standard_normal((n, heads)).astype(np.float32)
        ss_full = rng.standard_normal((n, heads)).astype(np.float32)
        grad_seed = rng.standard_normal((n, heads, dim)).astype(np.float32)
        expected = _reference_gat_aggregate(sbm_graph, z_full, sd_full, ss_full)

        book, shards = _shards_for(sbm_graph)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
            dg.begin_step()
            ids = shard.global_node_ids
            z = Tensor(z_full[ids], requires_grad=True)
            sd = Tensor(sd_full[ids], requires_grad=True)
            ss = Tensor(ss_full[ids], requires_grad=True)
            out = dg.gat_aggregate(z, sd, ss, negative_slope=0.2, fused=fused)
            out.backward(grad_seed[ids])
            return out.data, z.grad, sd.grad, ss.grad

        result = run_distributed(worker, WORLD, worker_args=shards)
        out_global = book.scatter_to_global([r[0] for r in result.results])
        np.testing.assert_allclose(out_global, expected, rtol=1e-3, atol=1e-3)

        # Gradients must match a single-machine autograd reference.
        z_t = Tensor(z_full, requires_grad=True)
        sd_t = Tensor(sd_full, requires_grad=True)
        ss_t = Tensor(ss_full, requires_grad=True)
        from repro.nn.gat_fused import FusedGATAggregation
        ref_out = FusedGATAggregation.apply(z_t, sd_t, ss_t, sbm_graph.src, sbm_graph.dst,
                                            n, 0.2)
        ref_out.backward(grad_seed)
        np.testing.assert_allclose(
            book.scatter_to_global([r[1] for r in result.results]), z_t.grad,
            rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(
            book.scatter_to_global([r[2] for r in result.results]), sd_t.grad,
            rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(
            book.scatter_to_global([r[3] for r in result.results]), ss_t.grad,
            rtol=1e-3, atol=1e-3)

    def test_sar_refetches_and_dp_does_not(self, sbm_graph, rng):
        """Paper §3.2 case 2: SAR re-fetches remote features during backward."""
        heads, dim = 2, 2
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        s_full = rng.standard_normal((n, heads)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        tags = {}
        for mode in ("sar", "dp"):
            def worker(rank, comm, shard, mode=mode):
                dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
                dg.begin_step()
                ids = shard.global_node_ids
                z = Tensor(z_full[ids], requires_grad=True)
                sd = Tensor(s_full[ids], requires_grad=True)
                ss = Tensor(s_full[ids], requires_grad=True)
                (dg.gat_aggregate(z, sd, ss) ** 2).sum().backward()
                return dict(comm.stats.received_by_tag)

            result = run_distributed(worker, WORLD, worker_args=shards)
            tags[mode] = result.results
        assert all("backward_refetch" in t for t in tags["sar"])
        assert all("backward_refetch" not in t for t in tags["dp"])

    def test_sar_uses_less_memory_than_dp(self, sbm_graph, rng):
        """The headline claim: SAR's peak per-worker memory is below vanilla DP's."""
        heads, dim = 4, 8
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        s_full = rng.standard_normal((n, heads)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        peaks = {}
        for mode in ("sar", "dp"):
            def worker(rank, comm, shard, mode=mode):
                dg = DistributedGraph(shard, comm, SARConfig(mode=mode))
                dg.begin_step()
                ids = shard.global_node_ids
                z = Tensor(z_full[ids], requires_grad=True)
                sd = Tensor(s_full[ids], requires_grad=True)
                ss = Tensor(s_full[ids], requires_grad=True)
                (dg.gat_aggregate(z, sd, ss) ** 2).sum().backward()
                return None

            result = run_distributed(worker, WORLD, worker_args=shards)
            peaks[mode] = max(result.peak_memory_bytes)
        assert peaks["sar"] < peaks["dp"]

    def test_prefetch_memory_between_sar_and_dp(self, sbm_graph, rng):
        """Prefetching (§3.4) keeps one extra partition resident: 3/N instead of 2/N."""
        heads, dim = 4, 8
        n = sbm_graph.num_nodes
        z_full = rng.standard_normal((n, heads, dim)).astype(np.float32)
        s_full = rng.standard_normal((n, heads)).astype(np.float32)
        _, shards = _shards_for(sbm_graph)
        peaks = {}
        for name, config in (("sar", SAR), ("prefetch", SARConfig("sar", prefetch=True)),
                             ("dp", DOMAIN_PARALLEL)):
            def worker(rank, comm, shard, config=config):
                dg = DistributedGraph(shard, comm, config)
                dg.begin_step()
                ids = shard.global_node_ids
                z = Tensor(z_full[ids], requires_grad=True)
                sd = Tensor(s_full[ids], requires_grad=True)
                ss = Tensor(s_full[ids], requires_grad=True)
                (dg.gat_aggregate(z, sd, ss) ** 2).sum().backward()
                return None

            result = run_distributed(worker, WORLD, worker_args=shards)
            peaks[name] = max(result.peak_memory_bytes)
        assert peaks["sar"] <= peaks["prefetch"] <= peaks["dp"]


# --------------------------------------------------------------------------- #
# case 2: relational aggregation
# --------------------------------------------------------------------------- #
class TestDistributedRGCNAggregation:
    @pytest.fixture
    def hetero_setup(self, rng):
        dataset = make_hetero_sbm_dataset(
            "test-mag", num_nodes=160, num_classes=4, feature_dim=6,
            relation_specs={
                "a": {"p_in": 0.1, "p_out": 0.01},
                "b": {"p_in": 0.05, "p_out": 0.02},
            }, seed=4,
        )
        hetero = dataset.hetero_graph
        assignment = partition_graph(dataset.graph, WORLD, seed=0)
        book = PartitionBook(assignment, WORLD)
        shards = create_hetero_shards(hetero, book)
        return hetero, book, shards

    @pytest.mark.parametrize("mode", ["sar", "dp"])
    def test_matches_single_machine_layer(self, hetero_setup, rng, mode):
        hetero, book, shards = hetero_setup
        set_seed(9)
        layer = nn.RelGraphConv(6, 5, ["a", "b"], num_bases=2)
        x_full = rng.standard_normal((hetero.num_nodes, 6)).astype(np.float32)
        expected = layer(hetero, Tensor(x_full)).data
        state = layer.state_dict()

        def worker(rank, comm, shard):
            replica = nn.RelGraphConv(6, 5, ["a", "b"], num_bases=2)
            replica.load_state_dict(state)
            dg = DistributedHeteroGraph(shard, comm, SARConfig(mode=mode))
            dg.begin_step()
            x = Tensor(x_full[shard.global_node_ids], requires_grad=True)
            out = replica(dg, x)
            (out ** 2).sum().backward()
            grads = [p.grad.copy() for p in replica.parameters()]
            return out.data, grads, dict(comm.stats.received_by_tag)

        result = run_distributed(worker, WORLD, worker_args=shards)
        out_global = book.scatter_to_global([r[0] for r in result.results])
        np.testing.assert_allclose(out_global, expected, rtol=1e-3, atol=1e-3)

        # Parameter gradients: sum of per-worker contributions == single machine.
        x_ref = Tensor(x_full, requires_grad=True)
        layer.zero_grad()
        (layer(hetero, x_ref) ** 2).sum().backward()
        for index, param in enumerate(layer.parameters()):
            total = sum(r[1][index] for r in result.results)
            np.testing.assert_allclose(total, param.grad, rtol=2e-3, atol=2e-3)

        # Case 2 communication behaviour.
        refetches = ["backward_refetch" in r[2] for r in result.results]
        assert all(refetches) if mode == "sar" else not any(refetches)


# --------------------------------------------------------------------------- #
# gradient synchronization helpers
# --------------------------------------------------------------------------- #
class TestGradSync:
    def test_sync_gradients_sums_and_scales(self):
        def worker(rank, comm):
            p = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
            p.grad = np.full(3, float(rank + 1), dtype=np.float32)
            sync_gradients([p], comm, scale=0.5)
            return p.grad.copy()

        result = run_distributed(worker, 3)
        for grads in result.results:
            np.testing.assert_allclose(grads, 0.5 * (1 + 2 + 3))

    def test_sync_handles_missing_grads(self):
        def worker(rank, comm):
            p = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
            if rank == 0:
                p.grad = np.ones(2, dtype=np.float32)
            sync_gradients([p], comm)
            return p.grad.copy()

        result = run_distributed(worker, 2)
        for grads in result.results:
            np.testing.assert_allclose(grads, 1.0)

    def test_broadcast_parameters_and_sync_check(self):
        def worker(rank, comm):
            p = Tensor(np.full(4, float(rank), dtype=np.float32), requires_grad=True)
            in_sync_before = parameters_in_sync([p], comm)
            broadcast_parameters([p], comm, source_rank=1)
            in_sync_after = parameters_in_sync([p], comm)
            return in_sync_before, in_sync_after, p.data.copy()

        result = run_distributed(worker, 3)
        assert all(not before for before, _, _ in result.results)
        assert all(after for _, after, _ in result.results)
        for _, _, data in result.results:
            np.testing.assert_allclose(data, 1.0)

    def test_empty_parameter_list_is_noop(self):
        def worker(rank, comm):
            sync_gradients([], comm)
            return True

        assert run_distributed(worker, 2).results == [True, True]
