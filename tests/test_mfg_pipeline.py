"""Tests for the MFG execution pipeline (compacted per-layer blocks).

The defining property of the pipeline is *exact* parity: a block contains a
required destination's complete in-neighbourhood in the original edge order,
so the restricted forward pass must produce bit-identical seed-node logits —
single-machine over :class:`~repro.graph.mfg.MFGBlock` chains, and 2-worker
SAR over per-layer restricted edge blocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SARConfig
from repro.core.dist_graph import DistributedGraph
from repro.distributed.cluster import run_distributed
from repro.graph import (
    HeteroGraph,
    build_hetero_mfg_pipeline,
    build_mfg_pipeline,
    hetero_message_flow_masks,
    message_flow_masks,
    stochastic_block_model,
)
from repro.nn.models import GATNet, GraphSageNet, RGCNNet
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.partition.shard import restrict_block_to_dst
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.tensor.edge_plan import plans_disabled
from repro.training.trainer import (
    DistributedTrainer,
    FullBatchTrainer,
    TrainingConfig,
)
from repro.utils.seed import set_seed


@pytest.fixture
def mfg_setup(rng):
    graph, _ = stochastic_block_model([150] * 4, p_in=0.04, p_out=0.004, seed=3)
    graph = graph.add_self_loops()
    features = rng.standard_normal((graph.num_nodes, 12)).astype(np.float32)
    labels = rng.integers(0, 4, graph.num_nodes)
    seeds = np.sort(rng.choice(graph.num_nodes, 15, replace=False))
    return graph, features, labels, seeds


def _loss_over(logits, labels, rows=None):
    if rows is not None:
        labels = labels[rows]
    return F.cross_entropy(logits, labels, reduction="sum")


def _full_vs_mfg(factory, graph, pipeline, features, labels):
    """Forward+backward both ways; return (full seed logits, mfg logits, grad diffs)."""
    seeds = pipeline.output_nodes
    seed_mask = np.zeros(graph.num_nodes, dtype=bool)
    seed_mask[seeds] = True

    set_seed(0)
    model_full = factory()
    logits_full = model_full(graph, Tensor(features))
    model_full.zero_grad()
    _loss_over(logits_full[seed_mask], labels, seeds).backward()

    set_seed(0)
    model_mfg = factory()
    logits_mfg = model_mfg(pipeline, Tensor(pipeline.gather_inputs(features)))
    model_mfg.zero_grad()
    _loss_over(logits_mfg, labels, seeds).backward()

    grad_diffs = [np.abs(a.grad - b.grad).max()
                  for a, b in zip(model_full.parameters(), model_mfg.parameters())]
    return logits_full.data[seeds], logits_mfg.data, grad_diffs


class TestPipelineStructure:
    def test_blocks_chain_and_outputs_are_seeds(self, mfg_setup):
        graph, _, _, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=3)
        assert pipeline.num_layers == 3
        np.testing.assert_array_equal(pipeline.output_nodes, seeds)
        for left, right in zip(pipeline.blocks, pipeline.blocks[1:]):
            np.testing.assert_array_equal(left.dst_nodes, right.src_nodes)
        for block in pipeline.blocks:
            # dst ⊆ src (cumulative masks) and the gather map agrees.
            np.testing.assert_array_equal(block.src_nodes[block.dst_in_src],
                                          block.dst_nodes)

    def test_block_keeps_complete_in_neighbourhood(self, mfg_setup):
        graph, _, _, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=2)
        block = pipeline.blocks[-1]
        full_in_degrees = graph.in_degrees()
        np.testing.assert_array_equal(block.in_degrees(),
                                      full_in_degrees[block.dst_nodes])

    def test_counts_match_masks(self, mfg_setup):
        graph, _, _, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=3)
        from repro.graph import required_node_counts

        assert pipeline.required_node_counts() == required_node_counts(
            graph, seeds, num_layers=3
        )

    def test_layer_block_bounds_checked(self, mfg_setup):
        graph, _, _, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=2)
        with pytest.raises(IndexError):
            pipeline.layer_block(2)

    def test_model_layer_mismatch_raises(self, mfg_setup):
        graph, features, _, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=2)
        model = GraphSageNet(12, 8, 4, num_layers=3, dropout=0.0,
                             use_batch_norm=False)
        with pytest.raises(ValueError, match="conv layers"):
            model(pipeline, Tensor(pipeline.gather_inputs(features)))


class TestSingleMachineParity:
    @pytest.mark.parametrize("aggregator", ["mean", "sum", "max"])
    def test_sage_bit_identical_logits_and_matching_grads(self, mfg_setup, aggregator):
        graph, features, labels, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=3)
        def factory():
            return GraphSageNet(12, 16, 4, dropout=0.0, use_batch_norm=False,
                                aggregator=aggregator)
        full, mfg, grad_diffs = _full_vs_mfg(factory, graph, pipeline, features, labels)
        np.testing.assert_array_equal(full, mfg)
        assert max(grad_diffs) < 1e-4

    @pytest.mark.parametrize("fused", [False, True])
    def test_gat_bit_identical_logits_and_matching_grads(self, mfg_setup, fused):
        graph, features, labels, seeds = mfg_setup
        pipeline = build_mfg_pipeline(graph, seeds, num_layers=3)
        def factory():
            return GATNet(12, 8, 4, num_heads=2, dropout=0.0,
                          use_batch_norm=False, fused=fused)
        full, mfg, grad_diffs = _full_vs_mfg(factory, graph, pipeline, features, labels)
        np.testing.assert_array_equal(full, mfg)
        assert max(grad_diffs) < 1e-4

    def test_sage_parity_on_naive_kernels(self, mfg_setup):
        graph, features, labels, seeds = mfg_setup
        with plans_disabled():
            pipeline = build_mfg_pipeline(graph, seeds, num_layers=2)
            def factory():
                return GraphSageNet(12, 16, 4, num_layers=2, dropout=0.0,
                                    use_batch_norm=False)
            full, mfg, grad_diffs = _full_vs_mfg(factory, graph, pipeline,
                                                 features, labels)
        np.testing.assert_allclose(full, mfg, rtol=1e-5, atol=1e-6)
        assert max(grad_diffs) < 1e-4

    def test_rgcn_bit_identical_logits(self, rng):
        num_nodes = 300
        relations = {}
        for name in ("cites", "writes"):
            edges = rng.integers(0, num_nodes, (2, 1200))
            relations[name] = (edges[0].astype(np.int64), edges[1].astype(np.int64))
        hgraph = HeteroGraph(num_nodes, relations)
        features = rng.standard_normal((num_nodes, 10)).astype(np.float32)
        labels = rng.integers(0, 3, num_nodes)
        seeds = np.sort(rng.choice(num_nodes, 12, replace=False))
        pipeline = build_hetero_mfg_pipeline(hgraph, seeds, num_layers=2)
        np.testing.assert_array_equal(pipeline.output_nodes, seeds)

        def factory():
            return RGCNNet(10, 12, 3, hgraph.relation_names, num_layers=2,
                           dropout=0.0, use_batch_norm=False)
        full, mfg, grad_diffs = _full_vs_mfg(factory, hgraph, pipeline,
                                             features, labels)
        np.testing.assert_array_equal(full, mfg)
        assert max(grad_diffs) < 1e-4

    def test_hetero_masks_union_all_relations(self):
        relations = {
            "a": (np.array([0]), np.array([1])),
            "b": (np.array([2]), np.array([1])),
        }
        hgraph = HeteroGraph(3, relations)
        masks = hetero_message_flow_masks(hgraph, [1], num_layers=1)
        np.testing.assert_array_equal(masks[0], [True, True, True])
        np.testing.assert_array_equal(masks[1], [False, True, False])


class TestTrainerIntegration:
    def test_full_batch_trainer_with_mfg_seeds(self, small_dataset):
        seeds = small_dataset.train_indices()
        config = dict(num_epochs=3, lr=0.05, eval_every=0, seed=0)
        model_kwargs = dict(dropout=0.0, use_batch_norm=False)

        set_seed(0)
        baseline = FullBatchTrainer(
            GraphSageNet(small_dataset.feature_dim, 16, small_dataset.num_classes,
                         **model_kwargs),
            small_dataset, TrainingConfig(**config),
        ).train()

        set_seed(0)
        restricted = FullBatchTrainer(
            GraphSageNet(small_dataset.feature_dim, 16, small_dataset.num_classes,
                         **model_kwargs),
            small_dataset, TrainingConfig(mfg_seeds=seeds, **config),
        ).train()

        # Same loss trajectory (losses are means over the same seed set) and
        # the full-graph evaluation still reports every split.
        np.testing.assert_allclose(restricted.losses(), baseline.losses(),
                                   rtol=1e-4, atol=1e-6)
        assert set(restricted.final_accuracies) == {"train", "val", "test"}

    def test_mfg_seeds_requires_num_layers(self, small_dataset):
        from repro.nn.sage import SageConv

        with pytest.raises(ValueError, match="num_layers"):
            FullBatchTrainer(
                SageConv(small_dataset.feature_dim, small_dataset.num_classes),
                small_dataset,
                TrainingConfig(mfg_seeds=small_dataset.train_indices()),
            )

    @pytest.mark.slow
    def test_distributed_trainer_with_mfg_seeds(self, small_dataset):
        config = TrainingConfig(num_epochs=2, lr=0.05, eval_every=0, seed=0,
                                mfg_seeds=small_dataset.train_indices())
        trainer = DistributedTrainer(
            small_dataset,
            lambda dim: GraphSageNet(dim, 16, small_dataset.num_classes,
                                     dropout=0.0, use_batch_norm=False),
            num_workers=2,
            config=config,
        )
        result = trainer.run()
        assert len(result.training.records) == 2
        assert np.isfinite(result.training.final_test_accuracy)


# --------------------------------------------------------------------------- #
# distributed (2-worker SAR) parity
# --------------------------------------------------------------------------- #
def _make_dist_model(model_name):
    if model_name == "sage":
        return GraphSageNet(12, 16, 4, dropout=0.0, use_batch_norm=False)
    return GATNet(12, 8, 4, num_heads=2, dropout=0.0, use_batch_norm=False)


def _dist_worker(rank, comm, shard, *, model_name, weights, masks, features,
                 labels, seeds, use_mfg):
    # Worker threads share the global RNG, so replica parameters are shipped
    # from the parent instead of re-drawn per worker.
    model = _make_dist_model(model_name)
    for param, value in zip(model.parameters(), weights):
        param.data[...] = value
    dist_graph = DistributedGraph(shard, comm, SARConfig("sar"))
    if use_mfg:
        dist_graph.enable_mfg(masks)
    dist_graph.begin_step()
    logits = model(dist_graph, Tensor(features[shard.global_node_ids]))
    local_seed = np.isin(shard.global_node_ids, seeds)
    if local_seed.any():
        loss = _loss_over(logits[local_seed],
                          labels[shard.global_node_ids][local_seed])
    else:
        loss = logits.sum() * 0.0
    model.zero_grad()
    loss.backward()
    from repro.core.grad_sync import sync_gradients

    sync_gradients(model.parameters(), comm, scale=1.0)
    halo_bytes = comm.stats.received_by_tag.get("forward_halo", 0)
    return logits.data, [p.grad.copy() for p in model.parameters()], halo_bytes


class TestDistributedSARParity:
    @pytest.mark.parametrize("model_name", ["sage", "gat"])
    def test_mfg_matches_full_and_shrinks_halo(self, mfg_setup, model_name):
        graph, features, labels, seeds = mfg_setup
        masks = message_flow_masks(graph, seeds, num_layers=3)
        book = PartitionBook(partition_graph(graph, 2, seed=0), 2)
        shards = create_shards(graph, book)
        set_seed(0)
        weights = [p.data.copy() for p in _make_dist_model(model_name).parameters()]
        kwargs = dict(model_name=model_name, weights=weights, masks=masks,
                      features=features, labels=labels, seeds=seeds)

        full = run_distributed(_dist_worker, 2, worker_args=shards,
                               use_mfg=False, **kwargs)
        mfg = run_distributed(_dist_worker, 2, worker_args=shards,
                              use_mfg=True, **kwargs)

        logits_full = book.scatter_to_global([r[0] for r in full.results])
        logits_mfg = book.scatter_to_global([r[0] for r in mfg.results])
        np.testing.assert_array_equal(logits_full[seeds], logits_mfg[seeds])
        for grad_full, grad_mfg in zip(full.results[0][1], mfg.results[0][1]):
            np.testing.assert_allclose(grad_full, grad_mfg, rtol=1e-5, atol=1e-6)
        # The restriction must fetch strictly fewer halo rows on every worker.
        for (_, _, full_bytes), (_, _, mfg_bytes) in zip(full.results, mfg.results):
            assert mfg_bytes < full_bytes

    def test_restrict_block_validates_mask_shape(self, mfg_setup):
        graph, _, _, _ = mfg_setup
        book = PartitionBook(partition_graph(graph, 2, seed=0), 2)
        shards = create_shards(graph, book)
        with pytest.raises(ValueError, match="dst_mask"):
            restrict_block_to_dst(shards[0].blocks[0], np.ones(3, dtype=bool))

    def test_restricted_block_preserves_edge_subset(self, mfg_setup):
        graph, _, _, seeds = mfg_setup
        book = PartitionBook(partition_graph(graph, 2, seed=0), 2)
        shards = create_shards(graph, book)
        block = shards[0].blocks[1]
        dst_mask = np.zeros(block.num_dst, dtype=bool)
        dst_mask[block.dst_local[: block.num_edges // 2]] = True
        restricted = restrict_block_to_dst(block, dst_mask)
        assert restricted.num_edges == int(dst_mask[block.dst_local].sum())
        # Restricted sources are a subset of the original required rows.
        assert np.isin(restricted.required_src_local,
                       block.required_src_local).all()
        # Edge endpoints survive unchanged.
        original_pairs = set(zip(
            block.required_src_local[block.src_index].tolist(),
            block.dst_local.tolist(),
        ))
        restricted_pairs = set(zip(
            restricted.required_src_local[restricted.src_index].tolist(),
            restricted.dst_local.tolist(),
        ))
        assert restricted_pairs <= original_pairs

    def test_mfg_layer_overrun_raises(self, mfg_setup):
        graph, features, _, seeds = mfg_setup
        masks = message_flow_masks(graph, seeds, num_layers=1)
        book = PartitionBook(partition_graph(graph, 2, seed=0), 2)
        shards = create_shards(graph, book)

        def worker(rank, comm, shard):
            dist_graph = DistributedGraph(shard, comm, SARConfig("sar"))
            dist_graph.enable_mfg(masks)
            dist_graph.begin_step()
            z = Tensor(features[shard.global_node_ids])
            dist_graph.aggregate_neighbors(z, op="sum")
            try:
                dist_graph.aggregate_neighbors(z, op="sum")
            except RuntimeError as exc:
                return "raised" if "MFG restriction covers" in str(exc) else repr(exc)
            return "no error"

        result = run_distributed(worker, 2, worker_args=shards)
        assert result.results == ["raised", "raised"]
