"""Layer-wise full-neighbourhood inference: parity, memory discipline, trainers.

The subsystem contract under test (``repro/sample/inference.py``):

* single-machine layer-wise inference produces logits **bit-identical** to
  the full-graph forward pass in ``eval()`` mode, for every conv layer type
  and any batch size;
* the engine reuses the loader's bounded-residency prefetch and the
  structural plan cache (no per-batch sparsity re-derivation after the first
  layer sweep);
* ``FullBatchTrainer.evaluate(inference="layerwise")`` is a drop-in for the
  full pass, including after neighbour-sampled training;
* the distributed variant matches single-machine inference to 1e-6 and
  leaves any installed restriction (MFG / sampled) untouched.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.core.config import SARConfig
from repro.core.dist_graph import DistributedGraph
from repro.datasets import make_hetero_sbm_dataset, make_sbm_dataset
from repro.distributed.cluster import run_distributed
from repro.graph.mfg import message_flow_masks
from repro.nn.models import GATNet, GraphSageNet, RGCNNet
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.sample import (
    LayerWiseInference,
    MiniBatchDataLoader,
    NeighborSampler,
    NeighborSamplingConfig,
    distributed_layerwise_logits,
    layerwise_logits,
)
from repro.tensor import Tensor, no_grad
from repro.tensor import edge_plan as edge_plan_mod
from repro.training.trainer import FullBatchTrainer, TrainingConfig
from repro.utils.lru import LRUDict
from repro.utils.seed import set_seed


def _full_logits(model, graph, features) -> np.ndarray:
    model.eval()
    with no_grad():
        out = model(graph, Tensor(features)).data
    model.train()
    return out


@pytest.fixture
def dataset():
    return make_sbm_dataset(
        name="inference-sbm",
        num_nodes=220,
        num_classes=4,
        feature_dim=12,
        p_in=0.12,
        p_out=0.015,
    )


# --------------------------------------------------------------------------- #
# single-machine bit parity
# --------------------------------------------------------------------------- #
MODEL_FACTORIES = {
    "sage_mean": lambda d: GraphSageNet(
        d.feature_dim, 16, d.num_classes, num_layers=3, dropout=0.5, use_batch_norm=True
    ),
    "sage_max": lambda d: GraphSageNet(
        d.feature_dim, 16, d.num_classes, num_layers=2, dropout=0.0,
        use_batch_norm=False, aggregator="max",
    ),
    "gat": lambda d: GATNet(
        d.feature_dim, 8, d.num_classes, num_layers=2, num_heads=2,
        dropout=0.5, use_batch_norm=True,
    ),
    "gat_fused": lambda d: GATNet(
        d.feature_dim, 8, d.num_classes, num_layers=2, num_heads=2,
        dropout=0.0, use_batch_norm=False, fused=True,
    ),
}


@pytest.mark.parametrize("kind", sorted(MODEL_FACTORIES))
def test_layerwise_matches_full_forward_bitwise(dataset, kind):
    set_seed(0)
    model = MODEL_FACTORIES[kind](dataset)
    reference = _full_logits(model, dataset.graph, dataset.features)
    got = layerwise_logits(model, dataset.graph, dataset.features, batch_size=37)
    np.testing.assert_array_equal(got, reference)


@pytest.mark.parametrize("batch_size", [1, 23, 220, 1000])
def test_layerwise_any_batch_size(dataset, batch_size):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    reference = _full_logits(model, dataset.graph, dataset.features)
    got = layerwise_logits(
        model, dataset.graph, dataset.features, batch_size=batch_size
    )
    np.testing.assert_array_equal(got, reference)


def test_layerwise_hetero_rgcn():
    ds = make_hetero_sbm_dataset(
        name="inference-hetero",
        num_nodes=150,
        num_classes=3,
        feature_dim=10,
        relation_specs={
            "cites": {"p_in": 0.10, "p_out": 0.01},
            "topic": {"p_in": 0.05, "p_out": 0.02},
        },
    )
    graph = ds.hetero_graph
    set_seed(0)
    model = RGCNNet(
        ds.feature_dim, 12, ds.num_classes, graph.relation_names,
        num_layers=2, dropout=0.0, use_batch_norm=True,
    )
    reference = _full_logits(model, graph, ds.features)
    got = layerwise_logits(model, graph, ds.features, batch_size=41)
    np.testing.assert_array_equal(got, reference)


def test_layerwise_restores_training_mode_and_validates(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    engine = LayerWiseInference(model, dataset.graph, batch_size=64)
    assert model.training
    engine.run(dataset.features)
    assert model.training  # eval() was temporary
    with pytest.raises(ValueError, match="rows"):
        engine.run(dataset.features[:-1])

    class NoHooks:
        pass

    with pytest.raises(ValueError, match="forward_layer"):
        LayerWiseInference(NoHooks(), dataset.graph)


def test_forward_layer_composes_to_forward(dataset):
    """The per-layer hook, chained, reproduces the full forward bit-for-bit."""
    set_seed(0)
    model = MODEL_FACTORIES["gat"](dataset)
    model.eval()
    with no_grad():
        reference = model(dataset.graph, Tensor(dataset.features)).data
        x = Tensor(dataset.features)
        for layer in range(model.num_layers):
            x = model.forward_layer(layer, dataset.graph, x)
    np.testing.assert_array_equal(x.data, reference)
    with pytest.raises(IndexError):
        model.forward_layer(model.num_layers, dataset.graph, x)


# --------------------------------------------------------------------------- #
# plan reuse + residency discipline
# --------------------------------------------------------------------------- #
def test_layerwise_reuses_plans_across_layers_and_runs(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    engine = LayerWiseInference(model, dataset.graph, batch_size=50)
    edge_plan_mod.shared_plan_cache().clear()
    engine.run(dataset.features)
    built = edge_plan_mod.build_counter
    # Batches are identical across layers and runs (no shuffle, fanout=-1),
    # so the structural cache must satisfy every later sweep.
    engine.run(dataset.features)
    engine.run(dataset.features)
    assert edge_plan_mod.build_counter == built


@pytest.mark.parametrize("max_resident", [1, 2, 4])
def test_loader_residency_bound_is_configurable(dataset, max_resident):
    sampler = NeighborSampler(dataset.graph, [-1], seed=0)
    loader = MiniBatchDataLoader(
        sampler,
        np.arange(dataset.graph.num_nodes),
        batch_size=32,
        shuffle=False,
        num_workers=2,
        max_resident=max_resident,
    )
    for _ in loader.iter_epoch(0):
        pass
    assert 1 <= loader.peak_resident_batches <= max_resident


def test_loader_rejects_nonpositive_max_resident(dataset):
    sampler = NeighborSampler(dataset.graph, [-1], seed=0)
    with pytest.raises(ValueError, match="max_resident"):
        MiniBatchDataLoader(
            sampler, np.arange(10), batch_size=4, max_resident=0
        )


def test_engine_exposes_loader_bound(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    engine = LayerWiseInference(
        model, dataset.graph, batch_size=32, num_workers=2, max_resident=2
    )
    engine.run(dataset.features)
    assert engine.num_batches == 7  # ceil(220 / 32)
    assert 1 <= engine.peak_resident_batches <= 2


# --------------------------------------------------------------------------- #
# adaptive batch sizing (byte_budget)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["sage_mean", "gat"])
def test_adaptive_byte_budget_parity(dataset, kind):
    set_seed(0)
    model = MODEL_FACTORIES[kind](dataset)
    reference = _full_logits(model, dataset.graph, dataset.features)
    engine = LayerWiseInference(
        model, dataset.graph, batch_size=64, byte_budget=64 * 1024
    )
    got = engine.run(dataset.features)
    np.testing.assert_array_equal(got, reference)
    assert len(engine.layer_batch_sizes) == model.num_layers
    assert all(
        1 <= bs <= dataset.graph.num_nodes for bs in engine.layer_batch_sizes
    )


def test_adaptive_budget_extremes(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_max"](dataset)
    reference = _full_logits(model, dataset.graph, dataset.features)
    # A one-byte budget floors every layer at single-node batches…
    tiny = LayerWiseInference(model, dataset.graph, byte_budget=1)
    np.testing.assert_array_equal(tiny.run(dataset.features), reference)
    assert tiny.layer_batch_sizes == [1] * model.num_layers
    # …and a giant budget ceilings at one whole-graph batch per layer.
    huge = LayerWiseInference(model, dataset.graph, byte_budget=1 << 30)
    np.testing.assert_array_equal(huge.run(dataset.features), reference)
    assert huge.layer_batch_sizes == [dataset.graph.num_nodes] * model.num_layers


def test_adaptive_sizes_track_layer_widths(dataset):
    """Wider layer inputs get smaller batches under the same budget."""
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)  # widths 12 -> 16 -> 16
    engine = LayerWiseInference(model, dataset.graph, byte_budget=32 * 1024)
    engine.run(dataset.features)
    sizes = engine.layer_batch_sizes
    assert sizes[0] > sizes[1]  # layer 0 reads 12-wide rows, layer 1 16-wide
    assert sizes[2] >= sizes[1]  # same input width, narrower (4-class) output


def test_adaptive_rejects_bad_budget(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    with pytest.raises(ValueError, match="byte_budget"):
        LayerWiseInference(model, dataset.graph, byte_budget=0)


def test_layerwise_logits_byte_budget_passthrough(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    reference = _full_logits(model, dataset.graph, dataset.features)
    got = layerwise_logits(
        model, dataset.graph, dataset.features, byte_budget=48 * 1024
    )
    np.testing.assert_array_equal(got, reference)


# --------------------------------------------------------------------------- #
# bounded restriction cache
# --------------------------------------------------------------------------- #
def test_lru_dict_semantics():
    lru = LRUDict(capacity=2)
    lru["a"] = 1
    lru["b"] = 2
    assert lru["a"] == 1  # refreshes recency: "b" is now LRU
    lru["c"] = 3
    assert "b" not in lru
    assert lru.evictions == 1
    assert lru.setdefault("a", 99) == 1
    assert lru.get("missing") is None
    assert sorted(lru) == ["a", "c"]
    assert len(lru) == 2
    del lru["a"]
    assert "a" not in lru
    with pytest.raises(ValueError, match="capacity"):
        LRUDict(0)


# --------------------------------------------------------------------------- #
# trainer integration
# --------------------------------------------------------------------------- #
def test_evaluate_layerwise_is_dropin(dataset):
    set_seed(0)
    model = MODEL_FACTORIES["sage_mean"](dataset)
    trainer = FullBatchTrainer(
        model, dataset, TrainingConfig(num_epochs=2, eval_every=0, seed=0)
    )
    trainer.train()
    accs_full, logits_full = trainer.evaluate(inference="full")
    accs_layer, logits_layer = trainer.evaluate(inference="layerwise", batch_size=48)
    np.testing.assert_array_equal(logits_layer, logits_full)
    assert accs_layer == accs_full
    with pytest.raises(ValueError, match="inference"):
        trainer.evaluate(inference="banana")


@pytest.mark.parametrize("fanouts", [(4, 4), (-1, -1)])
def test_sampled_training_with_layerwise_eval_parity(dataset, fanouts):
    """Sampled training + layer-wise eval == the same run's full-graph eval."""
    set_seed(0)
    model = GraphSageNet(
        dataset.feature_dim, 16, dataset.num_classes, num_layers=2,
        dropout=0.0, use_batch_norm=True,
    )
    config = TrainingConfig(
        num_epochs=2,
        eval_every=0,
        seed=0,
        sampler=NeighborSamplingConfig(fanouts=fanouts, batch_size=64),
        eval_inference="layerwise",
        eval_batch_size=48,
    )
    trainer = FullBatchTrainer(model, dataset, config)
    result = trainer.train()  # final evaluation runs layer-wise
    _, logits_layer = trainer.evaluate()  # config default: layerwise
    _, logits_full = trainer.evaluate(inference="full")
    np.testing.assert_array_equal(logits_layer, logits_full)
    assert np.isfinite(result.final_test_accuracy)


# --------------------------------------------------------------------------- #
# distributed layer-wise inference
# --------------------------------------------------------------------------- #
def _fixed_model(dataset, kind: str):
    set_seed(0)
    if kind == "sage":
        model = GraphSageNet(
            dataset.feature_dim, 16, dataset.num_classes, num_layers=2,
            dropout=0.0, use_batch_norm=False,
        )
    else:
        model = GATNet(
            dataset.feature_dim, 8, dataset.num_classes, num_layers=2,
            num_heads=2, dropout=0.0, use_batch_norm=False,
        )
    return model


def _weights_of(model):
    return [p.data.copy() for p in model.parameters()]


def _install_weights(model, weights):
    for param, value in zip(model.parameters(), weights):
        param.data[...] = value
    return model


@pytest.mark.parametrize("kind", ["sage", "gat"])
@pytest.mark.parametrize("world_size", [2, 3])
def test_distributed_layerwise_matches_single_machine(dataset, kind, world_size):
    dataset.attach_to_graph()
    template = _fixed_model(dataset, kind)
    weights = _weights_of(template)
    reference = _full_logits(
        _install_weights(_fixed_model(dataset, kind), weights),
        dataset.graph, dataset.features,
    )
    book = PartitionBook(partition_graph(dataset.graph, world_size, seed=0), world_size)
    shards = create_shards(dataset.graph, book)

    def worker(rank, comm, shard):
        dist_graph = DistributedGraph(shard, comm, SARConfig(mode="sar"))
        model = _install_weights(_fixed_model(dataset, kind), weights)
        model.set_comm(comm)
        local = distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=60
        )
        return local, dist_graph.global_node_ids

    result = run_distributed(worker, world_size, worker_args=shards)
    assembled = np.zeros_like(reference)
    for local, ids in result.results:
        assembled[ids] = local
    np.testing.assert_allclose(assembled, reference, atol=1e-6)


def test_distributed_layerwise_restores_installed_restriction(dataset):
    """A persistent MFG restriction survives an inference pass untouched."""
    dataset.attach_to_graph()
    template = _fixed_model(dataset, "sage")
    weights = _weights_of(template)
    seeds = dataset.train_indices()[:24]
    masks = message_flow_masks(dataset.graph, seeds, 2)
    book = PartitionBook(partition_graph(dataset.graph, 2, seed=0), 2)
    shards = create_shards(dataset.graph, book)

    def worker(rank, comm, shard):
        dist_graph = DistributedGraph(shard, comm, SARConfig(mode="sar"))
        model = _install_weights(_fixed_model(dataset, "sage"), weights)
        model.set_comm(comm)
        dist_graph.enable_mfg(masks)
        halo_before = [layer[0].halo_size for layer in dist_graph._mfg_layers]
        local = distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=60
        )
        assert dist_graph.mfg_active
        halo_after = [layer[0].halo_size for layer in dist_graph._mfg_layers]
        assert halo_before == halo_after
        # The restored restriction still executes a full training-style step.
        dist_graph.begin_step()
        logits = model(dist_graph, Tensor(shard.node_data["feat"]))
        return local, logits.data.shape

    result = run_distributed(worker, 2, worker_args=shards)
    assert all(shape[1] == dataset.num_classes for _, shape in result.results)


def test_distributed_layerwise_restriction_cache_reused(dataset):
    """Repeat evaluations reinstall cached restriction grids: zero additional
    setup-tagged routing traffic, identical logits."""
    dataset.attach_to_graph()
    template = _fixed_model(dataset, "sage")
    weights = _weights_of(template)
    book = PartitionBook(partition_graph(dataset.graph, 2, seed=0), 2)
    shards = create_shards(dataset.graph, book)
    batch_size = 60
    num_batches = -(-dataset.graph.num_nodes // batch_size)

    def worker(rank, comm, shard):
        dist_graph = DistributedGraph(shard, comm, SARConfig(mode="sar"))
        model = _install_weights(_fixed_model(dataset, "sage"), weights)
        model.set_comm(comm)
        first = distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=batch_size
        )
        setup_after_first = comm.stats.received_by_tag.get("setup", 0)
        second = distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=batch_size
        )
        setup_after_second = comm.stats.received_by_tag.get("setup", 0)
        np.testing.assert_array_equal(first, second)
        cached = dist_graph.restriction_cache[("layerwise", batch_size)]
        return setup_after_second - setup_after_first, len(cached)

    result = run_distributed(worker, 2, worker_args=shards)
    for extra_setup_bytes, cached_grids in result.results:
        assert extra_setup_bytes == 0
        assert cached_grids == num_batches


def test_restriction_cache_lru_eviction_frees_grids(dataset):
    """Beyond capacity, the bounded restriction cache drops the oldest
    prepared grids — and dropping them actually releases the memory (no
    stray strong references keep the shard views alive)."""
    dataset.attach_to_graph()
    template = _fixed_model(dataset, "sage")
    weights = _weights_of(template)
    book = PartitionBook(partition_graph(dataset.graph, 2, seed=0), 2)
    shards = create_shards(dataset.graph, book)

    def worker(rank, comm, shard):
        dist_graph = DistributedGraph(shard, comm, SARConfig(mode="sar"))
        assert isinstance(dist_graph.restriction_cache, LRUDict)
        # Shrink to one entry so the second batch size must evict the first.
        dist_graph.restriction_cache = LRUDict(capacity=1)
        model = _install_weights(_fixed_model(dataset, "sage"), weights)
        model.set_comm(comm)
        distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=60
        )
        # cache value: per-batch list of per-layer (shard view, halo) pairs.
        first_view = weakref.ref(
            dist_graph.restriction_cache[("layerwise", 60)][0][0][0]
        )
        distributed_layerwise_logits(
            dist_graph, model, shard.node_data["feat"], batch_size=80
        )
        assert ("layerwise", 60) not in dist_graph.restriction_cache
        assert ("layerwise", 80) in dist_graph.restriction_cache
        assert dist_graph.restriction_cache.evictions == 1
        gc.collect()
        return first_view() is None

    result = run_distributed(worker, 2, worker_args=shards)
    assert all(result.results)


def test_distributed_layerwise_rejects_wrong_inputs(dataset):
    dataset.attach_to_graph()
    book = PartitionBook(partition_graph(dataset.graph, 2, seed=0), 2)
    shards = create_shards(dataset.graph, book)
    template = _fixed_model(dataset, "sage")
    weights = _weights_of(template)

    def worker(rank, comm, shard):
        dist_graph = DistributedGraph(shard, comm, SARConfig(mode="sar"))
        model = _install_weights(_fixed_model(dataset, "sage"), weights)
        with pytest.raises(ValueError, match="rows"):
            distributed_layerwise_logits(
                dist_graph, model, np.zeros((3, dataset.feature_dim), dtype=np.float32)
            )
        return True

    result = run_distributed(worker, 2, worker_args=shards)
    assert all(result.results)
