"""Tests for training components: metrics, label augmentation, Correct & Smooth."""

import numpy as np
import pytest

from repro.distributed import run_distributed
from repro.training import (
    CorrectAndSmooth,
    LabelAugmenter,
    NoLabelAugmenter,
    distributed_masked_accuracy,
    distributed_mean_loss,
    evaluation_report,
    masked_accuracy,
    masked_correct_counts,
)


class TestMetrics:
    def test_masked_accuracy_basic(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0], [2.0, 0.0], [0.0, 2.0]])
        labels = np.array([0, 1, 1, 1])
        mask = np.array([True, True, True, False])
        assert np.isclose(masked_accuracy(logits, labels, mask), 2 / 3)

    def test_masked_accuracy_empty_mask_is_nan(self):
        assert np.isnan(masked_accuracy(np.zeros((3, 2)), np.zeros(3, dtype=int),
                                        np.zeros(3, dtype=bool)))

    def test_correct_counts(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        correct, total = masked_correct_counts(logits, np.array([0, 0]),
                                               np.array([True, True]))
        assert (correct, total) == (1, 2)

    def test_distributed_accuracy_matches_global(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1, 1])
        mask = np.ones(4, dtype=bool)
        expected = masked_accuracy(logits, labels, mask)

        def worker(rank, comm):
            sl = slice(rank * 2, rank * 2 + 2)
            return distributed_masked_accuracy(logits[sl], labels[sl], mask[sl], comm)

        result = run_distributed(worker, 2)
        assert all(np.isclose(r, expected) for r in result.results)

    def test_distributed_mean_loss(self):
        def worker(rank, comm):
            return distributed_mean_loss(local_loss_sum=float(rank + 1), local_count=1, comm=comm)

        assert run_distributed(worker, 2).results == [1.5, 1.5]

    def test_evaluation_report_keys(self):
        logits = np.eye(3)
        labels = np.arange(3)
        masks = {"train": np.array([True, False, False]),
                 "val": np.array([False, True, False])}
        report = evaluation_report(logits, labels, masks)
        assert set(report) == {"train", "val"}
        assert report["train"] == 1.0


class TestLabelAugmentation:
    def test_feature_width_grows_by_num_classes(self, rng):
        aug = LabelAugmenter(num_classes=5, augment_fraction=0.5)
        features = rng.standard_normal((20, 3)).astype(np.float32)
        labels = rng.integers(0, 5, size=20)
        train = np.ones(20, dtype=bool)
        out, _ = aug.training_batch(features, labels, train, rng)
        assert out.shape == (20, 8)
        assert aug.augmented_dim(3) == 8

    def test_revealed_and_predicted_are_disjoint(self, rng):
        aug = LabelAugmenter(num_classes=4, augment_fraction=0.5)
        features = np.zeros((50, 2), dtype=np.float32)
        labels = rng.integers(0, 4, size=50)
        train = rng.random(50) < 0.6
        out, predict_mask = aug.training_batch(features, labels, train, rng)
        revealed = out[:, 2:].sum(axis=1) > 0
        assert not np.any(revealed & predict_mask)
        assert np.all(predict_mask <= train)

    def test_onehot_matches_label(self, rng):
        aug = LabelAugmenter(num_classes=3, augment_fraction=1.0)
        features = np.zeros((10, 1), dtype=np.float32)
        labels = rng.integers(0, 3, size=10)
        train = np.ones(10, dtype=bool)
        out = aug.inference_batch(features, labels, train)
        np.testing.assert_array_equal(out[:, 1:].argmax(axis=1), labels)

    def test_degenerate_full_reveal_keeps_one_prediction_node(self, rng):
        aug = LabelAugmenter(num_classes=2, augment_fraction=1.0)
        features = np.zeros((5, 1), dtype=np.float32)
        labels = np.zeros(5, dtype=np.int64)
        train = np.ones(5, dtype=bool)
        _, predict_mask = aug.training_batch(features, labels, train, rng)
        assert predict_mask.sum() >= 1

    def test_non_training_nodes_never_revealed(self, rng):
        aug = LabelAugmenter(num_classes=3, augment_fraction=1.0)
        features = np.zeros((10, 1), dtype=np.float32)
        labels = rng.integers(0, 3, size=10)
        train = np.zeros(10, dtype=bool)
        train[:3] = True
        out = aug.inference_batch(features, labels, train)
        assert np.all(out[3:, 1:] == 0)

    def test_no_label_augmenter_is_identity(self, rng):
        aug = NoLabelAugmenter(num_classes=7)
        features = rng.standard_normal((4, 3)).astype(np.float32)
        labels = np.zeros(4, dtype=np.int64)
        train = np.ones(4, dtype=bool)
        out, mask = aug.training_batch(features, labels, train)
        np.testing.assert_array_equal(out, features)
        np.testing.assert_array_equal(mask, train)
        assert aug.extra_features == 0

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            LabelAugmenter(3, augment_fraction=1.5)


class TestCorrectAndSmooth:
    def test_improves_noisy_predictions_on_homophilous_graph(self, small_dataset, rng):
        dataset = small_dataset
        num_classes = dataset.num_classes
        # Noisy soft predictions: correct class gets a small margin, then noise.
        logits = np.eye(num_classes)[dataset.labels] * 1.0
        logits += rng.standard_normal(logits.shape) * 1.2
        base_acc = masked_accuracy(logits, dataset.labels, dataset.test_mask)
        cs = CorrectAndSmooth(num_correct_iters=10, num_smooth_iters=10)
        refined = cs(dataset.graph, logits, dataset.labels, dataset.train_mask)
        refined_acc = masked_accuracy(refined, dataset.labels, dataset.test_mask)
        assert refined_acc > base_acc

    def test_training_rows_clamped_toward_ground_truth(self, small_dataset):
        dataset = small_dataset
        logits = np.zeros((dataset.num_nodes, dataset.num_classes), dtype=np.float32)
        cs = CorrectAndSmooth(num_correct_iters=3, num_smooth_iters=3)
        refined = cs(dataset.graph, logits, dataset.labels, dataset.train_mask)
        train_acc = masked_accuracy(refined, dataset.labels, dataset.train_mask)
        assert train_acc > 0.8

    def test_output_shape_preserved(self, small_dataset):
        dataset = small_dataset
        logits = np.zeros((dataset.num_nodes, dataset.num_classes), dtype=np.float32)
        refined = CorrectAndSmooth(num_correct_iters=2, num_smooth_iters=2)(
            dataset.graph, logits, dataset.labels, dataset.train_mask
        )
        assert refined.shape == logits.shape
        assert np.all(np.isfinite(refined))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CorrectAndSmooth(num_correct_iters=0)
        with pytest.raises(ValueError):
            CorrectAndSmooth(correct_alpha=1.5)

    def test_distributed_matches_single_machine(self, small_dataset):
        """C&S through DistributedGraph.propagate equals the single-machine result."""
        from repro.core import DistributedGraph, SAR
        from repro.partition import PartitionBook, create_shards, partition_graph

        dataset = small_dataset
        rng = np.random.default_rng(3)
        logits = np.eye(dataset.num_classes)[dataset.labels] + \
            rng.standard_normal((dataset.num_nodes, dataset.num_classes)) * 0.8
        logits = logits.astype(np.float32)
        cs = CorrectAndSmooth(num_correct_iters=5, num_smooth_iters=5)
        expected = cs(dataset.graph, logits, dataset.labels, dataset.train_mask)

        dataset.attach_to_graph()
        assignment = partition_graph(dataset.graph, 3, seed=0)
        book = PartitionBook(assignment, 3)
        shards = create_shards(dataset.graph, book)

        def worker(rank, comm, shard):
            dg = DistributedGraph(shard, comm, SAR)
            dg.begin_step()
            ids = shard.global_node_ids
            refined = cs(dg, logits[ids], dataset.labels[ids], dataset.train_mask[ids])
            return refined

        result = run_distributed(worker, 3, worker_args=shards)
        stitched = book.scatter_to_global(result.results)
        np.testing.assert_allclose(stitched, expected, rtol=1e-3, atol=1e-3)
