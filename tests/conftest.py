"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.datasets import make_sbm_dataset
from repro.graph import Graph, stochastic_block_model
from repro.utils.seed import set_seed

# The autouse seed fixture below is function-scoped; it only resets the global
# seed, which is safe to share across Hypothesis examples.
hypothesis_settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
)
hypothesis_settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _reset_seed():
    """Make every test deterministic and independent of execution order."""
    set_seed(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def tiny_graph() -> Graph:
    """A fixed 6-node bidirected graph with self-loops (hand-checkable)."""
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 3), (2, 5)]
    src, dst = zip(*edges)
    graph = Graph(6, np.array(src), np.array(dst)).to_bidirected().add_self_loops()
    return graph


@pytest.fixture
def sbm_graph() -> Graph:
    """A small homophilous SBM graph with self-loops (120 nodes, 3 blocks)."""
    graph, _ = stochastic_block_model([40, 40, 40], p_in=0.15, p_out=0.02, seed=3)
    return graph.add_self_loops()


@pytest.fixture
def small_dataset():
    """A small but learnable node-classification dataset (4 classes)."""
    return make_sbm_dataset(
        name="unit-test-sbm",
        num_nodes=240,
        num_classes=4,
        feature_dim=12,
        p_in=0.12,
        p_out=0.01,
        noise=1.5,
        train_frac=0.5,
        val_frac=0.2,
        test_frac=0.3,
        seed=11,
    )
