"""Tests for the autograd engine mechanics (graph recording, backward, no_grad)."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    no_grad,
    enable_grad,
    grad_enabled,
    zeros,
    ones,
    zeros_like,
    ones_like,
)
from repro.tensor import functional as F


class TestGraphRecording:
    def test_result_requires_grad_propagates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_disables_recording(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._ctx is None

    def test_enable_grad_inside_no_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not grad_enabled()
            with enable_grad():
                out = a * 2.0
        assert out.requires_grad

    def test_detach_breaks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * 2.0).detach()
        assert not out.requires_grad
        assert out.is_leaf()

    def test_leaf_flag(self):
        a = Tensor(np.ones(3), requires_grad=True)
        assert a.is_leaf()
        assert not (a * 1.0).is_leaf()


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = (x * x * 3.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph_accumulates(self):
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_same_tensor_used_twice_in_one_op(self):
        x = Tensor(np.array([4.0], dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        y = x * 3.0
        y.backward(np.full((2, 2), 2.0, dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.full((2, 2), 6.0))

    def test_backward_on_non_scalar_without_gradient_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_without_requires_grad_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_free_graph_clears_contexts(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        loss = y.sum()
        loss.backward()
        assert loss._ctx is None
        assert y._ctx is None

    def test_retain_graph_allows_second_backward(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (x * 2.0).sum()
        loss.backward(free_graph=False)
        loss.backward(free_graph=False)
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_gradients_do_not_flow_into_non_grad_inputs(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=False)
        (a * b).sum().backward()
        assert b.grad is None

    def test_mixed_graph_with_functional_ops(self):
        x = Tensor(np.random.randn(4, 3).astype(np.float32), requires_grad=True)
        w = Tensor(np.random.randn(3, 2).astype(np.float32), requires_grad=True)
        loss = F.cross_entropy(F.relu(x @ w), np.array([0, 1, 0, 1]))
        loss.backward()
        assert x.grad is not None and w.grad is not None
        assert np.all(np.isfinite(x.grad)) and np.all(np.isfinite(w.grad))


class TestTensorBasics:
    def test_float64_input_downcast_to_float32(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_integer_data_preserved(self):
        t = Tensor(np.arange(3))
        assert np.issubdtype(t.dtype, np.integer)

    def test_constructors(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert ones(4).data.sum() == 4
        base = Tensor(np.ones((2, 2)))
        assert zeros_like(base).data.sum() == 0
        assert ones_like(base).data.sum() == 4

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_accumulate_grad_shape_mismatch_raises(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            x.accumulate_grad(np.ones((2, 2), dtype=np.float32))

    def test_repr_contains_shape(self):
        t = Tensor(np.ones((2, 5)), requires_grad=True, name="weights")
        text = repr(t)
        assert "(2, 5)" in text and "weights" in text

    def test_item_and_len(self):
        t = Tensor(np.array([3.5], dtype=np.float32))
        assert np.isclose(t.item(), 3.5)
        assert len(Tensor(np.zeros((7, 2)))) == 7

    def test_copy_is_detached_and_independent(self):
        x = Tensor(np.ones(3), requires_grad=True)
        c = x.copy()
        c.data[0] = 99.0
        assert x.data[0] == 1.0
        assert not c.requires_grad
