"""Tests for Module/Parameter mechanics and the basic layers (Linear, Dropout, BN)."""

import numpy as np
import pytest

from repro import nn
from repro.distributed import run_distributed
from repro.tensor import Tensor, check_gradients
from repro.utils.seed import set_seed


class TestModuleMechanics:
    def test_parameter_registration_order_is_deterministic(self):
        set_seed(0)
        m1 = nn.GraphSageNet(8, 16, 3)
        set_seed(0)
        m2 = nn.GraphSageNet(8, 16, 3)
        names1 = [n for n, _ in m1.named_parameters()]
        names2 = [n for n, _ in m2.named_parameters()]
        assert names1 == names2
        assert len(names1) == len(set(names1))

    def test_parameters_recursive(self):
        layer = nn.Linear(4, 3)
        assert len(layer.parameters()) == 2
        model = nn.Sequential(nn.Linear(4, 3), nn.ReLU(), nn.Linear(3, 2))
        assert len(model.parameters()) == 4

    def test_state_dict_roundtrip(self):
        set_seed(1)
        src = nn.GATNet(6, 4, 3, num_heads=2)
        set_seed(2)
        dst = nn.GATNet(6, 4, 3, num_heads=2)
        dst.load_state_dict(src.state_dict())
        for (name_a, a), (name_b, b) in zip(src.named_parameters(), dst.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_missing_key_raises(self):
        model = nn.Linear(3, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = nn.Linear(3, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = nn.GraphSageNet(4, 8, 2)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = nn.Linear(3, 2)
        x = Tensor(np.ones((4, 3), dtype=np.float32))
        model(x).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_num_parameters(self):
        model = nn.Linear(3, 2)
        assert model.num_parameters() == 3 * 2 + 2

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(layers) == 2
        assert len(layers.parameters()) == 4
        with pytest.raises(RuntimeError):
            layers(Tensor(np.ones((1, 2))))

    def test_sequential_forward(self):
        set_seed(0)
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        out = model(Tensor(np.ones((5, 3), dtype=np.float32)))
        assert out.shape == (5, 2)
        assert model[0].out_features == 4


class TestLinear:
    def test_forward_matches_numpy(self, rng):
        layer = nn.Linear(4, 3)
        x = rng.standard_normal((6, 4)).astype(np.float32)
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data,
                                   rtol=1e-5)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.standard_normal((5, 3)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).mean(), [x] + layer.parameters())

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)


class TestDropoutModule:
    def test_respects_training_flag(self, rng):
        layer = nn.Dropout(0.5)
        x = Tensor(rng.standard_normal((100, 10)).astype(np.float32))
        layer.eval()
        np.testing.assert_array_equal(layer(x).data, x.data)
        layer.train()
        assert (layer(x).data == 0).any()


class TestBatchNorm:
    def test_normalizes_training_batch(self, rng):
        bn = nn.BatchNorm1d(6)
        x = Tensor((3.0 * rng.standard_normal((200, 6)) + 5.0).astype(np.float32))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_in_eval(self, rng):
        bn = nn.BatchNorm1d(4, momentum=0.5)
        x = Tensor((2.0 + rng.standard_normal((100, 4))).astype(np.float32))
        for _ in range(20):
            bn(x)
        bn.eval()
        out = bn(x).data
        # eval-mode output should be close to the train-mode normalization
        assert abs(out.mean()) < 0.5

    def test_gradients(self, rng):
        bn = nn.BatchNorm1d(3)
        x = Tensor(rng.standard_normal((12, 3)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (bn(x) ** 2).mean(), [x, bn.gamma, bn.beta],
                        atol=2e-2, rtol=2e-2)

    def test_feature_dim_mismatch_raises(self, rng):
        bn = nn.BatchNorm1d(3)
        with pytest.raises(ValueError):
            bn(Tensor(rng.standard_normal((5, 4)).astype(np.float32)))

    def test_distributed_matches_single_machine(self, rng):
        """Global statistics across workers must equal single-machine statistics."""
        full = rng.standard_normal((40, 5)).astype(np.float32) * 2.0 + 1.0
        reference = nn.BatchNorm1d(5)
        expected = reference(Tensor(full)).data

        def worker(rank, comm):
            bn = nn.DistributedBatchNorm(5, comm=comm)
            local = full[rank * 20:(rank + 1) * 20]
            out = bn(Tensor(local))
            comm.barrier()
            return out.data

        result = run_distributed(worker, 2)
        stacked = np.concatenate(result.results, axis=0)
        np.testing.assert_allclose(stacked, expected, atol=1e-4)

    def test_distributed_backward_matches_single_machine(self, rng):
        full = rng.standard_normal((30, 4)).astype(np.float32)
        reference = nn.BatchNorm1d(4)
        x_ref = Tensor(full, requires_grad=True)
        (reference(x_ref) ** 2).sum().backward()

        def worker(rank, comm):
            bn = nn.DistributedBatchNorm(4, comm=comm)
            bn.load_state_dict(reference.state_dict())
            x = Tensor(full[rank * 15:(rank + 1) * 15], requires_grad=True)
            (bn(x) ** 2).sum().backward()
            comm.barrier()
            return x.grad, bn.gamma.grad

        result = run_distributed(worker, 2)
        grads = np.concatenate([r[0] for r in result.results], axis=0)
        np.testing.assert_allclose(grads, x_ref.grad, atol=1e-4)
        gamma_grad = result.results[0][1] + result.results[1][1]
        np.testing.assert_allclose(gamma_grad, reference.gamma.grad, atol=1e-3)
