"""Tests for the true multi-process backend (one OS process per worker).

Kept intentionally small (≤3 workers, a tiny graph) — the thread backend is
the workhorse; these tests demonstrate that the SAR machinery only depends on
the abstract Communicator interface and runs unchanged across processes, and
that the parent never hangs or leaks children when a worker fails.
"""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.core import SARConfig
from repro.datasets import make_sbm_dataset
from repro.distributed.comm import STREAM_KEY_PREFIX
from repro.distributed.mp_backend import WorkerFailedError, run_multiprocess
from repro.graph import stochastic_block_model
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.sample import NeighborSamplingConfig, build_sampling_plan
from repro.tensor import Tensor
from repro.training.trainer import FullBatchTrainer, TrainingConfig
from repro.utils.seed import temp_seed


def _collective_worker(rank, comm):
    ws = comm.world_size
    total = comm.allreduce(np.array([rank + 1.0]))
    comm.publish("x", np.full(3, rank, dtype=np.float32))
    fetched = comm.fetch((rank + 1) % ws, "x")
    exchanged = comm.exchange("e", {q: np.array([float(rank)], dtype=np.float32)
                                    for q in range(ws) if q != rank})
    gathered = comm.allgather(np.array([rank], dtype=np.int64))
    comm.barrier()
    return (float(total[0]), float(fetched[0]),
            sorted((k, float(v[0])) for k, v in exchanged.items()),
            [int(g[0]) for g in gathered])


def _stats_worker(rank, comm):
    payload = np.ones(3, dtype=np.float32)
    comm.exchange("s", {q: payload for q in range(comm.world_size) if q != rank})
    return dict(comm.stats.sent_by_tag), dict(comm.stats.received_by_tag)


def _sar_aggregation_worker(rank, comm, shard, z_full=None):
    from repro.core import DistributedGraph

    dist_graph = DistributedGraph(shard, comm, SARConfig("sar"))
    dist_graph.begin_step()
    z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
    out = dist_graph.aggregate_neighbors(z, op="mean")
    (out ** 2).sum().backward()
    return out.data, z.grad


def _stream_keys_survive_clear_worker(rank, comm):
    # A keyed-stream payload published by a background sampler must survive
    # the clear_published that begin_step issues at iteration boundaries,
    # while ordinary publishes are swept as usual.
    ws = comm.world_size
    comm.publish(STREAM_KEY_PREFIX + "probe", np.array([float(rank)], dtype=np.float32))
    comm.publish("swept", np.zeros(1, dtype=np.float32))
    comm.clear_published()
    comm.barrier()
    fetched = comm.fetch((rank + 1) % ws, STREAM_KEY_PREFIX + "probe", tag="sample_frontier")
    comm.barrier()
    comm.release_keyed("probe")
    return float(fetched[0])


def _keyed_allgather_worker(rank, comm):
    rounds = []
    for step in range(3):
        gathered = comm.allgather_keyed(
            f"k/{step}", np.array([rank * 10 + step], dtype=np.int64), tag="sample_frontier"
        )
        rounds.append([int(g[0]) for g in gathered])
    comm.barrier()
    for step in range(3):
        comm.release_keyed(f"k/{step}")
    return rounds


def _sampled_model(dim, num_classes=4):
    from repro.nn.models import GraphSageNet

    with temp_seed(0):
        return GraphSageNet(dim, 8, num_classes, num_layers=2,
                            dropout=0.0, use_batch_norm=False)


def _sampled_training_worker(rank, comm, shard, *, config, sampling,
                             feature_dim, num_classes):
    from repro.training.trainer import distributed_train_worker

    out = distributed_train_worker(
        rank, comm, shard,
        model_factory=_sampled_model,
        feature_dim=feature_dim,
        num_classes=num_classes,
        config=config,
        sar_config=SARConfig("sar"),
        sampling=sampling,
    )
    return [r.loss for r in out["records"]]


def _failing_worker(rank, comm):
    if rank == 1:
        raise ValueError("mp boom")
    comm.barrier()  # would deadlock without failure propagation
    return True


def _dying_worker(rank, comm):
    if rank == 1:
        os._exit(13)  # silent death: no result, no exception handler
    comm.barrier()
    return True


def _dying_peer_fetch_worker(rank, comm):
    if rank == 1:
        os._exit(5)
    return float(comm.fetch(1, "never-published")[0])


def _assert_no_children(timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not mp.active_children(), "run_multiprocess leaked child processes"


class TestMultiprocessBackend:
    @pytest.mark.parametrize("world_size", [1, 2, 3])
    def test_collectives_across_processes(self, world_size):
        results = run_multiprocess(_collective_worker, world_size=world_size,
                                   timeout_s=120)
        expected_total = world_size * (world_size + 1) / 2
        for rank, (total, fetched, exchanged, gathered) in enumerate(results):
            assert total == expected_total
            assert fetched == float((rank + 1) % world_size)
            assert exchanged == sorted(
                (q, float(q)) for q in range(world_size) if q != rank
            )
            assert gathered == list(range(world_size))

    def test_exchange_stats_accounting(self):
        # 3 float32 values to each of 2 peers = 24 bytes out and in per rank,
        # all under the default "exchange" tag (self-delivery never counts).
        results = run_multiprocess(_stats_worker, world_size=3, timeout_s=120)
        for sent, received in results:
            assert sent == {"exchange": 24}
            assert received == {"exchange": 24}

    def test_sar_aggregation_matches_single_machine(self):
        graph, _ = stochastic_block_model([30, 30], p_in=0.15, p_out=0.03, seed=1)
        graph = graph.add_self_loops()
        rng = np.random.default_rng(0)
        z_full = rng.standard_normal((graph.num_nodes, 4)).astype(np.float32)
        assignment = partition_graph(graph, 2, seed=0)
        book = PartitionBook(assignment, 2)
        shards = create_shards(graph, book)

        results = run_multiprocess(_sar_aggregation_worker, world_size=2,
                                   worker_args=shards, timeout_s=120, z_full=z_full)
        stitched = book.scatter_to_global([r[0] for r in results])
        expected = np.asarray(graph.adjacency(normalization="mean") @ z_full)
        np.testing.assert_allclose(stitched, expected, rtol=1e-3, atol=1e-3)

    def test_stream_keys_survive_clear_published(self):
        results = run_multiprocess(_stream_keys_survive_clear_worker, world_size=2,
                                   timeout_s=120)
        assert results == [1.0, 0.0]

    def test_keyed_allgather_across_processes(self):
        results = run_multiprocess(_keyed_allgather_worker, world_size=3, timeout_s=120)
        for rounds in results:
            assert rounds == [[step, 10 + step, 20 + step] for step in range(3)]

    def test_sampled_training_matches_single_machine(self):
        # The cooperative sampled training loop — keyed frontier allgathers,
        # pipelined batch b+1 sampling included — must run unchanged across
        # OS processes and train the same batch sequence as one machine.
        dataset = make_sbm_dataset(
            name="mp-sampled", num_nodes=120, num_classes=4, feature_dim=8,
            p_in=0.12, p_out=0.01, noise=1.5,
            train_frac=0.5, val_frac=0.2, test_frac=0.3, seed=5,
        )
        dataset.attach_to_graph()
        config = TrainingConfig(
            num_epochs=2, lr=0.05, eval_every=0, seed=0,
            sampler=NeighborSamplingConfig(fanouts=(3, 3), batch_size=32),
        )
        single = FullBatchTrainer(
            _sampled_model(dataset.feature_dim), dataset, config
        ).train()

        book = PartitionBook(partition_graph(dataset.graph, 2, seed=0), 2)
        shards = create_shards(dataset.graph, book)
        plan = build_sampling_plan(dataset.graph, book, config.sampler,
                                   dataset.train_indices(),
                                   config.resolved_sampler_seed())
        results = run_multiprocess(
            _sampled_training_worker, world_size=2, worker_args=shards,
            timeout_s=180, config=config, sampling=plan,
            feature_dim=dataset.feature_dim, num_classes=dataset.num_classes,
        )
        for losses in results:
            np.testing.assert_allclose(losses, single.losses(), rtol=1e-4, atol=1e-6)

    def test_worker_error_is_reported_and_survivors_unblock(self):
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="mp boom"):
            run_multiprocess(_failing_worker, world_size=2, timeout_s=120)
        # Rank 0 is parked in a barrier when rank 1 raises; the abort must
        # unblock it long before the 120 s timeout.
        assert time.monotonic() - start < 60
        _assert_no_children()

    def test_worker_crash_raises_naming_dead_rank(self):
        start = time.monotonic()
        with pytest.raises(WorkerFailedError,
                           match=r"rank 1: worker process died without posting"):
            run_multiprocess(_dying_worker, world_size=2, timeout_s=120)
        assert time.monotonic() - start < 60
        _assert_no_children()

    def test_peer_crash_unblocks_pending_fetch(self):
        with pytest.raises(WorkerFailedError, match="rank 1"):
            run_multiprocess(_dying_peer_fetch_worker, world_size=2, timeout_s=120)
        _assert_no_children()

    def test_worker_args_length_validated(self):
        with pytest.raises(ValueError):
            run_multiprocess(_collective_worker, world_size=2, worker_args=[1])
