"""Tests for the true multi-process backend (one OS process per worker).

Kept intentionally small (2 workers, a tiny graph) — the thread backend is the
workhorse; these tests demonstrate that the SAR machinery only depends on the
abstract Communicator interface and runs unchanged across processes.
"""

import numpy as np
import pytest

from repro.core import SARConfig
from repro.distributed.mp_backend import run_multiprocess
from repro.graph import stochastic_block_model
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.tensor import Tensor


def _collective_worker(rank, comm):
    total = comm.allreduce(np.array([rank + 1.0]))
    comm.publish("x", np.full(3, rank, dtype=np.float32))
    fetched = comm.fetch((rank + 1) % comm.world_size, "x")
    exchanged = comm.exchange("e", {q: np.array([float(rank)], dtype=np.float32)
                                    for q in range(comm.world_size) if q != rank})
    gathered = comm.allgather(np.array([rank], dtype=np.int64))
    comm.barrier()
    return (float(total[0]), float(fetched[0]),
            sorted((k, float(v[0])) for k, v in exchanged.items()),
            [int(g[0]) for g in gathered])


def _sar_aggregation_worker(rank, comm, shard, z_full=None):
    from repro.core import DistributedGraph

    dist_graph = DistributedGraph(shard, comm, SARConfig("sar"))
    dist_graph.begin_step()
    z = Tensor(z_full[shard.global_node_ids], requires_grad=True)
    out = dist_graph.aggregate_neighbors(z, op="mean")
    (out ** 2).sum().backward()
    return out.data, z.grad


def _failing_worker(rank, comm):
    if rank == 1:
        raise ValueError("mp boom")
    return True


class TestMultiprocessBackend:
    def test_collectives_across_processes(self):
        results = run_multiprocess(_collective_worker, world_size=2, timeout_s=120)
        assert results[0][0] == 3.0 and results[1][0] == 3.0
        assert results[0][1] == 1.0 and results[1][1] == 0.0
        assert results[0][2] == [(1, 1.0)]
        assert results[0][3] == [0, 1]

    def test_sar_aggregation_matches_single_machine(self):
        graph, _ = stochastic_block_model([30, 30], p_in=0.15, p_out=0.03, seed=1)
        graph = graph.add_self_loops()
        rng = np.random.default_rng(0)
        z_full = rng.standard_normal((graph.num_nodes, 4)).astype(np.float32)
        assignment = partition_graph(graph, 2, seed=0)
        book = PartitionBook(assignment, 2)
        shards = create_shards(graph, book)

        results = run_multiprocess(_sar_aggregation_worker, world_size=2,
                                   worker_args=shards, timeout_s=120, z_full=z_full)
        stitched = book.scatter_to_global([r[0] for r in results])
        expected = np.asarray(graph.adjacency(normalization="mean") @ z_full)
        np.testing.assert_allclose(stitched, expected, rtol=1e-3, atol=1e-3)

    def test_worker_error_is_reported(self):
        with pytest.raises(RuntimeError, match="mp boom"):
            run_multiprocess(_failing_worker, world_size=2, timeout_s=60)

    def test_worker_args_length_validated(self):
        with pytest.raises(ValueError):
            run_multiprocess(_collective_worker, world_size=2, worker_args=[1])
