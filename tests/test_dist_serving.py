"""Distributed serving: bit-parity over shards, one configured API surface.

The subsystem contract under test (``repro/serving/``):

* every logit row served by
  :class:`~repro.serving.DistributedInferenceServer` (per-shard workers,
  cooperative restricted grids, halo fetches for cache-missed frontier rows)
  is **bit-identical** to the single-machine
  :class:`~repro.serving.InferenceServer` on the same graph — for every conv
  kind, cold and warm caches, and under concurrent clients;
* ``update()`` serializes behind in-flight batches and invalidates the
  embedding cache on **every** shard; a feature-store ``replace()`` folds in
  at the next batch on every shard;
* :func:`~repro.serving.create_server` is the one public entry point:
  :class:`~repro.serving.ServingConfig` selects the backend, both backends
  implement :class:`~repro.serving.ServerProtocol` and share one ``stats()``
  shape (plus per-worker halo/frontier/cache telemetry on the distributed
  one);
* the pre-redesign loose-keyword ``InferenceServer(...)`` form still works
  behind a :class:`DeprecationWarning` naming the migration;
* calling ``update()``/``predict()`` on a never-started server raises a
  RuntimeError that says so (regression: it used to be indistinguishable
  from a stopped server).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.datasets import make_sbm_dataset
from repro.nn.models import GATNet, GraphSageNet
from repro.partition import PartitionBook, create_shards, partition_graph
from repro.serving import (
    DistributedInferenceServer,
    InferenceServer,
    ServerProtocol,
    ServingConfig,
    create_server,
)
from repro.store import DenseStore
from repro.tensor import Tensor, no_grad
from repro.utils.seed import set_seed

#: per-worker serving telemetry keys (CommStats.serving_snapshot()).
_COMM_KEYS = {
    "halo_bytes_sent", "halo_bytes_received",
    "frontier_bytes_sent", "frontier_bytes_received",
    "cache_hit_rows", "cache_miss_rows", "cache_hit_bytes",
}


@pytest.fixture
def dataset():
    return make_sbm_dataset(
        name="dist-serving-sbm",
        num_nodes=180,
        num_classes=4,
        feature_dim=10,
        p_in=0.12,
        p_out=0.02,
    )


def _make_model(dataset, kind="sage"):
    set_seed(0)
    if kind == "gat":
        return GATNet(
            dataset.feature_dim, 8, dataset.num_classes, num_layers=2,
            num_heads=2, dropout=0.0, use_batch_norm=True,
        )
    return GraphSageNet(
        dataset.feature_dim, 16, dataset.num_classes, num_layers=2,
        dropout=0.5, use_batch_norm=True,
    )


def _make_shards(dataset, world_size):
    book = PartitionBook(
        partition_graph(dataset.graph, world_size, seed=0), world_size
    )
    return create_shards(dataset.graph, book)


def _reference_logits(model, graph, features):
    model.eval()
    with no_grad():
        return model(graph, Tensor(features)).data


# --------------------------------------------------------------------------- #
# parity matrix: distributed == single-machine, bit for bit
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["sage", "gat"])
@pytest.mark.parametrize("byte_budget", [None, 1 << 20])
def test_distributed_bit_identical_to_local_server(dataset, kind, byte_budget):
    """sage/gat x cache-on/off x cold+warm: exact rows from 2 shards."""
    model = _make_model(dataset, kind)
    streams = [[5], [3, 1, 4, 1, 5], [0, 179], list(range(40))]
    with create_server(
        model, dataset.graph, dataset.features,
        ServingConfig(window_ms=0.0, byte_budget=byte_budget),
    ) as local:
        expected = [local.predict(ids) for ids in streams]

    shards = _make_shards(dataset, 2)
    config = ServingConfig(
        backend="distributed", window_ms=0.0, byte_budget=byte_budget
    )
    with create_server(model, shards, dataset.features, config) as server:
        assert isinstance(server, DistributedInferenceServer)
        for ids, want in zip(streams, expected):  # cold caches
            np.testing.assert_array_equal(server.predict(ids), want)
        for ids, want in zip(streams, expected):  # warm caches
            np.testing.assert_array_equal(server.predict(ids), want)
        stats = server.stats()
    if byte_budget is not None:
        # Warm repeats hit the all-logits fast path on every shard.
        assert stats["fast_path_batches"] >= 1
    assert stats["served_requests"] == 2 * len(streams)


def test_concurrent_clients_distributed_bit_identical(dataset):
    """Coalesced concurrent requests over 3 shards all get exact rows."""
    model = _make_model(dataset, "gat")
    reference = _reference_logits(model, dataset.graph, dataset.features)
    rng = np.random.default_rng(11)
    streams = [
        rng.integers(0, dataset.graph.num_nodes, size=10) for _ in range(6)
    ]
    errors = []
    shards = _make_shards(dataset, 3)
    config = ServingConfig(
        backend="distributed", window_ms=2.0, byte_budget=1 << 20
    )
    with create_server(model, shards, dataset.features, config) as server:

        def client(stream):
            try:
                for node in stream:
                    row = server.predict([int(node)])
                    np.testing.assert_array_equal(row[0], reference[node])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s,)) for s in streams]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = server.stats()
    assert not errors
    assert stats["served_requests"] == sum(len(s) for s in streams)


# --------------------------------------------------------------------------- #
# invalidation: updates and store versions reach every shard
# --------------------------------------------------------------------------- #
def test_update_invalidates_every_shard(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90, 140]
    shards = _make_shards(dataset, 2)
    config = ServingConfig(
        backend="distributed", window_ms=0.0, byte_budget=1 << 20
    )
    with create_server(model, shards, dataset.features, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        assert server.version == 1

        def perturb(m):
            for param in m.parameters():
                param.data[...] = param.data + 0.25

        assert server.update(perturb) == 2
        new_reference = _reference_logits(model, dataset.graph, dataset.features)
        assert not np.array_equal(new_reference, reference)
        np.testing.assert_array_equal(server.predict(ids), new_reference[ids])
        stats = server.stats()
    assert stats["updates"] == 1
    assert stats["embedding_cache"]["version"] == 2
    for worker in stats["workers"]:
        assert worker["embedding_cache"]["version"] == 2
        assert worker["embedding_cache"]["invalidations"] >= 1


def test_store_replace_folds_into_every_shard(dataset):
    """A shared store's replace() invalidates all shards at the next batch."""
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [3, 17, 90]
    store = DenseStore(dataset.features.copy())
    shards = _make_shards(dataset, 2)
    config = ServingConfig(
        backend="distributed", window_ms=0.0, byte_budget=1 << 20
    )
    with create_server(model, shards, store, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        fresh = dataset.features * 1.5
        store.replace(fresh)
        new_reference = _reference_logits(model, dataset.graph, fresh)
        assert not np.array_equal(new_reference, reference)
        np.testing.assert_array_equal(server.predict(ids), new_reference[ids])
        stats = server.stats()
    assert stats["store_version"] == 2
    for worker in stats["workers"]:
        assert worker["embedding_cache"]["invalidations"] >= 1


# --------------------------------------------------------------------------- #
# feature delivery forms
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("form", ["global-kv", "per-worker-kv", "global-dense"])
def test_feature_forms_serve_identical_rows(dataset, form):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    ids = [7, 42, 100, 150]
    shards = _make_shards(dataset, 2)
    book = shards[0].book
    if form == "per-worker-kv":
        features = [dataset.features[book.nodes_of(p)] for p in range(2)]
    else:
        features = dataset.features
    store_kind = "dense" if form == "global-dense" else "kv"
    config = ServingConfig(
        backend="distributed", window_ms=0.0, feature_store=store_kind
    )
    with create_server(model, shards, features, config) as server:
        np.testing.assert_array_equal(server.predict(ids), reference[ids])
        stats = server.stats()
    if store_kind == "kv":
        # PartitionedKVStore telemetry surfaces per worker and aggregated.
        for worker in stats["workers"]:
            assert worker["feature_store"]
        assert stats["feature_store"]


# --------------------------------------------------------------------------- #
# the redesigned API surface
# --------------------------------------------------------------------------- #
def test_factory_dispatches_on_backend(dataset):
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    local = create_server(model, dataset.graph, dataset.features)
    assert isinstance(local, InferenceServer)
    assert isinstance(local, ServerProtocol)
    assert not local.running
    dist = create_server(
        model, shards, dataset.features, ServingConfig(backend="distributed")
    )
    assert isinstance(dist, DistributedInferenceServer)
    assert isinstance(dist, ServerProtocol)
    assert not dist.running


def test_factory_rejects_mismatched_topology(dataset):
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    with pytest.raises(ValueError, match="backend='distributed'"):
        create_server(model, shards, dataset.features)  # shard list, local
    with pytest.raises(ValueError, match="create_shards"):
        create_server(
            model, dataset.graph, dataset.features,
            ServingConfig(backend="distributed"),
        )
    with pytest.raises(ValueError, match="ServingConfig"):
        create_server(model, dataset.graph, dataset.features, config={"window_ms": 1})
    with pytest.raises(ValueError, match="local backend"):
        InferenceServer(
            model, dataset.graph, dataset.features,
            config=ServingConfig(backend="distributed"),
        )
    with pytest.raises(ValueError, match="distributed backend"):
        DistributedInferenceServer(
            model, shards, dataset.features, config=ServingConfig()
        )
    with pytest.raises(ValueError, match="rank order"):
        DistributedInferenceServer(
            model, shards[::-1], dataset.features,
            config=ServingConfig(backend="distributed"),
        )


def test_serving_config_validates():
    with pytest.raises(ValueError, match="backend"):
        ServingConfig(backend="remote")
    with pytest.raises(ValueError, match="window_ms"):
        ServingConfig(window_ms=-1.0)
    with pytest.raises(ValueError, match="byte_budget"):
        ServingConfig(byte_budget=0)
    with pytest.raises(ValueError, match="cache_admission"):
        ServingConfig(cache_admission="lfu")
    with pytest.raises(ValueError, match="feature_store"):
        ServingConfig(feature_store="mmap")
    with pytest.raises(ValueError, match="restriction_slots"):
        ServingConfig(restriction_slots=0)


def test_serving_config_rejects_invalid_cross_field_combinations():
    """Combinations that would only misbehave mid-serve raise at construction."""
    # An admission gate on a disabled cache silently configures nothing.
    with pytest.raises(ValueError, match="byte_budget"):
        ServingConfig(cache_admission="frequency", byte_budget=None)
    # A predict timeout inside the coalescing window can never be met.
    with pytest.raises(ValueError, match="predict_timeout_s"):
        ServingConfig(window_ms=500.0, predict_timeout_s=0.25)
    # The boundary itself is rejected (timeout must strictly exceed).
    with pytest.raises(ValueError, match="predict_timeout_s"):
        ServingConfig(window_ms=1000.0, predict_timeout_s=1.0)
    # Valid neighbours of both combinations still construct.
    ServingConfig(cache_admission="frequency", byte_budget=1 << 16)
    ServingConfig(window_ms=500.0, predict_timeout_s=1.0)


def test_legacy_kwargs_deprecated_but_equivalent(dataset):
    model = _make_model(dataset)
    with pytest.warns(DeprecationWarning, match="cache_bytes is now byte_budget"):
        server = InferenceServer(
            model, dataset.graph, dataset.features,
            window_ms=5.0, cache_bytes=1 << 16, cache_admission="frequency",
        )
    assert server.config == ServingConfig(
        window_ms=5.0, byte_budget=1 << 16, cache_admission="frequency"
    )
    # The warning names the replacement entry point.
    with pytest.warns(DeprecationWarning, match="create_server"):
        InferenceServer(model, dataset.graph, dataset.features, window_ms=0.0)
    # Legacy positional window_ms (4th argument) takes the same shim.
    with pytest.warns(DeprecationWarning):
        positional = InferenceServer(model, dataset.graph, dataset.features, 7.5)
    assert positional.config.window_ms == 7.5
    with pytest.raises(TypeError, match="not both"):
        InferenceServer(
            model, dataset.graph, dataset.features,
            config=ServingConfig(), window_ms=1.0,
        )
    with pytest.raises(TypeError, match="unexpected keyword"):
        InferenceServer(model, dataset.graph, dataset.features, cache_mb=4)


def test_legacy_kwargs_still_serve_bit_identical(dataset):
    model = _make_model(dataset)
    reference = _reference_logits(model, dataset.graph, dataset.features)
    with pytest.warns(DeprecationWarning):
        server = InferenceServer(
            model, dataset.graph, dataset.features,
            window_ms=0.0, cache_bytes=1 << 20,
        )
    with server:
        ids = [9, 2, 9, 0, 2]
        np.testing.assert_array_equal(server.predict(ids), reference[ids])


# --------------------------------------------------------------------------- #
# lifecycle regressions
# --------------------------------------------------------------------------- #
def test_update_on_never_started_server_raises_clearly(dataset):
    """Regression: update()/predict() pre-start must say "never started"."""
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    for server in (
        InferenceServer(model, dataset.graph, dataset.features),
        DistributedInferenceServer(
            model, shards, dataset.features,
            config=ServingConfig(backend="distributed"),
        ),
    ):
        with pytest.raises(RuntimeError, match="never started"):
            server.update(lambda m: None)
        with pytest.raises(RuntimeError, match="never started"):
            server.predict([0])
        # Both phrasings keep the historical "not running" needle.
        with pytest.raises(RuntimeError, match="not running"):
            server.update()


def test_stopped_server_message_differs_from_never_started(dataset):
    model = _make_model(dataset)
    server = InferenceServer(model, dataset.graph, dataset.features)
    server.start()
    server.stop()
    with pytest.raises(RuntimeError, match="not running") as excinfo:
        server.update()
    assert "never started" not in str(excinfo.value)
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()


def test_distributed_lifecycle_and_validation(dataset):
    model = _make_model(dataset)
    shards = _make_shards(dataset, 2)
    config = ServingConfig(backend="distributed", window_ms=0.0)
    server = create_server(model, shards, dataset.features, config)
    server.start()
    assert server.running
    assert server.predict(np.array([], dtype=np.int64)).size == 0
    with pytest.raises(ValueError, match="node_ids"):
        server.predict([dataset.graph.num_nodes])
    with pytest.raises(ValueError, match="node_ids"):
        server.predict([-1])
    server.stop()
    assert not server.running
    with pytest.raises(RuntimeError, match="not running"):
        server.predict([0])
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()


# --------------------------------------------------------------------------- #
# one stats() shape, two backends
# --------------------------------------------------------------------------- #
def test_stats_shape_is_shared_and_workers_carry_comm_telemetry(dataset):
    model = _make_model(dataset)
    ids = [3, 17, 90, 140]
    with create_server(
        model, dataset.graph, dataset.features,
        ServingConfig(window_ms=0.0, byte_budget=1 << 20),
    ) as local:
        local.predict(ids)
        local_stats = local.stats()
    shards = _make_shards(dataset, 2)
    config = ServingConfig(
        backend="distributed", window_ms=0.0, byte_budget=1 << 20
    )
    with create_server(model, shards, dataset.features, config) as dist:
        dist.predict(ids)
        dist.predict(ids)  # warm repeat exercises cache telemetry
        dist_stats = dist.stats()

    assert set(local_stats) == set(dist_stats)
    assert local_stats["backend"] == "local"
    assert local_stats["workers"] is None
    assert dist_stats["backend"] == "distributed"
    workers = dist_stats["workers"]
    assert [w["rank"] for w in workers] == [0, 1]
    for worker in workers:
        assert {"rank", "embedding_cache", "feature_store", "comm"} <= set(worker)
        assert _COMM_KEYS <= set(worker["comm"])
    # The cooperative walk moved frontier bytes; activations crossed shard
    # boundaries through the halo fetch path on at least one worker.
    assert sum(w["comm"]["frontier_bytes_sent"] for w in workers) > 0
    assert sum(w["comm"]["halo_bytes_received"] for w in workers) > 0
    # Aggregated embedding-cache counters cover the per-worker caches.
    agg = dist_stats["embedding_cache"]
    assert agg["hits"] == sum(
        w["embedding_cache"]["hits"] for w in workers
    )


# --------------------------------------------------------------------------- #
# lifecycle properties: one contract, every backend
# --------------------------------------------------------------------------- #
_ALL_BACKENDS = ["local", "distributed", "mp"]


@pytest.fixture(params=_ALL_BACKENDS)
def backend_server(request, dataset):
    """An unstarted server of each backend over the same model and graph.

    One fixture drives the whole lifecycle matrix so a new backend only has
    to join ``_ALL_BACKENDS`` to inherit every property test below.
    """
    if request.param == "mp":
        import multiprocessing as _mp

        if "fork" not in _mp.get_all_start_methods():
            pytest.skip("mp serving backend requires the fork start method")
    model = _make_model(dataset)
    config = ServingConfig(backend=request.param, window_ms=0.0)
    if request.param == "local":
        server = create_server(model, dataset.graph, dataset.features, config)
    else:
        shards = _make_shards(dataset, 2)
        server = create_server(model, shards, dataset.features, config)
    yield server
    server.stop()


def test_backend_lifecycle_never_started_raises_clearly(backend_server):
    with pytest.raises(RuntimeError, match="never started"):
        backend_server.predict([0])
    with pytest.raises(RuntimeError, match="never started"):
        backend_server.update(lambda m: None)
    # Both phrasings keep the historical "not running" needle.
    with pytest.raises(RuntimeError, match="not running"):
        backend_server.predict([0])


def test_backend_lifecycle_stop_is_terminal(backend_server):
    server = backend_server.start()
    assert server.running
    assert server.start() is server  # idempotent while running
    assert server.predict([0, 1]).shape[0] == 2
    server.stop()
    server.stop()  # idempotent after stop
    assert not server.running
    with pytest.raises(RuntimeError, match="not running") as excinfo:
        server.predict([0])
    assert "never started" not in str(excinfo.value)
    with pytest.raises(RuntimeError, match="not running"):
        server.update()
    with pytest.raises(RuntimeError, match="restarted"):
        server.start()


def test_backend_lifecycle_validates_requests(backend_server):
    with backend_server as server:
        assert server.predict(np.array([], dtype=np.int64)).size == 0
        with pytest.raises(ValueError, match="node_ids"):
            server.predict([server._num_nodes])
        with pytest.raises(ValueError, match="node_ids"):
            server.predict([-1])
        assert server.stats()["backend"] == server.backend


# --------------------------------------------------------------------------- #
# soak: many clients x many tiny requests against the thread backend
# --------------------------------------------------------------------------- #
@pytest.mark.slow
def test_thread_backend_soak_randomized_clients(dataset):
    """Sustained randomized load never serves a wrong or stale row.

    Regression coverage for the PR 9 stale-publish race: per-batch
    activations publish under step-namespaced keys, so a worker lagging at
    a batch boundary must never fetch a *previous* batch's rows.  Under
    unsynchronized clients (random think times), window coalescing, and
    concurrent version bumps, every response is still required to be
    bit-identical to the full-graph forward — a single stale fetch would
    surface as a wrong row.  Also asserts the frontend's stats() counters
    stay mutually consistent after the storm.
    """
    model = _make_model(dataset, "sage")
    reference = _reference_logits(model, dataset.graph, dataset.features)
    shards = _make_shards(dataset, 3)
    config = ServingConfig(
        backend="distributed", window_ms=1.0, byte_budget=1 << 18
    )
    num_clients, requests_per_client = 8, 50
    rng = np.random.default_rng(23)
    streams = [
        rng.integers(0, dataset.graph.num_nodes, size=(requests_per_client, 2))
        for _ in range(num_clients)
    ]
    sleeps = rng.uniform(0.0, 2e-3, size=(num_clients, requests_per_client))
    errors: list = []
    stop_bumping = threading.Event()
    with create_server(model, shards, dataset.features, config) as server:

        def client(idx):
            try:
                for step, ids in enumerate(streams[idx]):
                    time.sleep(sleeps[idx][step])
                    rows = server.predict(ids.tolist())
                    np.testing.assert_array_equal(rows, reference[ids])
            except BaseException as exc:
                errors.append(exc)

        def bumper():
            # Cache invalidations racing the request storm: every bump
            # forces cold recomputes mid-flight on every shard.
            try:
                while not stop_bumping.wait(0.05):
                    server.bump_version()
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(num_clients)
        ]
        bump_thread = threading.Thread(target=bumper)
        for t in threads:
            t.start()
        bump_thread.start()
        for t in threads:
            t.join()
        stop_bumping.set()
        bump_thread.join()
        stats = server.stats()

    assert not errors
    total = num_clients * requests_per_client
    assert stats["requests"] == total  # version bumps don't count as requests
    assert stats["served_requests"] == total
    assert stats["batches"] <= total
    assert sum(stats["frontier_layers"].values()) == stats["batches"]
    assert stats["seeds_executed"] >= stats["batches"]
    assert stats["max_requests_in_batch"] >= 1
    assert stats["queue_depth"] == 0
    assert stats["updates"] >= 1
    # Every shard saw every version bump (no shard served stale entries).
    versions = {w["embedding_cache"]["version"] for w in stats["workers"]}
    assert len(versions) == 1
