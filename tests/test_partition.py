"""Tests for the partitioner, partition book, and shard construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import stochastic_block_model, star_graph
from repro.partition import (
    PartitionBook,
    balance_ratio,
    create_shards,
    create_hetero_shards,
    edge_cut,
    partition_graph,
    partition_sizes,
)
from repro.graph.hetero import HeteroGraph


class TestPartitioner:
    def test_assignment_covers_all_partitions(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 4)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}

    def test_balance_within_tolerance(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 4)
        assert balance_ratio(assignment, 4) <= 1.15

    def test_metis_like_beats_random_on_edge_cut(self, sbm_graph):
        good = partition_graph(sbm_graph, 3, method="metis", seed=0)
        bad = partition_graph(sbm_graph, 3, method="random", seed=0)
        assert edge_cut(sbm_graph, good) < edge_cut(sbm_graph, bad)

    def test_contiguous_on_block_ordered_graph(self, sbm_graph):
        # SBM node ids are grouped by block, so contiguous ranges cut few edges.
        contiguous = partition_graph(sbm_graph, 3, method="contiguous")
        random = partition_graph(sbm_graph, 3, method="random", seed=1)
        assert edge_cut(sbm_graph, contiguous) < edge_cut(sbm_graph, random)

    def test_single_partition(self, tiny_graph):
        assignment = partition_graph(tiny_graph, 1)
        assert edge_cut(tiny_graph, assignment) == 0

    def test_more_parts_than_nodes_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_graph(tiny_graph, 100)

    def test_unknown_method_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_graph(tiny_graph, 2, method="bogus")

    def test_star_graph_stays_balanced(self):
        g = star_graph(40)
        assignment = partition_graph(g, 4)
        sizes = partition_sizes(assignment, 4)
        assert sizes.min() >= 1
        assert balance_ratio(assignment, 4) <= 1.3

    def test_deterministic_given_seed(self, sbm_graph):
        a1 = partition_graph(sbm_graph, 4, seed=3)
        a2 = partition_graph(sbm_graph, 4, seed=3)
        np.testing.assert_array_equal(a1, a2)

    @given(st.integers(2, 6), st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_every_partition_nonempty_property(self, num_parts, seed):
        graph, _ = stochastic_block_model([30, 30, 30], 0.1, 0.02, seed=seed)
        assignment = partition_graph(graph, num_parts, seed=seed)
        sizes = partition_sizes(assignment, num_parts)
        assert sizes.min() >= 1
        assert sizes.sum() == graph.num_nodes


class TestPartitionBook:
    def test_roundtrip_global_local(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 4)
        book = PartitionBook(assignment, 4)
        global_ids = np.arange(sbm_graph.num_nodes)
        parts, locals_ = book.to_local(global_ids)
        for p in range(4):
            nodes = global_ids[parts == p]
            back = book.to_global(p, locals_[parts == p])
            np.testing.assert_array_equal(back, nodes)

    def test_partition_sizes_match_assignment(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 3)
        book = PartitionBook(assignment, 3)
        np.testing.assert_array_equal(book.partition_sizes(),
                                      partition_sizes(assignment, 3))

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            PartitionBook(np.zeros(10, dtype=np.int64), 2)

    def test_scatter_to_global_roundtrip(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 4)
        book = PartitionBook(assignment, 4)
        values = np.random.randn(sbm_graph.num_nodes, 3).astype(np.float32)
        pieces = [values[book.nodes_of(p)] for p in range(4)]
        np.testing.assert_array_equal(book.scatter_to_global(pieces), values)

    def test_scatter_validates_shapes(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 2)
        book = PartitionBook(assignment, 2)
        with pytest.raises(ValueError):
            book.scatter_to_global([np.zeros((1, 2))])
        with pytest.raises(ValueError):
            book.scatter_to_global([np.zeros((1, 2)), np.zeros((1, 2))])

    def test_partition_of(self, sbm_graph):
        assignment = partition_graph(sbm_graph, 3)
        book = PartitionBook(assignment, 3)
        ids = np.array([0, 5, 10])
        np.testing.assert_array_equal(book.partition_of(ids), assignment[ids])


class TestShards:
    def _shards(self, graph, num_parts=4):
        assignment = partition_graph(graph, num_parts, seed=0)
        book = PartitionBook(assignment, num_parts)
        return book, create_shards(graph, book)

    def test_every_edge_appears_in_exactly_one_block(self, sbm_graph):
        book, shards = self._shards(sbm_graph)
        total = sum(block.num_edges for shard in shards for block in shard.blocks)
        assert total == sbm_graph.num_edges

    def test_block_indices_within_bounds(self, sbm_graph):
        book, shards = self._shards(sbm_graph)
        for shard in shards:
            for q, block in enumerate(shard.blocks):
                if block.num_edges == 0:
                    continue
                assert block.dst_local.max() < shard.num_local_nodes
                assert block.src_index.max() < block.num_required_src
                assert block.required_src_local.max() < book.partition_sizes()[q]

    def test_local_in_degrees_match_graph(self, sbm_graph):
        book, shards = self._shards(sbm_graph)
        degrees = sbm_graph.in_degrees()
        for shard in shards:
            np.testing.assert_array_equal(shard.local_in_degrees,
                                          degrees[shard.global_node_ids])

    def test_aggregation_matrix_matches_global(self, sbm_graph):
        """Summing block aggregations reproduces the full-graph aggregation."""
        book, shards = self._shards(sbm_graph)
        x = np.random.randn(sbm_graph.num_nodes, 5).astype(np.float32)
        expected = sbm_graph.adjacency() @ x
        for shard in shards:
            acc = np.zeros((shard.num_local_nodes, 5), dtype=np.float32)
            for q, block in enumerate(shard.blocks):
                if block.num_edges == 0:
                    continue
                remote = x[book.nodes_of(q)][block.required_src_local]
                acc += block.aggregation_matrix() @ remote
            np.testing.assert_allclose(acc, expected[shard.global_node_ids],
                                       rtol=1e-4, atol=1e-4)

    def test_halo_size_counts_remote_rows_only(self, sbm_graph):
        book, shards = self._shards(sbm_graph)
        for shard in shards:
            manual = sum(b.num_required_src for q, b in enumerate(shard.blocks)
                         if q != shard.rank)
            assert shard.halo_size == manual

    def test_node_data_sliced_per_partition(self, sbm_graph):
        sbm_graph.set_ndata("feat", np.arange(sbm_graph.num_nodes * 2).reshape(-1, 2))
        book, shards = self._shards(sbm_graph)
        for shard in shards:
            np.testing.assert_array_equal(
                shard.node_data["feat"], sbm_graph.ndata["feat"][shard.global_node_ids]
            )

    def test_weighted_matrix_validation(self, sbm_graph):
        _, shards = self._shards(sbm_graph)
        block = shards[0].local_block
        with pytest.raises(ValueError):
            block.weighted_matrix(np.ones(block.num_edges + 1))

    def test_hetero_shards_preserve_relation_edges(self):
        relations = {
            "a": (np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0])),
            "b": (np.array([4, 5]), np.array([0, 1])),
        }
        hg = HeteroGraph(6, relations)
        assignment = np.array([0, 0, 1, 1, 2, 2])
        book = PartitionBook(assignment, 3)
        shards = create_hetero_shards(hg, book)
        for relation, (src, _) in relations.items():
            total = sum(
                blocks.num_edges
                for shard in shards
                for blocks in shard.relation_blocks[relation]
            )
            assert total == len(src)
