"""Tests for optimizers, learning-rate schedules, and initializers."""

import numpy as np
import pytest

from repro.tensor import Tensor, init
from repro.tensor.optim import SGD, Adam, CosineDecay, ExponentialDecay, StepDecay
from repro.utils.seed import set_seed


def _quadratic_problem():
    """Minimise ||w - target||^2; any sane optimizer converges quickly."""
    target = np.array([1.0, -2.0, 3.0], dtype=np.float32)
    w = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        w1, target, loss1 = _quadratic_problem()
        w2, _, loss2 = _quadratic_problem()
        plain = SGD([w1], lr=0.01)
        momentum = SGD([w2], lr=0.01, momentum=0.9)
        for _ in range(30):
            for opt, fn in ((plain, loss1), (momentum, loss2)):
                loss = fn()
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert np.linalg.norm(w2.data - target) < np.linalg.norm(w1.data - target)

    def test_weight_decay_shrinks_parameters(self):
        w = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        assert np.all(np.abs(w.data) < 1.0)

    def test_skips_parameters_without_grad(self):
        w = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        opt = SGD([w], lr=0.5)
        opt.step()
        np.testing.assert_allclose(w.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = _quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_state_dict_roundtrip(self):
        w, _, loss_fn = _quadratic_problem()
        opt = Adam([w], lr=0.05)
        for _ in range(5):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        state = opt.state_dict()
        snapshot = w.data.copy()
        loss = loss_fn()
        opt.zero_grad()
        loss.backward()
        opt.step()
        after_one_more = w.data.copy()
        # restore and repeat: the trajectory must be identical
        w.data[...] = snapshot
        opt.load_state_dict(state)
        loss = loss_fn()
        opt.zero_grad()
        loss.backward()
        opt.step()
        np.testing.assert_allclose(w.data, after_one_more, rtol=1e-6)

    def test_invalid_hyperparameters_raise(self):
        w = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([w], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([w], betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=-0.5)

    def test_requires_grad_validation(self):
        with pytest.raises(TypeError):
            Adam([Tensor(np.ones(2))], lr=0.1)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestSchedulers:
    def _optimizer(self):
        return SGD([Tensor(np.ones(2), requires_grad=True)], lr=1.0)

    def test_step_decay(self):
        opt = self._optimizer()
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25])

    def test_exponential_decay(self):
        opt = self._optimizer()
        sched = ExponentialDecay(opt, gamma=0.9)
        sched.step()
        assert np.isclose(opt.lr, 0.9)

    def test_cosine_decay_endpoints(self):
        opt = self._optimizer()
        sched = CosineDecay(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            last = sched.step()
        assert np.isclose(last, 0.1, atol=1e-6)
        assert opt.lr <= 1.0

    def test_invalid_scheduler_args(self):
        opt = self._optimizer()
        with pytest.raises(ValueError):
            StepDecay(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineDecay(opt, total_epochs=0)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        set_seed(0)
        w = init.xavier_uniform((100, 50))
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit + 1e-6)

    def test_xavier_normal_std(self):
        set_seed(0)
        w = init.xavier_normal((200, 100))
        expected_std = np.sqrt(2.0 / 300)
        assert abs(w.std() - expected_std) < 0.2 * expected_std

    def test_kaiming_uniform_scales_with_fan_in(self):
        set_seed(0)
        small = init.kaiming_uniform((10, 10))
        large = init.kaiming_uniform((1000, 10))
        assert np.abs(large).max() < np.abs(small).max()

    def test_zeros_ones(self):
        assert init.zeros((3, 3)).sum() == 0
        assert init.ones((3, 3)).sum() == 9

    def test_uniform_and_normal_ranges(self):
        set_seed(0)
        u = init.uniform((1000,), low=-0.2, high=0.2)
        assert np.all((u >= -0.2) & (u < 0.2))
        n = init.normal((1000,), std=0.05)
        assert abs(n.std() - 0.05) < 0.01

    def test_seed_reproducibility(self):
        set_seed(42)
        first = init.xavier_uniform((5, 5))
        set_seed(42)
        second = init.xavier_uniform((5, 5))
        np.testing.assert_array_equal(first, second)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())
