"""Synthetic datasets standing in for the paper's OGB benchmarks."""

from repro.datasets.synthetic import (
    NodeClassificationDataset,
    HeteroNodeClassificationDataset,
    make_sbm_dataset,
    make_hetero_sbm_dataset,
    class_correlated_features,
    random_split,
)
from repro.datasets.ogb_like import (
    ogbn_products_mini,
    ogbn_papers_mini,
    ogbn_mag_mini,
    get_dataset,
    available_datasets,
)

__all__ = [
    "NodeClassificationDataset",
    "HeteroNodeClassificationDataset",
    "make_sbm_dataset",
    "make_hetero_sbm_dataset",
    "class_correlated_features",
    "random_split",
    "ogbn_products_mini",
    "ogbn_papers_mini",
    "ogbn_mag_mini",
    "get_dataset",
    "available_datasets",
]
