"""Scaled-down stand-ins for the OGB graphs used in the paper.

The paper's experiments use ogbn-products (2.5 M nodes / 124 M edges),
ogbn-papers100M (111 M nodes / 3.2 B edges) and ogbn-mag (1.9 M nodes,
4 relations).  These cannot be downloaded offline and would not fit the
simulation host anyway, so each is replaced by a seeded synthetic dataset
that keeps the *structural role* it plays in the evaluation:

* ``ogbn_products_mini`` — the "moderate size, partitioned over 4/8/16
  workers" graph (Figs. 3 and 4, Table 1).  Feature dimension 100 as in the
  paper; class count reduced to 12.
* ``ogbn_papers_mini``   — the "large, partitioned over 32/64/128 workers"
  graph (Figs. 5, 6 and 8).  Feature dimension 128; sparse labels (only a
  small fraction of nodes is labelled, as in papers100M) so the
  Message-Flow-Graph optimization of Appendix B has something to save.
* ``ogbn_mag_mini``      — the heterogeneous graph with 4 relations used for
  the R-GCN experiments (Fig. 7).

Every generator accepts a ``scale`` multiplier so tests can run on tiny
versions and benchmarks on larger ones.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.datasets.synthetic import (
    HeteroNodeClassificationDataset,
    NodeClassificationDataset,
    make_hetero_sbm_dataset,
    make_sbm_dataset,
)
from repro.utils.validation import check_positive_int


def ogbn_products_mini(scale: float = 1.0, seed: int = 0) -> NodeClassificationDataset:
    """Products-like graph: dense-ish, strongly homophilous, 100-d features."""
    num_nodes = check_positive_int(int(2400 * scale), "num_nodes")
    num_classes = 12
    return make_sbm_dataset(
        name="ogbn-products-mini",
        num_nodes=num_nodes,
        num_classes=num_classes,
        feature_dim=100,
        p_in=min(1.0, 0.035 / scale),
        p_out=min(1.0, 0.0012 / scale),
        signal=1.0,
        noise=2.0,
        train_frac=0.4,
        val_frac=0.2,
        test_frac=0.4,
        seed=seed,
    )


def ogbn_papers_mini(scale: float = 1.0, seed: int = 1) -> NodeClassificationDataset:
    """Papers100M-like graph: larger, sparser labels, 128-d features."""
    num_nodes = check_positive_int(int(6400 * scale), "num_nodes")
    num_classes = 16
    return make_sbm_dataset(
        name="ogbn-papers-mini",
        num_nodes=num_nodes,
        num_classes=num_classes,
        feature_dim=128,
        p_in=min(1.0, 0.02 / scale),
        p_out=min(1.0, 0.0004 / scale),
        signal=1.0,
        noise=2.5,
        train_frac=0.10,
        val_frac=0.10,
        test_frac=0.20,
        seed=seed,
    )


def ogbn_mag_mini(scale: float = 1.0, seed: int = 2) -> HeteroNodeClassificationDataset:
    """MAG-like heterogeneous graph: 4 relations of varying informativeness."""
    num_nodes = check_positive_int(int(2000 * scale), "num_nodes")
    relation_specs: Dict[str, Dict[str, float]] = {
        "cites": {"p_in": min(1.0, 0.030 / scale), "p_out": min(1.0, 0.0010 / scale)},
        "writes": {"p_in": min(1.0, 0.015 / scale), "p_out": min(1.0, 0.0020 / scale)},
        "affiliated_with": {"p_in": min(1.0, 0.008 / scale), "p_out": min(1.0, 0.0030 / scale)},
        "has_topic": {"p_in": min(1.0, 0.006 / scale), "p_out": min(1.0, 0.0040 / scale)},
    }
    return make_hetero_sbm_dataset(
        name="ogbn-mag-mini",
        num_nodes=num_nodes,
        num_classes=8,
        feature_dim=128,
        relation_specs=relation_specs,
        signal=1.0,
        noise=2.0,
        train_frac=0.4,
        val_frac=0.2,
        test_frac=0.4,
        seed=seed,
    )


_REGISTRY: Dict[str, Callable[..., NodeClassificationDataset]] = {
    "ogbn-products-mini": ogbn_products_mini,
    "ogbn-papers-mini": ogbn_papers_mini,
    "ogbn-mag-mini": ogbn_mag_mini,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(_REGISTRY)


def get_dataset(name: str, **kwargs) -> NodeClassificationDataset:
    """Instantiate a dataset by name (``scale=…`` and ``seed=…`` forwarded)."""
    if name not in _REGISTRY:
        raise KeyError(f"Unknown dataset {name!r}; available: {available_datasets()}")
    return _REGISTRY[name](**kwargs)
