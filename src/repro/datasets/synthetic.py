"""Synthetic node-classification datasets.

The paper evaluates on OGB node-classification graphs (ogbn-products,
ogbn-papers100M, ogbn-mag), which cannot be downloaded in this offline
environment.  The generators here produce stochastic-block-model graphs with
class-correlated Gaussian features, which preserve the properties the
experiments rely on:

* homophily — neighbours tend to share labels, so message passing helps and
  Correct & Smooth / label propagation give an extra boost;
* a feature signal that is informative but noisy, so GNN accuracy sits well
  below 100 % and differences between models/configurations remain visible;
* train/validation/test node splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.graph.generators import stochastic_block_model
from repro.graph.hetero import HeteroGraph
from repro.utils.seed import temp_seed
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class NodeClassificationDataset:
    """A graph with features, labels, and train/val/test node splits."""

    name: str
    graph: Graph
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    num_classes: int
    metadata: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    def train_indices(self) -> np.ndarray:
        return np.where(self.train_mask)[0]

    def val_indices(self) -> np.ndarray:
        return np.where(self.val_mask)[0]

    def test_indices(self) -> np.ndarray:
        return np.where(self.test_mask)[0]

    def attach_to_graph(self) -> None:
        """Copy features/labels/masks into ``graph.ndata`` so sharding carries them."""
        self.graph.set_ndata("feat", self.features)
        self.graph.set_ndata("label", self.labels)
        self.graph.set_ndata("train_mask", self.train_mask)
        self.graph.set_ndata("val_mask", self.val_mask)
        self.graph.set_ndata("test_mask", self.test_mask)

    def summary(self) -> Dict[str, float]:
        """Dataset statistics in the style of the paper's Table 1."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_features": self.feature_dim,
            "num_classes": self.num_classes,
            "train_nodes": int(self.train_mask.sum()),
            "val_nodes": int(self.val_mask.sum()),
            "test_nodes": int(self.test_mask.sum()),
        }


@dataclass
class HeteroNodeClassificationDataset(NodeClassificationDataset):
    """Heterogeneous variant: ``graph`` is replaced by a :class:`HeteroGraph`."""

    hetero_graph: Optional[HeteroGraph] = None

    def attach_to_graph(self) -> None:
        target = self.hetero_graph if self.hetero_graph is not None else self.graph
        target.set_ndata("feat", self.features)
        target.set_ndata("label", self.labels)
        target.set_ndata("train_mask", self.train_mask)
        target.set_ndata("val_mask", self.val_mask)
        target.set_ndata("test_mask", self.test_mask)


# --------------------------------------------------------------------------- #
# feature / split generation helpers
# --------------------------------------------------------------------------- #
def class_correlated_features(labels: np.ndarray, num_classes: int, feature_dim: int,
                              signal: float = 1.0, noise: float = 1.0,
                              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gaussian features whose class means are separated by ``signal``."""
    rng = rng or np.random.default_rng(0)
    centers = rng.normal(0.0, signal, size=(num_classes, feature_dim))
    feats = centers[labels] + rng.normal(0.0, noise, size=(len(labels), feature_dim))
    return feats.astype(np.float32)


def random_split(num_nodes: int, train_frac: float, val_frac: float, test_frac: float,
                 rng: Optional[np.random.Generator] = None):
    """Disjoint boolean train/val/test masks with the requested fractions."""
    total = train_frac + val_frac + test_frac
    if total > 1.0 + 1e-9:
        raise ValueError(
            f"train+val+test fractions must not exceed 1.0, got {total:.3f}"
        )
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(num_nodes)
    n_train = int(round(train_frac * num_nodes))
    n_val = int(round(val_frac * num_nodes))
    n_test = int(round(test_frac * num_nodes))
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:n_train]] = True
    val_mask[order[n_train:n_train + n_val]] = True
    test_mask[order[n_train + n_val:n_train + n_val + n_test]] = True
    return train_mask, val_mask, test_mask


def make_sbm_dataset(name: str, num_nodes: int, num_classes: int, feature_dim: int,
                     p_in: float, p_out: float, signal: float = 1.0, noise: float = 1.5,
                     train_frac: float = 0.5, val_frac: float = 0.2, test_frac: float = 0.3,
                     seed: int = 0, add_self_loops: bool = True) -> NodeClassificationDataset:
    """Generate a homophilous SBM node-classification dataset."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    num_classes = check_positive_int(num_classes, "num_classes")
    feature_dim = check_positive_int(feature_dim, "feature_dim")
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    base = num_nodes // num_classes
    block_sizes = [base + (1 if c < num_nodes % num_classes else 0) for c in range(num_classes)]
    graph, labels = stochastic_block_model(block_sizes, p_in, p_out, seed=seed)
    if add_self_loops:
        graph = graph.add_self_loops()
    with temp_seed(seed + 1) as rng:
        features = class_correlated_features(labels, num_classes, feature_dim,
                                             signal=signal, noise=noise, rng=rng)
        train_mask, val_mask, test_mask = random_split(
            graph.num_nodes, train_frac, val_frac, test_frac, rng=rng
        )
    dataset = NodeClassificationDataset(
        name=name,
        graph=graph,
        features=features,
        labels=labels.astype(np.int64),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        num_classes=num_classes,
        metadata={"p_in": p_in, "p_out": p_out, "signal": signal, "noise": noise, "seed": seed},
    )
    dataset.attach_to_graph()
    return dataset


def make_hetero_sbm_dataset(name: str, num_nodes: int, num_classes: int, feature_dim: int,
                            relation_specs: Dict[str, Dict[str, float]],
                            signal: float = 1.0, noise: float = 1.5,
                            train_frac: float = 0.5, val_frac: float = 0.2,
                            test_frac: float = 0.3, seed: int = 0
                            ) -> HeteroNodeClassificationDataset:
    """Generate a heterogeneous dataset: one SBM edge set per relation.

    ``relation_specs`` maps relation name → ``{"p_in": …, "p_out": …}``; each
    relation is generated independently over the same node/label assignment,
    so different relations carry differently-strong homophily signal (as in
    ogbn-mag, where "cites" edges are far more informative than "has_topic").
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    base = num_nodes // num_classes
    block_sizes = [base + (1 if c < num_nodes % num_classes else 0) for c in range(num_classes)]
    relations = {}
    labels = None
    for index, (rel_name, spec) in enumerate(relation_specs.items()):
        graph_r, labels = stochastic_block_model(
            block_sizes, spec["p_in"], spec["p_out"], seed=seed + index
        )
        relations[rel_name] = (graph_r.src, graph_r.dst)
    hetero = HeteroGraph(int(sum(block_sizes)), relations)
    with temp_seed(seed + 100) as rng:
        features = class_correlated_features(labels, num_classes, feature_dim,
                                             signal=signal, noise=noise, rng=rng)
        train_mask, val_mask, test_mask = random_split(
            hetero.num_nodes, train_frac, val_frac, test_frac, rng=rng
        )
    homogeneous, _ = hetero.to_homogeneous()
    dataset = HeteroNodeClassificationDataset(
        name=name,
        graph=homogeneous,
        features=features,
        labels=labels.astype(np.int64),
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        num_classes=num_classes,
        metadata={"seed": seed, "num_relations": len(relation_specs)},
        hetero_graph=hetero,
    )
    dataset.attach_to_graph()
    return dataset
