"""Online inference serving: one configured surface over three backends.

Build servers with :func:`create_server`: a :class:`ServingConfig` selects
``backend="local"`` (one machine holding the whole graph —
:class:`InferenceServer`), ``backend="distributed"`` (a micro-batching
frontend over per-shard worker threads —
:class:`DistributedInferenceServer`), or ``backend="mp"`` (the same
frontend over one forked worker *process* per shard —
:class:`MultiprocessInferenceServer`), and all implement
:class:`ServerProtocol`
(``start/stop/predict/predict_async/update/stats/version``) with one
documented ``stats()`` shape.

See ``docs/serving.md`` for the request lifecycle, micro-batch window
semantics, cache-consistency rules, the distributed request path, and the
thread-vs-process backend trade.
"""

from repro.serving.cache import EmbeddingCache
from repro.serving.config import ServerProtocol, ServingConfig
from repro.serving.server import InferenceServer
from repro.serving.distributed import DistributedInferenceServer
from repro.serving.mp_server import MultiprocessInferenceServer
from repro.serving.factory import create_server

__all__ = [
    "EmbeddingCache",
    "InferenceServer",
    "DistributedInferenceServer",
    "MultiprocessInferenceServer",
    "ServerProtocol",
    "ServingConfig",
    "create_server",
]
