"""Online inference serving: micro-batching server + historical-embedding cache.

See ``docs/serving.md`` for the request lifecycle, micro-batch window
semantics, and the cache-consistency rules.
"""

from repro.serving.cache import EmbeddingCache
from repro.serving.server import InferenceServer

__all__ = ["EmbeddingCache", "InferenceServer"]
