"""Online inference serving: one configured surface over two backends.

Build servers with :func:`create_server`: a :class:`ServingConfig` selects
``backend="local"`` (one machine holding the whole graph —
:class:`InferenceServer`) or ``backend="distributed"`` (a micro-batching
frontend over per-shard workers — :class:`DistributedInferenceServer`), and
both implement :class:`ServerProtocol`
(``start/stop/predict/predict_async/update/stats/version``) with one
documented ``stats()`` shape.

See ``docs/serving.md`` for the request lifecycle, micro-batch window
semantics, cache-consistency rules, and the distributed request path.
"""

from repro.serving.cache import EmbeddingCache
from repro.serving.config import ServerProtocol, ServingConfig
from repro.serving.server import InferenceServer
from repro.serving.distributed import DistributedInferenceServer
from repro.serving.factory import create_server

__all__ = [
    "EmbeddingCache",
    "InferenceServer",
    "DistributedInferenceServer",
    "ServerProtocol",
    "ServingConfig",
    "create_server",
]
