"""Distributed serving: one micro-batching frontend over per-shard workers.

:class:`DistributedInferenceServer` is the serving face of the paper's
partitioned world: the graph lives as per-worker :class:`~repro.partition.
shard.ShardedGraph` shards (each holding only its owned nodes' rows), and a
request's receptive field is computed cooperatively — every worker executes
the restricted grid over the destinations *it owns* and publishes each
layer's owned activation rows for peers, which fetch only the frontier rows
their own byte-bounded :class:`~repro.serving.cache.EmbeddingCache` missed
(:func:`repro.sample.inference.distributed_restricted_logits`).

The request path reuses the single-machine micro-batching frontend
(:class:`~repro.serving.server._MicroBatchServerBase`): client threads call
``predict(node_ids)``, a ``window_ms`` of requests coalesces into one
deduplicated ascending seed set, and the frontend dispatches that seed set
to every shard worker thread (routing *within* the batch is by the
:class:`~repro.partition.book.PartitionBook` — each worker computes and
returns exactly its owned seeds' logit rows, scattered back into request
order by the frontend).

Every served logit is **bit-identical** to the single-machine
:class:`~repro.serving.InferenceServer` on the same graph: the per-worker
restricted blocks reduce each destination in the single-machine order (see
``distributed_restricted_logits``), and cached rows are bit-identical to
recomputation.  ``update()`` applies the model mutation on the frontend
thread (worker threads are idle between batches) and bumps every worker's
cache version; a feature-store ``replace()`` is picked up by each worker's
store-version fold-in at the next batch, so stale activations are never
served from any shard.

Construct through :func:`repro.serving.create_server` with
``ServingConfig(backend="distributed")``.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.dist_graph import DistributedGraph
from repro.partition.shard import ShardedGraph
from repro.sample.inference import distributed_restricted_logits
from repro.serving.cache import EmbeddingCache
from repro.serving.config import ServingConfig
from repro.serving.server import _STOP, _MicroBatchServerBase
from repro.store import DenseStore, FeatureStore, PartitionedKVStore
from repro.distributed.thread_backend import create_thread_communicators


def _aggregate_counters(dicts: List[dict]) -> Optional[dict]:
    """Sum per-worker counter dicts (``version`` by max, strings by first)."""
    dicts = [d for d in dicts if d]
    if not dicts:
        return None
    out: dict = {}
    for d in dicts:
        for k, v in d.items():
            if isinstance(v, str):
                out.setdefault(k, v)
            elif k == "version":
                out[k] = max(out.get(k, v), v)
            else:
                out[k] = out.get(k, 0) + v
    return out


def _build_worker_store(spec, config: ServingConfig, book, rank: int,
                        comm) -> FeatureStore:
    """Materialize rank ``rank``'s :class:`FeatureStore` from a checked spec.

    ``spec`` is whatever :meth:`_ShardServerBase._check_features` returned —
    a shared global store, a per-worker store list, the global matrix, or a
    per-worker owned-row matrix list.  Called once per worker; with
    ``config.feature_store="kv"`` the returned
    :class:`~repro.store.PartitionedKVStore` publishes this rank's owned
    rows through ``comm`` at construction (peers fetch them on demand), so
    all workers must build their stores concurrently.
    """
    if isinstance(spec, FeatureStore):
        return spec
    if isinstance(spec, list) and spec and isinstance(spec[0], FeatureStore):
        return spec[rank]
    if isinstance(spec, np.ndarray):
        own = spec[book.nodes_of(rank)]
    else:  # per-worker owned-row matrices
        own = spec[rank]
    if config.feature_store == "kv":
        return PartitionedKVStore(
            comm, book, own, name="serving",
            cache_bytes=config.feature_cache_bytes,
        )
    if isinstance(spec, np.ndarray):
        matrix = spec
    else:
        matrix = np.empty((book.num_nodes, spec[0].shape[1]),
                          dtype=spec[0].dtype)
        for p in range(book.num_parts):
            matrix[book.nodes_of(p)] = spec[p]
    return DenseStore(matrix)


class _ShardServerBase(_MicroBatchServerBase):
    """Shared frontend of the shard-backed serving backends.

    Both the thread-backed :class:`DistributedInferenceServer` and the
    process-backed :class:`~repro.serving.mp_server.
    MultiprocessInferenceServer` serve a shard list over the same
    micro-batching frontend; this base holds what is identical between
    them — shard/book validation, features-spec checking, and the scatter
    of per-worker owned logit rows back into batch seed order.
    """

    def __init__(self, model, shards: Sequence[ShardedGraph], features,
                 config: ServingConfig):
        if config.backend != self.backend:
            raise ValueError(
                f"{type(self).__name__} is the {self.backend} backend; "
                f"config.backend={config.backend!r} (use "
                f"repro.serving.create_server to dispatch on the backend)"
            )
        shards = list(shards)
        if not shards or not all(isinstance(s, ShardedGraph) for s in shards):
            raise ValueError(
                "shards must be a non-empty sequence of ShardedGraph "
                "(what repro.partition.shard.create_shards returns)"
            )
        book = shards[0].book
        if len(shards) != book.num_parts or any(
            s.book is not book or s.rank != p for p, s in enumerate(shards)
        ):
            raise ValueError(
                "shards must cover every partition of one shared "
                "PartitionBook, in rank order"
            )
        super().__init__(model, book.num_nodes, config)
        self.shards = shards
        self.book = book
        self._world = len(shards)
        self._features_spec = self._check_features(features)

    # ------------------------------------------------------------------ #
    # feature materialization
    # ------------------------------------------------------------------ #
    def _check_features(self, features):
        """Early shape/type validation of the features spec (pre-cluster)."""
        book = self.book
        if isinstance(features, FeatureStore):
            if features.num_rows != book.num_nodes:
                raise ValueError(
                    f"feature store must cover all {book.num_nodes} global "
                    f"rows, got {features.num_rows}"
                )
            return features
        if isinstance(features, np.ndarray):
            if features.ndim != 2 or features.shape[0] != book.num_nodes:
                raise ValueError(
                    f"features must be (num_nodes={book.num_nodes}, dim), "
                    f"got shape {features.shape}"
                )
            return features
        items = list(features)
        if len(items) != self._world:
            raise ValueError(
                f"per-worker features need one entry per shard "
                f"({self._world}), got {len(items)}"
            )
        if all(isinstance(item, FeatureStore) for item in items):
            for item in items:
                if item.num_rows != book.num_nodes:
                    raise ValueError(
                        f"per-worker stores must each cover all "
                        f"{book.num_nodes} global rows, got {item.num_rows}"
                    )
            return items
        arrays = [np.asarray(item) for item in items]
        for p, rows in enumerate(arrays):
            expected = len(book.nodes_of(p))
            if rows.ndim != 2 or rows.shape[0] != expected:
                raise ValueError(
                    f"worker {p} owns {expected} nodes but its feature "
                    f"entry has shape {rows.shape}"
                )
        return arrays

    def _features_dtype(self):
        """Served logit dtype, readable from the spec before any cluster is up."""
        spec = self._features_spec
        if isinstance(spec, (FeatureStore, np.ndarray)):
            return spec.dtype
        return spec[0].dtype

    def _output_dtype(self):
        return self._features_dtype()

    # ------------------------------------------------------------------ #
    # batch assembly
    # ------------------------------------------------------------------ #
    def _scatter_owned(self, seeds: np.ndarray, results):
        """Merge per-worker ``(owned_seeds, rows, input_layer)`` results.

        Every worker returns the logit rows of the batch seeds *it owns*
        (in ascending owned-seed order); scattering them back by
        ``searchsorted`` rebuilds the batch's seed order.  Returns the
        ``(logits, input_layer)`` pair :meth:`_compute` must produce.
        """
        out = None
        for owned_ids, rows, _ in results:
            if rows is None:
                continue
            if out is None:
                out = np.empty((len(seeds), rows.shape[1]), dtype=rows.dtype)
            out[np.searchsorted(seeds, owned_ids)] = rows
        return out, results[0][2]


class DistributedInferenceServer(_ShardServerBase):
    """Serve ``predict(node_ids)`` over a partitioned graph.

    Parameters
    ----------
    model:
        A trained module exposing ``num_layers`` and ``forward_layer`` —
        shared by all shard worker threads (safe: ``eval()``-mode layers
        are stateless in their forward pass); mutate it only through
        :meth:`update`.
    shards:
        One :class:`~repro.partition.shard.ShardedGraph` per worker, in
        rank order, all sharing one partition book (what
        :func:`repro.partition.shard.create_shards` returns).
    features:
        Any of: the global ``(num_nodes, dim)`` feature matrix; one
        :class:`~repro.store.FeatureStore` covering the global rows (used
        as-is, shared by all workers); a per-worker list of owned-row
        matrices (``shards[p]``'s rows in local order); or a per-worker
        list of global-coverage stores.  With
        ``config.feature_store="kv"`` matrices become per-worker
        :class:`~repro.store.PartitionedKVStore`\\ s (owned rows resident,
        remote rows pulled through a hot-row cache); ``"dense"`` shares one
        dense matrix.
    config:
        A :class:`~repro.serving.ServingConfig` with
        ``backend="distributed"``.

    The cluster (thread-backend communicators, per-worker
    :class:`~repro.core.dist_graph.DistributedGraph` handles, feature
    stores, embedding caches, and worker threads) is brought up by
    :meth:`start` and torn down by :meth:`stop`.
    """

    backend = "distributed"

    def __init__(
        self,
        model,
        shards: Sequence[ShardedGraph],
        features,
        config: Optional[ServingConfig] = None,
    ):
        if config is None:
            config = ServingConfig(backend="distributed")
        super().__init__(model, shards, features, config)
        self._comms = None
        self._shared_store = None
        self._dist_graphs: List[DistributedGraph] = []
        self._stores: List[FeatureStore] = []
        self._caches: List[Optional[EmbeddingCache]] = []
        self._own_kv_stores: List[PartitionedKVStore] = []
        self._job_queues: List["queue.Queue"] = []
        self._workers: List[threading.Thread] = []
        self._version_counter = 1

    # ------------------------------------------------------------------ #
    # feature materialization
    # ------------------------------------------------------------------ #
    def _materialize_stores(self) -> List[FeatureStore]:
        spec = self._features_spec
        config = self.config
        book = self.book
        if isinstance(spec, FeatureStore):
            return [spec] * self._world
        if isinstance(spec, list) and spec and isinstance(spec[0], FeatureStore):
            return list(spec)
        if isinstance(spec, np.ndarray):
            per_worker = [spec[book.nodes_of(p)] for p in range(self._world)]
        else:  # per-worker owned-row matrices
            per_worker = spec
        if config.feature_store == "kv":
            stores: List[FeatureStore] = []
            for p in range(self._world):
                kv = PartitionedKVStore(
                    self._comms[p], book, per_worker[p], name="serving",
                    cache_bytes=config.feature_cache_bytes,
                )
                self._own_kv_stores.append(kv)
                stores.append(kv)
            return stores
        if isinstance(spec, np.ndarray):
            matrix = spec
        else:
            matrix = np.empty(
                (book.num_nodes, per_worker[0].shape[1]),
                dtype=per_worker[0].dtype,
            )
            for p in range(self._world):
                matrix[book.nodes_of(p)] = per_worker[p]
        shared = DenseStore(matrix)
        return [shared] * self._world

    # ------------------------------------------------------------------ #
    # cluster lifecycle
    # ------------------------------------------------------------------ #
    def _on_start(self) -> None:
        config = self.config
        self._comms, self._shared_store = create_thread_communicators(
            self._world, timeout_s=config.comm_timeout_s
        )
        self._stores = self._materialize_stores()
        self._dist_graphs = [None] * self._world
        self._caches = [
            EmbeddingCache(config.byte_budget, admission=config.cache_admission)
            if config.byte_budget is not None else None
            for _ in range(self._world)
        ]
        self._job_queues = [queue.Queue() for _ in range(self._world)]
        # DistributedGraph construction runs a collective halo-routing
        # exchange, so every worker must build its handle concurrently on
        # its own thread; the futures surface startup failures here.
        init_futures: List[Future] = [Future() for _ in range(self._world)]
        self._workers = [
            threading.Thread(
                target=self._worker_loop, args=(p, init_futures[p]),
                name=f"serving-shard-{p}", daemon=True,
            )
            for p in range(self._world)
        ]
        for thread in self._workers:
            thread.start()
        for future in init_futures:
            future.result(config.comm_timeout_s)

    def _on_stop(self) -> None:
        for jobs in self._job_queues:
            jobs.put(_STOP)
        for thread in self._workers:
            thread.join(self.config.stop_timeout_s)
        for kv in self._own_kv_stores:
            kv.release()

    def _worker_loop(self, rank: int, init_future: Future) -> None:
        try:
            dist_graph = DistributedGraph(
                self.shards[rank], self._comms[rank],
                restriction_cache_capacity=self.config.restriction_slots,
            )
        except BaseException as exc:
            try:
                self._shared_store.abort(
                    f"serving worker {rank} failed to start: {exc!r}"
                )
            except BaseException:
                pass
            init_future.set_exception(exc)
            return
        self._dist_graphs[rank] = dist_graph
        init_future.set_result(rank)
        store = self._stores[rank]
        cache = self._caches[rank]
        jobs = self._job_queues[rank]
        store_version_seen = store.version
        while True:
            job = jobs.get()
            if job is _STOP:
                break
            seeds, future = job
            try:
                # Store-version fold-in (as on the local backend): a
                # replace()/embedding step invalidates this shard's cached
                # activations exactly once, at the next batch boundary.
                if store.version != store_version_seen:
                    store_version_seen = store.version
                    if cache is not None:
                        cache.bump_version()
                result = distributed_restricted_logits(
                    dist_graph, self.model, store, seeds, cache=cache,
                )
                future.set_result(result)
            except BaseException as exc:
                # Unblock peers stuck in this batch's collectives, then
                # surface the failure to the frontend.
                try:
                    self._shared_store.abort(
                        f"serving worker {rank} failed: {exc!r}"
                    )
                except BaseException:
                    pass
                if not future.done():
                    future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # backend hooks
    # ------------------------------------------------------------------ #
    def _compute(self, seeds: np.ndarray):
        futures: List[Future] = []
        for jobs in self._job_queues:
            future: Future = Future()
            jobs.put((seeds, future))
            futures.append(future)
        results = [f.result(self.config.comm_timeout_s) for f in futures]
        return self._scatter_owned(seeds, results)

    def _apply_update(self, apply_fn: Optional[Callable]) -> int:
        # Runs on the frontend serve-loop thread with no batch in flight —
        # every worker thread is idle on its job queue, so the shared model
        # and per-worker caches can be mutated directly.
        if apply_fn is not None:
            apply_fn(self.model)
            self.model.eval()
        self._version_counter += 1
        for cache in self._caches:
            if cache is not None:
                cache.bump_version()
        return self.version

    @property
    def version(self) -> int:
        versions = [self._version_counter] + [
            cache.version for cache in self._caches if cache is not None
        ]
        return max(versions)

    def _backend_stats(self) -> dict:
        workers = [
            {
                "rank": p,
                "embedding_cache": (
                    self._caches[p].stats()
                    if p < len(self._caches) and self._caches[p] is not None
                    else None
                ),
                "feature_store": (
                    self._stores[p].stats() or None
                    if p < len(self._stores) else None
                ),
                "comm": self._comms[p].stats.serving_snapshot(),
            }
            for p in range(self._world if self._comms is not None else 0)
        ]
        return {
            "store_version": (
                max(store.version for store in self._stores)
                if self._stores else None
            ),
            "embedding_cache": _aggregate_counters(
                [w["embedding_cache"] for w in workers]
            ),
            "feature_store": _aggregate_counters(
                [w["feature_store"] for w in workers]
            ),
            "workers": workers,
        }
