"""Serving configuration and the server protocol shared by both backends.

One :class:`ServingConfig` (mirroring :class:`repro.training.TrainingConfig`)
carries every serving knob — the micro-batching window, the embedding-cache
byte budget and admission policy, timeouts, and the ``backend`` selector —
and :func:`repro.serving.create_server` turns it plus a model, a graph (or
shard list) and features (or a feature store) into the right server.  Both
:class:`repro.serving.InferenceServer` and
:class:`repro.serving.DistributedInferenceServer` implement
:class:`ServerProtocol`, so callers can hold either behind one type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np

_BACKENDS = ("local", "distributed", "mp")
_ADMISSIONS = ("none", "frequency")
_FEATURE_STORES = ("dense", "kv")


@dataclass(frozen=True)
class ServingConfig:
    """Every serving knob in one (frozen, validated) place.

    The defaults reproduce the PR 7 single-machine server: a 2 ms
    coalescing window, no embedding cache, local backend.
    """

    #: ``"local"`` serves one machine holding the whole graph;
    #: ``"distributed"`` fronts a partitioned graph with per-shard worker
    #: threads; ``"mp"`` fronts the same shards with one forked worker
    #: *process* per shard (real parallelism, queue-serialized payloads —
    #: see ``docs/serving.md`` for the trade).
    backend: str = "local"
    #: micro-batching window: requests arriving within this many
    #: milliseconds of each other coalesce into one deduplicated execution
    #: (``0`` disables coalescing — one request per execution).
    window_ms: float = 2.0
    #: cap on the deduplicated seed count of one coalesced batch.
    max_batch_seeds: int = 1024
    #: bound on queued requests before ``predict_async`` rejects.
    max_pending: int = 4096
    #: embedding-cache capacity in bytes (``None`` disables the cache).
    #: Distributed servers give *each* worker a cache of this size.
    byte_budget: Optional[int] = None
    #: embedding-cache admission policy: ``"none"`` (plain LRU) or
    #: ``"frequency"`` (TinyLFU-style gate).
    cache_admission: str = "none"
    #: seconds a synchronous ``predict`` waits before raising.
    predict_timeout_s: float = 30.0
    #: seconds ``stop`` waits for the worker thread(s) to drain and join.
    stop_timeout_s: float = 30.0
    #: distributed only — communicator timeout for collectives and fetches.
    comm_timeout_s: float = 120.0
    #: distributed only — how each worker holds its shard's features:
    #: ``"kv"`` wraps them in a :class:`repro.store.PartitionedKVStore`
    #: (owned rows local, remote rows pulled and hot-cached), ``"dense"``
    #: shares one dense matrix.  Ignored when a ready-made store (or one
    #: per worker) is passed to :func:`repro.serving.create_server`.
    feature_store: str = "kv"
    #: distributed only — per-worker byte budget of the KV store's hot-row
    #: cache (``feature_store="kv"``).
    feature_cache_bytes: int = 1 << 22
    #: distributed only — how many served seed-set restrictions each worker
    #: keeps prepared (walk levels + restricted blocks) for reuse across
    #: batches.
    restriction_slots: int = 16

    def __post_init__(self):
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {self.window_ms}")
        if self.max_batch_seeds < 1:
            raise ValueError(
                f"max_batch_seeds must be >= 1, got {self.max_batch_seeds}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.byte_budget is not None and self.byte_budget < 1:
            raise ValueError(
                f"byte_budget must be None or >= 1, got {self.byte_budget}"
            )
        if self.cache_admission not in _ADMISSIONS:
            raise ValueError(
                f"cache_admission must be one of {_ADMISSIONS}, "
                f"got {self.cache_admission!r}"
            )
        for name in ("predict_timeout_s", "stop_timeout_s", "comm_timeout_s"):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.feature_store not in _FEATURE_STORES:
            raise ValueError(
                f"feature_store must be one of {_FEATURE_STORES}, "
                f"got {self.feature_store!r}"
            )
        if self.feature_cache_bytes < 0:
            raise ValueError(
                f"feature_cache_bytes must be >= 0, "
                f"got {self.feature_cache_bytes}"
            )
        if self.restriction_slots < 1:
            raise ValueError(
                f"restriction_slots must be >= 1, got {self.restriction_slots}"
            )
        # Cross-field combinations that would only fail (or silently do
        # nothing) deep inside a running server are rejected here instead.
        if self.cache_admission != "none" and self.byte_budget is None:
            raise ValueError(
                f"cache_admission={self.cache_admission!r} configures the "
                f"embedding cache's admission gate, but byte_budget=None "
                f"disables the cache entirely; set a byte_budget or leave "
                f"cache_admission='none'"
            )
        if self.predict_timeout_s * 1e3 <= self.window_ms:
            raise ValueError(
                f"predict_timeout_s ({self.predict_timeout_s}s) must exceed "
                f"the coalescing window ({self.window_ms}ms) or every "
                f"synchronous predict times out before its batch can close"
            )


@runtime_checkable
class ServerProtocol(Protocol):
    """The serving surface both backends implement.

    Lifecycle (``start``/``stop``/``running``, context-manager entry),
    prediction (synchronous ``predict`` and future-returning
    ``predict_async``), online weight updates (``update`` — serialized
    behind in-flight batches, invalidates every cache), and introspection
    (``stats`` in the documented shared shape, monotonic ``version``).
    """

    def start(self) -> "ServerProtocol": ...

    def stop(self) -> None: ...

    @property
    def running(self) -> bool: ...

    def predict(self, node_ids: Any) -> np.ndarray: ...

    def predict_async(self, node_ids: Any) -> Any: ...

    def update(self, apply_fn: Any) -> int: ...

    def stats(self) -> dict: ...

    @property
    def version(self) -> int: ...
