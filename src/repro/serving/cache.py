"""Historical-embedding cache: byte-bounded LRU of per-node layer activations.

The serving hot path recomputes a request's full receptive field from raw
features on every batch.  But in ``eval()`` mode every activation is a pure
function of ``(model version, graph, node id, layer)`` — BatchNorm applies
running statistics, Dropout is the identity, and every compacted block
preserves complete in-neighbourhoods — so the layer-``l`` activation of node
``v`` computed inside *any* request batch is **bit-identical** to the value
any other batch (or the full-graph forward) would compute.  That makes
activations safely memoizable: :class:`EmbeddingCache` keeps an LRU of rows
keyed by ``(version, layer, node id)``, and the server truncates a request's
receptive-field walk at the deepest layer whose entire required node set is
cached (see :meth:`repro.serving.InferenceServer.predict`), feeding the
cached rows in as the partial-depth pipeline's input.

Layer indices follow the MFG mask convention: layer ``l`` holds the *input*
activations of conv layer ``l``; layer ``num_layers`` holds the logits, so a
fully cached seed set skips compute entirely.  Layer ``0`` (raw features) is
never cached — the server already holds the feature matrix.

Consistency is by **explicit version bump**: mutating the model (or graph)
without calling :meth:`bump_version` is a contract violation.  A bump drops
every entry eagerly (their memory is reclaimed immediately) and advances the
version stamp in the key, so even a racing reader can never mix activations
across versions.

All methods are lock-protected; the server mutates the cache from its single
worker thread while ``stats()`` may be read from any client thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int


class EmbeddingCache:
    """Byte-bounded LRU of per-node activation rows.

    Parameters
    ----------
    capacity_bytes:
        Bound on the summed ``nbytes`` of cached rows.  Inserting beyond it
        evicts least-recently-used rows until the cache fits again (a single
        batch larger than the whole capacity simply does not stick).
    admission:
        ``"none"`` (default) admits every inserted row, evicting LRU rows to
        make room — one large scan can flush the whole working set.
        ``"frequency"`` adds a TinyLFU-style gate: each *requested*
        ``(layer, node)`` feeds a frequency sketch, and once the cache is
        full a new row is admitted only if it has been requested more often
        than the LRU victim it would displace.  Cold one-off rows bounce off
        the gate (counted in ``rejected_admissions``) instead of evicting
        hot ones, which lifts the hit rate under skewed request mixes.

    Notes
    -----
    Lookups are all-or-nothing per ``(layer, node set)``: partial coverage
    returns ``None`` (counted as misses for the absent rows), because a
    partially cached frontier cannot truncate the receptive-field walk —
    the missing rows would still need their full subtree.
    """

    #: total sketch mass that triggers the TinyLFU aging halving — keeps the
    #: sketch a sliding estimate of *recent* frequency and bounds its size.
    FREQ_AGING_THRESHOLD = 100_000

    def __init__(self, capacity_bytes: int, admission: str = "none"):
        self.capacity_bytes = check_positive_int(capacity_bytes, "capacity_bytes")
        if admission not in ("none", "frequency"):
            raise ValueError(
                f"admission must be 'none' or 'frequency', got {admission!r}"
            )
        self.admission = admission
        self.version = 1
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejected_admissions = 0
        self.current_bytes = 0
        self._lock = threading.Lock()
        self._rows: "OrderedDict[Tuple[int, int, int], np.ndarray]" = OrderedDict()
        # Version-independent request-frequency sketch (layer, node) -> count;
        # only maintained when the admission gate is on.
        self._freq: Dict[Tuple[int, int], int] = {}
        self._freq_mass = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"EmbeddingCache(version={self.version}, rows={len(self._rows)}, "
            f"bytes={self.current_bytes}/{self.capacity_bytes})"
        )

    # ------------------------------------------------------------------ #
    def lookup(self, layer: int, node_ids: np.ndarray) -> Optional[np.ndarray]:
        """All current-version layer-``layer`` rows of ``node_ids``, or ``None``.

        On full coverage every touched row is marked most-recently used and
        the stacked ``(len(node_ids), width)`` matrix is returned (a fresh
        array — callers may feed it straight into the forward pass).  Any
        missing row makes the whole lookup a miss.
        """
        version = self.version
        with self._lock:
            rows = self._rows
            if self.admission == "frequency":
                for node in node_ids:
                    self._record_request(layer, int(node))
            found = []
            missing = 0
            for node in node_ids:
                row = rows.get((version, layer, int(node)))
                if row is None:
                    missing += 1
                else:
                    found.append(row)
            if missing:
                self.misses += missing
                return None
            for node in node_ids:
                rows.move_to_end((version, layer, int(node)))
            self.hits += len(found)
            if not found:
                return None
            return np.stack(found, axis=0)

    def lookup_partial(
        self, layer: int, node_ids: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-row probe: ``(found_mask, hit_rows)`` for ``node_ids``.

        Unlike :meth:`lookup`, partial coverage is useful here: the
        distributed serving path fetches only the *missed* halo rows from
        the owning peer, so every hit is wire traffic saved even when the
        set is not fully covered.  ``found_mask[i]`` says whether row ``i``
        was cached; ``hit_rows`` stacks the hit rows in probe order (``None``
        when nothing hit).  Hits are marked most-recently-used and counted,
        and (under the frequency gate) every probe feeds the sketch.
        """
        version = self.version
        found_mask = np.zeros(len(node_ids), dtype=bool)
        with self._lock:
            rows = self._rows
            if self.admission == "frequency":
                for node in node_ids:
                    self._record_request(layer, int(node))
            hit_rows = []
            for i, node in enumerate(node_ids):
                key = (version, layer, int(node))
                row = rows.get(key)
                if row is None:
                    self.misses += 1
                else:
                    rows.move_to_end(key)
                    self.hits += 1
                    found_mask[i] = True
                    hit_rows.append(row)
            if not hit_rows:
                return found_mask, None
            return found_mask, np.stack(hit_rows, axis=0)

    def put(self, layer: int, node_ids: np.ndarray, values: np.ndarray) -> None:
        """Insert ``values[i]`` as layer-``layer`` activation of ``node_ids[i]``.

        Rows are copied (the caller's matrix stays untouched by later
        evictions); already-present rows are refreshed, not re-stored.
        """
        if len(node_ids) != len(values):
            raise ValueError(
                f"node_ids has {len(node_ids)} entries but values has "
                f"{len(values)} rows"
            )
        version = self.version
        gated = self.admission == "frequency"
        with self._lock:
            rows = self._rows
            for node, value in zip(node_ids, values):
                key = (version, layer, int(node))
                if key in rows:
                    rows.move_to_end(key)
                    continue
                if gated and not self._admit(key, value.nbytes):
                    self.rejected_admissions += 1
                    continue
                row = np.array(value, copy=True)
                rows[key] = row
                self.current_bytes += row.nbytes
                self.insertions += 1
            while self.current_bytes > self.capacity_bytes and rows:
                _, evicted = rows.popitem(last=False)
                self.current_bytes -= evicted.nbytes
                self.evictions += 1

    # ------------------------------------------------------------------ #
    def _record_request(self, layer: int, node: int) -> None:
        """Count one request against the frequency sketch (lock held)."""
        self._freq[(layer, node)] = self._freq.get((layer, node), 0) + 1
        self._freq_mass += 1
        if self._freq_mass >= self.FREQ_AGING_THRESHOLD:
            # TinyLFU aging: halve every count and drop the zeros, so the
            # sketch tracks recent popularity and stays bounded.
            aged = {k: c >> 1 for k, c in self._freq.items() if c >> 1}
            self._freq = aged
            self._freq_mass = sum(aged.values())

    def _admit(self, key: Tuple[int, int, int], nbytes: int) -> bool:
        """Whether a new row may enter a full cache (lock held).

        While there is spare capacity everything is admitted.  At capacity
        the candidate must be *strictly* more requested than the LRU victim
        it would displace — ties keep the incumbent (cheaper, and resists
        one-shot scans whose rows all have count 1).
        """
        if self.current_bytes + nbytes <= self.capacity_bytes or not self._rows:
            return True
        _, victim_layer, victim_node = next(iter(self._rows))
        candidate = self._freq.get((key[1], key[2]), 0)
        victim = self._freq.get((victim_layer, victim_node), 0)
        return candidate > victim

    def bump_version(self) -> int:
        """Invalidate everything: advance the version stamp, drop all rows.

        Call after *any* model (or graph) mutation; returns the new version.
        Counters other than ``current_bytes`` survive, so telemetry keeps
        accumulating across versions.
        """
        with self._lock:
            self.version += 1
            self.invalidations += 1
            self._rows.clear()
            self.current_bytes = 0
            return self.version

    def clear(self) -> None:
        """Drop all rows without advancing the version (e.g. between bench phases)."""
        with self._lock:
            self._rows.clear()
            self.current_bytes = 0

    def stats(self) -> Dict[str, int]:
        """Telemetry snapshot: hit/miss/insert/evict counters and byte usage."""
        with self._lock:
            return {
                "version": self.version,
                "admission": self.admission,
                "hits": self.hits,
                "misses": self.misses,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rejected_admissions": self.rejected_admissions,
                "rows": len(self._rows),
                "current_bytes": self.current_bytes,
                "capacity_bytes": self.capacity_bytes,
            }
