"""One serving entry point: dispatch a ServingConfig to the right backend."""

from __future__ import annotations

from typing import Optional

from repro.graph.graph import Graph
from repro.partition.shard import ShardedGraph
from repro.serving.config import ServingConfig
from repro.serving.distributed import DistributedInferenceServer
from repro.serving.mp_server import MultiprocessInferenceServer
from repro.serving.server import InferenceServer


def create_server(model, graph_or_shards, features_or_store,
                  config: Optional[ServingConfig] = None):
    """Build the server :class:`~repro.serving.ServingConfig` asks for.

    ``backend="local"`` takes a :class:`~repro.graph.graph.Graph` plus the
    feature matrix (or a :class:`~repro.store.FeatureStore`) and returns an
    :class:`~repro.serving.InferenceServer`.  ``backend="distributed"``
    and ``backend="mp"`` take the per-worker :class:`~repro.partition.
    shard.ShardedGraph` list (what :func:`repro.partition.shard.
    create_shards` returns) plus global or per-worker features and return
    a :class:`~repro.serving.DistributedInferenceServer` (shard worker
    threads) or a :class:`~repro.serving.MultiprocessInferenceServer`
    (one forked shard process each) respectively.  All implement
    :class:`~repro.serving.ServerProtocol`; none is started — call
    ``start()`` or use the returned server as a context manager.
    """
    if config is None:
        config = ServingConfig()
    if not isinstance(config, ServingConfig):
        raise ValueError(
            f"config must be a ServingConfig, got {type(config).__name__}"
        )
    if config.backend == "local":
        if not isinstance(graph_or_shards, Graph):
            hint = (
                " (a shard list needs backend='distributed')"
                if isinstance(graph_or_shards, (list, tuple)) else ""
            )
            raise ValueError(
                f"backend='local' serves a Graph, got "
                f"{type(graph_or_shards).__name__}{hint}"
            )
        return InferenceServer(model, graph_or_shards, features_or_store,
                               config=config)
    if isinstance(graph_or_shards, Graph):
        raise ValueError(
            f"backend={config.backend!r} serves a list of ShardedGraph "
            f"shards (see repro.partition.shard.create_shards), got a Graph"
        )
    if not isinstance(graph_or_shards, (list, tuple)) or not all(
        isinstance(s, ShardedGraph) for s in graph_or_shards
    ):
        raise ValueError(
            f"backend={config.backend!r} serves a list of ShardedGraph "
            f"shards, got {type(graph_or_shards).__name__}"
        )
    if config.backend == "mp":
        return MultiprocessInferenceServer(model, graph_or_shards,
                                           features_or_store, config=config)
    return DistributedInferenceServer(model, graph_or_shards,
                                      features_or_store, config=config)
