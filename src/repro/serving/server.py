"""Long-lived online inference server: micro-batched, cache-truncated predicts.

:class:`InferenceServer` is the serving half of the roadmap's north star: a
process-resident object that loads a trained model plus its graph and feature
matrix once, then answers ``predict(node_ids)`` requests from any number of
concurrent client threads.  The request hot path is the paper's core trick
run per batch: only the requested seeds' receptive fields are compiled
(:func:`repro.graph.mfg.build_mfg_pipeline`) and executed, never a full-graph
forward.

Three mechanisms shape the latency/throughput profile:

**Micro-batching.**  Requests land on a bounded queue consumed by one worker
thread.  The worker takes the first request, then keeps draining the queue
until ``window_ms`` elapses or ``max_batch_seeds`` requested seeds have
accumulated; the coalesced requests are deduplicated into one ascending seed
set, compiled into one pipeline, executed once, and the per-seed logit rows
are scattered back to each request's future.  ``window_ms=0`` disables
coalescing (strictly one request per execution — the sequential baseline the
serving benchmark compares against).

**Plan warmth.**  Pipeline blocks resolve their :class:`~repro.tensor.
edge_plan.EdgePlan` through the shared structural :class:`~repro.tensor.
edge_plan.PlanCache`, so a repeated request topology (same coalesced seed
set) pays **zero** plan builds — asserted in ``tests/test_serving.py`` and
visible in :meth:`InferenceServer.stats` under ``"plan_cache"``.

**Historical-embedding cache.**  With a cache ``byte_budget`` set, every
computed activation row is inserted into an :class:`~repro.serving.cache.
EmbeddingCache` keyed by ``(version, layer, node)``.  Each request batch
probes the cache from the deepest layer down during its receptive-field walk
and truncates the pipeline at the deepest fully-cached frontier
(``stop_at`` on :func:`build_mfg_pipeline`); a batch whose seeds all have
cached logits never builds a pipeline at all.  Cached rows are bit-identical
to recomputation (eval-mode activations are pure per-row functions), so
served logits stay **bit-identical** to ``model(graph, features)`` rows with
the cache on, off, cold, or warm.

Model updates go through :meth:`update`, which runs the mutation *on the
worker thread* (serialized between batches) and bumps the cache version —
requests enqueued before the update see the old weights and cache entries,
requests after see the new ones, and no batch ever mixes the two.

The micro-batching frontend (queue, coalescing loop, request/control
futures, telemetry) lives in :class:`_MicroBatchServerBase`, shared with the
distributed backend (:class:`repro.serving.distributed.
DistributedInferenceServer`); only the per-batch compute and the
update/version plumbing differ between backends.  Construct servers through
:class:`~repro.serving.ServingConfig` and
:func:`repro.serving.create_server`; the loose keyword-argument form of
``InferenceServer(...)`` remains as a one-release deprecated shim.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.graph.mfg import build_mfg_pipeline
from repro.sample.inference import check_layered_model
from repro.serving.cache import EmbeddingCache
from repro.serving.config import ServingConfig
from repro.store import DenseStore, as_feature_store
from repro.tensor import no_grad
from repro.tensor.edge_plan import shared_plan_cache
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_1d_int_array

#: queue sentinel shutting the worker down after all earlier items are served.
_STOP = object()


class _Predict:
    """One enqueued request: the validated ids and the future to resolve."""

    __slots__ = ("ids", "future")

    def __init__(self, ids: np.ndarray):
        self.ids = ids
        self.future: "Future[np.ndarray]" = Future()


class _Control:
    """An enqueued model-update: runs on the worker thread, bumps the version."""

    __slots__ = ("apply_fn", "future")

    def __init__(self, apply_fn: Optional[Callable]):
        self.apply_fn = apply_fn
        self.future: "Future[int]" = Future()


class _MicroBatchServerBase:
    """Micro-batching request frontend shared by both serving backends.

    Owns the bounded request queue, the coalescing serve loop, request /
    control futures, lifecycle (start / stop / context manager), and the
    shared ``stats()`` shape.  Backends provide:

    * :meth:`_compute` — logits of one deduplicated ascending seed set;
    * :meth:`_apply_update` — apply a model mutation and return the new
      version (runs on the serve-loop thread, serialized between batches);
    * :attr:`version` — the monotonic serving version;
    * :meth:`_backend_stats` — the backend section of :meth:`stats`;
    * :meth:`_on_start` / :meth:`_on_stop` — backend resource lifecycle.
    """

    #: ``stats()["backend"]`` discriminator; overridden per backend.
    backend = "local"

    def __init__(self, model, num_nodes: int, config: ServingConfig):
        self.num_layers = check_layered_model(model)
        self.model = model
        self.config = config
        self._num_nodes = int(num_nodes)
        self.window_s = float(config.window_ms) / 1e3
        self.max_batch_seeds = config.max_batch_seeds
        self._queue: "queue.Queue" = queue.Queue(maxsize=config.max_pending)
        self._thread: Optional[threading.Thread] = None
        self._accepting = False
        self._started = False
        self._stopped = False
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._served_requests = 0
        self._batches = 0
        self._seeds_executed = 0
        self._max_requests_in_batch = 0
        self._fast_path_batches = 0
        self._updates = 0
        #: how deep request batches truncated: input_layer -> batch count
        #: (0 = full-depth recompute, ``num_layers`` = all-logits fast path).
        self._frontier_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # backend hooks
    # ------------------------------------------------------------------ #
    def _compute(self, seeds: np.ndarray) -> Tuple[np.ndarray, int]:
        """``(logit rows, input_layer)`` of the ascending unique ``seeds``."""
        raise NotImplementedError

    def _apply_update(self, apply_fn: Optional[Callable]) -> int:
        """Apply ``apply_fn(model)``, invalidate caches, return the version."""
        raise NotImplementedError

    @property
    def version(self) -> int:
        """Current model/cache version (bumped by every :meth:`update`)."""
        raise NotImplementedError

    def _output_dtype(self):
        """Dtype of served logit rows (for empty-request results)."""
        raise NotImplementedError

    def _backend_stats(self) -> dict:
        """Backend section of :meth:`stats` (stores, caches, workers)."""
        raise NotImplementedError

    def _on_start(self) -> None:
        """Bring up backend resources before the serve loop starts."""

    def _on_stop(self) -> None:
        """Release backend resources after the serve loop has drained."""

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        """Spawn the serving worker (idempotent until :meth:`stop`)."""
        if self._stopped:
            raise RuntimeError(
                f"{type(self).__name__} cannot be restarted after stop()"
            )
        if self._thread is None:
            self.model.eval()
            self._on_start()
            self._accepting = True
            self._started = True
            self._thread = threading.Thread(
                target=self._serve_loop, name="inference-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Drain already-queued requests, then stop the worker."""
        if self._thread is None or self._stopped:
            self._stopped = True
            return
        if timeout is None:
            timeout = self.config.stop_timeout_s
        self._accepting = False
        self._queue.put(_STOP)
        self._thread.join(timeout)
        self._on_stop()
        self._stopped = True

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._accepting and self._thread is not None and self._thread.is_alive()

    def _check_running(self) -> None:
        if self.running:
            return
        name = type(self).__name__
        if not self._started:
            raise RuntimeError(
                f"{name} is not running — it was never started; call "
                f"start() (or use the server as a context manager) first"
            )
        raise RuntimeError(f"{name} is not running (call start())")

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def predict_async(self, node_ids, timeout: Optional[float] = None) -> "Future[np.ndarray]":
        """Enqueue a request; the future resolves to its ``(len(ids), C)`` logits.

        Rows follow the request's id order (duplicates included).  Blocks
        only when the request queue is full (backpressure), up to
        ``timeout`` seconds.
        """
        ids = check_1d_int_array(node_ids, "node_ids", max_value=self._num_nodes)
        self._check_running()
        item = _Predict(ids)
        if ids.size == 0:
            item.future.set_result(np.empty((0, 0), dtype=self._output_dtype()))
            return item.future
        try:
            self._queue.put(item, timeout=timeout)
        except queue.Full:
            raise RuntimeError(
                f"request queue full ({self._queue.maxsize} pending)"
            ) from None
        with self._stats_lock:
            self._requests += 1
        return item.future

    def predict(self, node_ids, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking :meth:`predict_async`; returns the logit rows."""
        if timeout is None:
            timeout = self.config.predict_timeout_s
        return self.predict_async(node_ids, timeout=timeout).result(timeout)

    def update(self, apply_fn: Optional[Callable] = None,
               timeout: Optional[float] = 30.0) -> int:
        """Apply a model mutation on the worker thread and invalidate caches.

        ``apply_fn(model)`` (if given) runs serialized between batches:
        requests enqueued before this call are served by the old model and
        cache version, requests after by the new ones.  Returns the new
        version number.  ``update()`` with no function is a pure version
        bump — e.g. after swapping the feature matrix's contents in place.
        """
        self._check_running()
        item = _Control(apply_fn)
        self._queue.put(item, timeout=timeout)
        return item.future.result(timeout)

    def bump_version(self, timeout: Optional[float] = 30.0) -> int:
        """Invalidate cached activations without touching the model."""
        return self.update(None, timeout=timeout)

    def stats(self) -> dict:
        """Telemetry snapshot in the shape shared by both backends.

        See ``docs/serving.md`` ("The stats() shape") for the documented
        key-by-key reference; the backend section comes from
        :meth:`_backend_stats` (``workers`` is ``None`` on the local
        backend, a per-worker list on the distributed one).
        """
        with self._stats_lock:
            snapshot = {
                "backend": self.backend,
                "running": self.running,
                "requests": self._requests,
                "served_requests": self._served_requests,
                "batches": self._batches,
                "seeds_executed": self._seeds_executed,
                "max_requests_in_batch": self._max_requests_in_batch,
                "fast_path_batches": self._fast_path_batches,
                "updates": self._updates,
                "frontier_layers": dict(sorted(self._frontier_counts.items())),
                "queue_depth": self._queue.qsize(),
            }
        snapshot["version"] = self.version
        snapshot.update(self._backend_stats())
        snapshot["plan_cache"] = shared_plan_cache().stats()
        return snapshot

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _serve_loop(self) -> None:
        stop = False
        carried: Optional[_Control] = None
        while not stop:
            if carried is not None:
                item, carried = carried, None
            else:
                item = self._queue.get()
            if item is _STOP:
                break
            if isinstance(item, _Control):
                self._handle_control(item)
                continue
            batch: List[_Predict] = [item]
            if self.window_s > 0:
                deadline = time.perf_counter() + self.window_s
                seeds = len(item.ids)
                while seeds < self.max_batch_seeds:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stop = True
                        break
                    if isinstance(nxt, _Control):
                        # Updates are barriers: close the batch, run it on the
                        # old version, then apply the control next iteration.
                        carried = nxt
                        break
                    batch.append(nxt)
                    seeds += len(nxt.ids)
            self._execute(batch)

    def _handle_control(self, item: _Control) -> None:
        try:
            version = self._apply_update(item.apply_fn)
            with self._stats_lock:
                self._updates += 1
            item.future.set_result(version)
        except BaseException as exc:  # propagate to the waiting client
            item.future.set_exception(exc)

    def _execute(self, batch: List[_Predict]) -> None:
        try:
            all_ids = (
                batch[0].ids if len(batch) == 1
                else np.concatenate([item.ids for item in batch])
            )
            seeds, inverse = np.unique(all_ids, return_inverse=True)
            logits, input_layer = self._compute(seeds)
            offset = 0
            for item in batch:
                n = len(item.ids)
                item.future.set_result(logits[inverse[offset:offset + n]])
                offset += n
            with self._stats_lock:
                self._served_requests += len(batch)
                self._batches += 1
                self._seeds_executed += len(seeds)
                self._max_requests_in_batch = max(
                    self._max_requests_in_batch, len(batch)
                )
                if input_layer == self.num_layers:
                    self._fast_path_batches += 1
                self._frontier_counts[input_layer] = (
                    self._frontier_counts.get(input_layer, 0) + 1
                )
        except BaseException as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)


#: keyword arguments the deprecated loose-construction shim still accepts.
_LEGACY_KWARGS = (
    "window_ms", "max_batch_seeds", "max_pending", "cache_bytes",
    "cache_admission",
)


class InferenceServer(_MicroBatchServerBase):
    """Serve ``predict(node_ids)`` over a trained model with micro-batching.

    Parameters
    ----------
    model:
        A trained module exposing ``num_layers`` and ``forward_layer(index,
        graph, x)`` (every ``repro.nn`` model).  Switched to ``eval()`` on
        :meth:`start` and kept there; mutate it only through :meth:`update`.
    graph:
        The full homogeneous :class:`~repro.graph.graph.Graph` (hetero
        serving would need per-relation pipelines — not supported yet).
    features:
        ``(num_nodes, in_features)`` input feature matrix (read-only), or
        any :class:`~repro.store.FeatureStore` covering the graph's nodes —
        batch input rows are gathered through the store, so serving runs
        unchanged over partitioned KV features or a trained embedding table.
        The store's own :attr:`~repro.store.FeatureStore.version` composes
        with the activation-cache version: when the store reports a new
        version (features replaced, embedding rows stepped), the next batch
        bumps the cache version, so stale activations are never served.
    config:
        A :class:`~repro.serving.ServingConfig` carrying the micro-batching
        window, the embedding-cache ``byte_budget`` / ``cache_admission``,
        queue bound, and timeouts.  ``None`` uses the defaults.  Prefer
        constructing through :func:`repro.serving.create_server`.

    The pre-redesign loose keyword form (``window_ms=``, ``cache_bytes=``,
    ``cache_admission=``, ``max_batch_seeds=``, ``max_pending=``) still
    works for one release behind a :class:`DeprecationWarning` that maps it
    onto a :class:`~repro.serving.ServingConfig` (``cache_bytes`` becomes
    ``byte_budget``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_sbm_dataset
    >>> from repro.nn.models import GraphSageNet
    >>> from repro.serving import ServingConfig, create_server
    >>> from repro.utils.seed import set_seed
    >>> set_seed(0)
    >>> ds = make_sbm_dataset(name="s", num_nodes=80, num_classes=3,
    ...                       feature_dim=8, p_in=0.1, p_out=0.02)
    >>> model = GraphSageNet(8, 16, 3, num_layers=2, dropout=0.0)
    >>> config = ServingConfig(byte_budget=1 << 20)
    >>> with create_server(model, ds.graph, ds.features, config) as server:
    ...     logits = server.predict([3, 1, 4, 1])
    >>> logits.shape
    (4, 3)
    """

    backend = "local"

    def __init__(
        self,
        model,
        graph: Graph,
        features,
        config: Optional[ServingConfig] = None,
        **kwargs,
    ):
        if isinstance(config, (int, float)) and not isinstance(config, bool):
            # Legacy positional call: the fourth argument used to be
            # window_ms.  Fold it into the deprecated-kwargs path below.
            kwargs["window_ms"] = config
            config = None
        if kwargs:
            if config is not None:
                raise TypeError(
                    "pass either config=ServingConfig(...) or the deprecated "
                    f"loose keywords, not both (got {sorted(kwargs)})"
                )
            unknown = sorted(set(kwargs) - set(_LEGACY_KWARGS))
            if unknown:
                raise TypeError(
                    f"InferenceServer got unexpected keyword arguments "
                    f"{unknown}; supported legacy keywords are "
                    f"{sorted(_LEGACY_KWARGS)}"
                )
            warnings.warn(
                "constructing InferenceServer from loose keyword arguments "
                "is deprecated and will be removed in the next release; "
                "build a ServingConfig (cache_bytes is now byte_budget) and "
                "call repro.serving.create_server(model, graph, features, "
                "config)",
                DeprecationWarning,
                stacklevel=2,
            )
            mapped = dict(kwargs)
            mapped["byte_budget"] = mapped.pop("cache_bytes", None)
            config = ServingConfig(**mapped)
        if config is None:
            config = ServingConfig()
        if config.backend != "local":
            raise ValueError(
                f"InferenceServer is the local backend; "
                f"config.backend={config.backend!r} (use "
                f"repro.serving.create_server to dispatch on the backend)"
            )
        if not isinstance(graph, Graph):
            raise ValueError(
                "InferenceServer serves homogeneous Graph instances only"
            )
        store = as_feature_store(features)
        if store.num_rows != graph.num_nodes:
            raise ValueError(
                f"features must cover the graph's {graph.num_nodes} nodes, "
                f"got {store.num_rows} rows"
            )
        super().__init__(model, graph.num_nodes, config)
        self.graph = graph
        self.store = store
        #: the raw matrix when the store is dense (back-compat); ``None``
        #: for non-materialized backends — read through :attr:`store`.
        self.features = store.matrix if isinstance(store, DenseStore) else None
        self._store_version_seen = store.version
        self.cache: Optional[EmbeddingCache] = (
            EmbeddingCache(config.byte_budget, admission=config.cache_admission)
            if config.byte_budget is not None else None
        )
        self._version_no_cache = 1

    # ------------------------------------------------------------------ #
    # backend hooks
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Current model/cache version (bumped by every :meth:`update`)."""
        return self.cache.version if self.cache is not None else self._version_no_cache

    def _output_dtype(self):
        return self.store.dtype

    def _apply_update(self, apply_fn: Optional[Callable]) -> int:
        if apply_fn is not None:
            apply_fn(self.model)
            self.model.eval()
        if self.cache is not None:
            return self.cache.bump_version()
        self._version_no_cache += 1
        return self._version_no_cache

    def _backend_stats(self) -> dict:
        return {
            "store_version": self.store.version,
            "embedding_cache": (
                self.cache.stats() if self.cache is not None else None
            ),
            "feature_store": self.store.stats() or None,
            "workers": None,
        }

    def _sync_store_version(self) -> None:
        # Compose the feature store's version into the serving version: a
        # store mutation (replace(), sparse-embedding step) invalidates every
        # cached activation exactly once, at the next batch boundary.  Runs
        # on the worker thread, so it is serialized with cache reads.
        current = self.store.version
        if current != self._store_version_seen:
            self._store_version_seen = current
            if self.cache is not None:
                self.cache.bump_version()
            else:
                self._version_no_cache += 1

    def _compute(self, seeds: np.ndarray):
        """Logits of the ascending unique ``seeds``; returns ``(rows, frontier)``."""
        self._sync_store_version()
        cache = self.cache
        model = self.model
        num_layers = self.num_layers
        with no_grad():
            if cache is not None:
                rows = cache.lookup(num_layers, seeds)
                if rows is not None:
                    return rows, num_layers
            frontier: dict = {}

            def stop_at(layer: int, nodes: np.ndarray) -> bool:
                if cache is None:
                    return False
                rows = cache.lookup(layer, nodes)
                if rows is None:
                    return False
                frontier["rows"] = rows
                return True

            pipeline = build_mfg_pipeline(self.graph, seeds, num_layers,
                                          stop_at=stop_at)
            start = pipeline.input_layer
            if start == 0:
                x = Tensor(self.store.gather(pipeline.input_nodes))
            else:
                x = Tensor(frontier["rows"])
            for offset, layer in enumerate(range(start, num_layers)):
                block = pipeline.layer_block(offset)
                x = model.forward_layer(layer, block, x)
                if cache is not None:
                    cache.put(layer + 1, block.dst_nodes, x.data)
            return x.data, start
