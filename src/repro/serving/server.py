"""Long-lived online inference server: micro-batched, cache-truncated predicts.

:class:`InferenceServer` is the serving half of the roadmap's north star: a
process-resident object that loads a trained model plus its graph and feature
matrix once, then answers ``predict(node_ids)`` requests from any number of
concurrent client threads.  The request hot path is the paper's core trick
run per batch: only the requested seeds' receptive fields are compiled
(:func:`repro.graph.mfg.build_mfg_pipeline`) and executed, never a full-graph
forward.

Three mechanisms shape the latency/throughput profile:

**Micro-batching.**  Requests land on a bounded queue consumed by one worker
thread.  The worker takes the first request, then keeps draining the queue
until ``window_ms`` elapses or ``max_batch_seeds`` requested seeds have
accumulated; the coalesced requests are deduplicated into one ascending seed
set, compiled into one pipeline, executed once, and the per-seed logit rows
are scattered back to each request's future.  ``window_ms=0`` disables
coalescing (strictly one request per execution — the sequential baseline the
serving benchmark compares against).

**Plan warmth.**  Pipeline blocks resolve their :class:`~repro.tensor.
edge_plan.EdgePlan` through the shared structural :class:`~repro.tensor.
edge_plan.PlanCache`, so a repeated request topology (same coalesced seed
set) pays **zero** plan builds — asserted in ``tests/test_serving.py`` and
visible in :meth:`InferenceServer.stats` under ``"plan_cache"``.

**Historical-embedding cache.**  With ``cache_bytes`` set, every computed
activation row is inserted into an :class:`~repro.serving.cache.
EmbeddingCache` keyed by ``(version, layer, node)``.  Each request batch
probes the cache from the deepest layer down during its receptive-field walk
and truncates the pipeline at the deepest fully-cached frontier
(``stop_at`` on :func:`build_mfg_pipeline`); a batch whose seeds all have
cached logits never builds a pipeline at all.  Cached rows are bit-identical
to recomputation (eval-mode activations are pure per-row functions), so
served logits stay **bit-identical** to ``model(graph, features)`` rows with
the cache on, off, cold, or warm.

Model updates go through :meth:`update`, which runs the mutation *on the
worker thread* (serialized between batches) and bumps the cache version —
requests enqueued before the update see the old weights and cache entries,
requests after see the new ones, and no batch ever mixes the two.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.graph.mfg import build_mfg_pipeline
from repro.sample.inference import check_layered_model
from repro.serving.cache import EmbeddingCache
from repro.store import DenseStore, as_feature_store
from repro.tensor import no_grad
from repro.tensor.edge_plan import shared_plan_cache
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_1d_int_array, check_positive_int

#: queue sentinel shutting the worker down after all earlier items are served.
_STOP = object()


class _Predict:
    """One enqueued request: the validated ids and the future to resolve."""

    __slots__ = ("ids", "future")

    def __init__(self, ids: np.ndarray):
        self.ids = ids
        self.future: "Future[np.ndarray]" = Future()


class _Control:
    """An enqueued model-update: runs on the worker thread, bumps the version."""

    __slots__ = ("apply_fn", "future")

    def __init__(self, apply_fn: Optional[Callable]):
        self.apply_fn = apply_fn
        self.future: "Future[int]" = Future()


class InferenceServer:
    """Serve ``predict(node_ids)`` over a trained model with micro-batching.

    Parameters
    ----------
    model:
        A trained module exposing ``num_layers`` and ``forward_layer(index,
        graph, x)`` (every ``repro.nn`` model).  Switched to ``eval()`` on
        :meth:`start` and kept there; mutate it only through :meth:`update`.
    graph:
        The full homogeneous :class:`~repro.graph.graph.Graph` (hetero
        serving would need per-relation pipelines — not supported yet).
    features:
        ``(num_nodes, in_features)`` input feature matrix (read-only), or
        any :class:`~repro.store.FeatureStore` covering the graph's nodes —
        batch input rows are gathered through the store, so serving runs
        unchanged over partitioned KV features or a trained embedding table.
        The store's own :attr:`~repro.store.FeatureStore.version` composes
        with the activation-cache version: when the store reports a new
        version (features replaced, embedding rows stepped), the next batch
        bumps the cache version, so stale activations are never served.
    window_ms:
        Micro-batch coalescing window in milliseconds: after the first
        request of a batch arrives, later requests joining within the window
        ride the same execution.  ``0`` serves strictly one request per
        execution.
    max_batch_seeds:
        Cap on requested (pre-deduplication) seeds coalesced into one batch;
        reaching it closes the window early.
    max_pending:
        Bound on queued requests; :meth:`predict` blocks (up to its timeout)
        when the queue is full — closed-loop backpressure, not load shedding.
    cache_bytes:
        Byte capacity of the historical-embedding cache; ``None`` (default)
        disables activation caching entirely.
    cache_admission:
        Admission policy of that cache — ``"none"`` (plain LRU) or
        ``"frequency"`` (TinyLFU-style gate: a full cache only admits rows
        requested more often than the LRU victim they would displace; see
        :class:`~repro.serving.cache.EmbeddingCache`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.datasets import make_sbm_dataset
    >>> from repro.nn.models import GraphSageNet
    >>> from repro.serving import InferenceServer
    >>> from repro.utils.seed import set_seed
    >>> set_seed(0)
    >>> ds = make_sbm_dataset(name="s", num_nodes=80, num_classes=3,
    ...                       feature_dim=8, p_in=0.1, p_out=0.02)
    >>> model = GraphSageNet(8, 16, 3, num_layers=2, dropout=0.0)
    >>> with InferenceServer(model, ds.graph, ds.features,
    ...                      cache_bytes=1 << 20) as server:
    ...     logits = server.predict([3, 1, 4, 1])
    >>> logits.shape
    (4, 3)
    """

    def __init__(
        self,
        model,
        graph: Graph,
        features: np.ndarray,
        window_ms: float = 2.0,
        max_batch_seeds: int = 1024,
        max_pending: int = 4096,
        cache_bytes: Optional[int] = None,
        cache_admission: str = "none",
    ):
        num_layers = check_layered_model(model)
        if not isinstance(graph, Graph):
            raise ValueError(
                "InferenceServer serves homogeneous Graph instances only"
            )
        store = as_feature_store(features)
        if store.num_rows != graph.num_nodes:
            raise ValueError(
                f"features must cover the graph's {graph.num_nodes} nodes, "
                f"got {store.num_rows} rows"
            )
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        self.model = model
        self.graph = graph
        self.store = store
        #: the raw matrix when the store is dense (back-compat); ``None``
        #: for non-materialized backends — read through :attr:`store`.
        self.features = store.matrix if isinstance(store, DenseStore) else None
        self._store_version_seen = store.version
        self.num_layers = num_layers
        self.window_s = float(window_ms) / 1e3
        self.max_batch_seeds = check_positive_int(max_batch_seeds, "max_batch_seeds")
        self.cache: Optional[EmbeddingCache] = (
            EmbeddingCache(cache_bytes, admission=cache_admission)
            if cache_bytes is not None else None
        )
        self._version_no_cache = 1
        self._queue: "queue.Queue" = queue.Queue(
            maxsize=check_positive_int(max_pending, "max_pending")
        )
        self._thread: Optional[threading.Thread] = None
        self._accepting = False
        self._stopped = False
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._served_requests = 0
        self._batches = 0
        self._seeds_executed = 0
        self._max_requests_in_batch = 0
        self._fast_path_batches = 0
        self._updates = 0
        #: how deep request batches truncated: input_layer -> batch count
        #: (0 = full-depth recompute, ``num_layers`` = all-logits fast path).
        self._frontier_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        """Spawn the serving worker (idempotent until :meth:`stop`)."""
        if self._stopped:
            raise RuntimeError("InferenceServer cannot be restarted after stop()")
        if self._thread is None:
            self.model.eval()
            self._accepting = True
            self._thread = threading.Thread(
                target=self._serve_loop, name="inference-server", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain already-queued requests, then stop the worker."""
        if self._thread is None or self._stopped:
            self._stopped = True
            return
        self._accepting = False
        self._queue.put(_STOP)
        self._thread.join(timeout)
        self._stopped = True

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._accepting and self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #
    def predict_async(self, node_ids, timeout: Optional[float] = None) -> "Future[np.ndarray]":
        """Enqueue a request; the future resolves to its ``(len(ids), C)`` logits.

        Rows follow the request's id order (duplicates included).  Blocks
        only when the request queue is full (backpressure), up to
        ``timeout`` seconds.
        """
        ids = check_1d_int_array(node_ids, "node_ids", max_value=self.graph.num_nodes)
        if not self.running:
            raise RuntimeError("InferenceServer is not running (call start())")
        item = _Predict(ids)
        if ids.size == 0:
            item.future.set_result(np.empty((0, 0), dtype=self.store.dtype))
            return item.future
        try:
            self._queue.put(item, timeout=timeout)
        except queue.Full:
            raise RuntimeError(
                f"request queue full ({self._queue.maxsize} pending)"
            ) from None
        with self._stats_lock:
            self._requests += 1
        return item.future

    def predict(self, node_ids, timeout: Optional[float] = 30.0) -> np.ndarray:
        """Blocking :meth:`predict_async`; returns the logit rows."""
        return self.predict_async(node_ids, timeout=timeout).result(timeout)

    def update(self, apply_fn: Optional[Callable] = None,
               timeout: Optional[float] = 30.0) -> int:
        """Apply a model mutation on the worker thread and invalidate the cache.

        ``apply_fn(model)`` (if given) runs serialized between batches:
        requests enqueued before this call are served by the old model and
        cache version, requests after by the new ones.  Returns the new
        version number.  ``update()`` with no function is a pure version
        bump — e.g. after swapping the feature matrix's contents in place.
        """
        if not self.running:
            raise RuntimeError("InferenceServer is not running (call start())")
        item = _Control(apply_fn)
        self._queue.put(item, timeout=timeout)
        return item.future.result(timeout)

    def bump_version(self, timeout: Optional[float] = 30.0) -> int:
        """Invalidate cached activations without touching the model."""
        return self.update(None, timeout=timeout)

    @property
    def version(self) -> int:
        """Current model/cache version (bumped by every :meth:`update`)."""
        return self.cache.version if self.cache is not None else self._version_no_cache

    def stats(self) -> dict:
        """Telemetry snapshot: micro-batching, frontier, and cache counters."""
        with self._stats_lock:
            snapshot = {
                "requests": self._requests,
                "served_requests": self._served_requests,
                "batches": self._batches,
                "seeds_executed": self._seeds_executed,
                "max_requests_in_batch": self._max_requests_in_batch,
                "fast_path_batches": self._fast_path_batches,
                "updates": self._updates,
                "frontier_layers": dict(sorted(self._frontier_counts.items())),
                "queue_depth": self._queue.qsize(),
            }
        snapshot["version"] = self.version
        snapshot["store_version"] = self.store.version
        snapshot["embedding_cache"] = (
            self.cache.stats() if self.cache is not None else None
        )
        snapshot["feature_store"] = self.store.stats() or None
        snapshot["plan_cache"] = shared_plan_cache().stats()
        return snapshot

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    def _serve_loop(self) -> None:
        stop = False
        carried: Optional[_Control] = None
        while not stop:
            if carried is not None:
                item, carried = carried, None
            else:
                item = self._queue.get()
            if item is _STOP:
                break
            if isinstance(item, _Control):
                self._handle_control(item)
                continue
            batch: List[_Predict] = [item]
            if self.window_s > 0:
                deadline = time.perf_counter() + self.window_s
                seeds = len(item.ids)
                while seeds < self.max_batch_seeds:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stop = True
                        break
                    if isinstance(nxt, _Control):
                        # Updates are barriers: close the batch, run it on the
                        # old version, then apply the control next iteration.
                        carried = nxt
                        break
                    batch.append(nxt)
                    seeds += len(nxt.ids)
            self._execute(batch)

    def _handle_control(self, item: _Control) -> None:
        try:
            if item.apply_fn is not None:
                item.apply_fn(self.model)
                self.model.eval()
            if self.cache is not None:
                version = self.cache.bump_version()
            else:
                self._version_no_cache += 1
                version = self._version_no_cache
            with self._stats_lock:
                self._updates += 1
            item.future.set_result(version)
        except BaseException as exc:  # propagate to the waiting client
            item.future.set_exception(exc)

    def _execute(self, batch: List[_Predict]) -> None:
        try:
            all_ids = (
                batch[0].ids if len(batch) == 1
                else np.concatenate([item.ids for item in batch])
            )
            seeds, inverse = np.unique(all_ids, return_inverse=True)
            logits, input_layer = self._compute(seeds)
            offset = 0
            for item in batch:
                n = len(item.ids)
                item.future.set_result(logits[inverse[offset:offset + n]])
                offset += n
            with self._stats_lock:
                self._served_requests += len(batch)
                self._batches += 1
                self._seeds_executed += len(seeds)
                self._max_requests_in_batch = max(
                    self._max_requests_in_batch, len(batch)
                )
                if input_layer == self.num_layers:
                    self._fast_path_batches += 1
                self._frontier_counts[input_layer] = (
                    self._frontier_counts.get(input_layer, 0) + 1
                )
        except BaseException as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)

    def _sync_store_version(self) -> None:
        # Compose the feature store's version into the serving version: a
        # store mutation (replace(), sparse-embedding step) invalidates every
        # cached activation exactly once, at the next batch boundary.  Runs
        # on the worker thread, so it is serialized with cache reads.
        current = self.store.version
        if current != self._store_version_seen:
            self._store_version_seen = current
            if self.cache is not None:
                self.cache.bump_version()
            else:
                self._version_no_cache += 1

    def _compute(self, seeds: np.ndarray):
        """Logits of the ascending unique ``seeds``; returns ``(rows, frontier)``."""
        self._sync_store_version()
        cache = self.cache
        model = self.model
        num_layers = self.num_layers
        with no_grad():
            if cache is not None:
                rows = cache.lookup(num_layers, seeds)
                if rows is not None:
                    return rows, num_layers
            frontier: dict = {}

            def stop_at(layer: int, nodes: np.ndarray) -> bool:
                if cache is None:
                    return False
                rows = cache.lookup(layer, nodes)
                if rows is None:
                    return False
                frontier["rows"] = rows
                return True

            pipeline = build_mfg_pipeline(self.graph, seeds, num_layers,
                                          stop_at=stop_at)
            start = pipeline.input_layer
            if start == 0:
                x = Tensor(self.store.gather(pipeline.input_nodes))
            else:
                x = Tensor(frontier["rows"])
            for offset, layer in enumerate(range(start, num_layers)):
                block = pipeline.layer_block(offset)
                x = model.forward_layer(layer, block, x)
                if cache is not None:
                    cache.put(layer + 1, block.dst_nodes, x.data)
            return x.data, start
