"""Process-backed distributed serving: one frontend, forked shard workers.

:class:`MultiprocessInferenceServer` is the thread-backed
:class:`~repro.serving.distributed.DistributedInferenceServer` with the
worker threads replaced by real OS processes — the deployment shape the
paper (and the roadmap) actually target: shards that never share a GIL, a
micro-batching frontend in the parent fronting one long-lived forked worker
per partition.

The split of responsibilities:

* **Parent process** — the whole micro-batching frontend
  (:class:`~repro.serving.server._MicroBatchServerBase`): client futures,
  window coalescing, request stats, ``update()`` serialization.  The parent
  also keeps the authoritative model copy (mutated by ``update``) but never
  computes logits itself.
* **Worker processes** — one per shard, forked at :meth:`start` by a
  :class:`~repro.distributed.mp_backend.MultiprocessServiceCluster`.  Fork
  means the model, the shard structures, and the feature spec arrive in
  each child by address-space copy — nothing is pickled at startup.  Each
  child builds its own :class:`~repro.core.dist_graph.DistributedGraph`
  (collective halo-routing setup over the
  :class:`~repro.distributed.mp_backend.MultiprocessCommunicator`), its own
  :class:`~repro.store.FeatureStore`, and its own private
  :class:`~repro.serving.cache.EmbeddingCache`, then answers a request loop
  until ``stop()``.

Per batch, only the deduplicated ascending seed ids travel parent -> child
and only each child's owned logit rows travel child -> parent (both pickled
through multiprocessing queues — numpy round-trips bit-exactly, so served
logits stay **bit-identical** to the local and thread-backed servers).  The
inter-*worker* traffic of the cooperative walk crosses the Manager-backed
communicator, which is honest but slow — see ``docs/serving.md`` for when
the process backend is worth that tax.

Failure semantics are inherited from the mp trainer: the frontend polls
``Process.is_alive`` while waiting on responses, a shard process that dies
mid-request fails every in-flight future with
:class:`~repro.distributed.mp_backend.WorkerFailedError` naming the dead
rank (after poisoning the cluster so surviving shards blocked in the dead
batch's collectives unblock promptly — no hang), and :meth:`stop` always
reaps: stop sentinels, join, terminate -> kill stragglers, Manager
shutdown.  No child outlives the server.

State propagation crosses the process boundary explicitly:

* :meth:`update` applies the mutation to the **parent** model, then ships
  the resulting ``state_dict()`` arrays to every child (children cannot see
  parent memory after fork) — atomic because the job queue serializes it
  against predict batches.
* A features ``replace()`` is only visible to children when the features
  were passed as a :class:`~repro.store.FeatureStore`: the parent watches
  the store's ``version`` and ships the full replacement matrix before the
  next batch.  A raw matrix mutated in place in the parent is **not**
  propagated (the children hold forked snapshots) — call ``replace()`` on a
  store, or rebuild the server.

Construct through :func:`repro.serving.create_server` with
``ServingConfig(backend="mp")``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.dist_graph import DistributedGraph
from repro.distributed.mp_backend import (
    MultiprocessServiceCluster,
    WorkerFailedError,
)
from repro.partition.shard import ShardedGraph
from repro.sample.inference import distributed_restricted_logits
from repro.serving.cache import EmbeddingCache
from repro.serving.config import ServingConfig
from repro.serving.distributed import (
    _aggregate_counters,
    _build_worker_store,
    _ShardServerBase,
)
from repro.store import FeatureStore, PartitionedKVStore


def _make_shard_service(model, shards, spec, config: ServingConfig, book):
    """Build the service factory the forked workers run.

    Returned as a closure over the parent's objects — legal because the
    cluster forks: each child gets its own copy-on-write copy of the model,
    shards, and feature spec without any pickling.  The factory runs once
    inside each child and returns the ``handler(kind, payload)`` the
    request loop calls; all per-worker state (graph handle, store, cache)
    lives in the child.
    """

    def factory(rank: int, comm):
        dist_graph = DistributedGraph(
            shards[rank], comm,
            restriction_cache_capacity=config.restriction_slots,
        )
        store = _build_worker_store(spec, config, book, rank, comm)
        cache = (
            EmbeddingCache(config.byte_budget, admission=config.cache_admission)
            if config.byte_budget is not None else None
        )
        state = {"store_version_seen": store.version}

        def handler(kind: str, payload):
            if kind == "predict":
                # Store-version fold-in, as on the other backends: a
                # replaced store invalidates this shard's cached
                # activations exactly once, at the next batch boundary.
                if store.version != state["store_version_seen"]:
                    state["store_version_seen"] = store.version
                    if cache is not None:
                        cache.bump_version()
                return distributed_restricted_logits(
                    dist_graph, model, store, payload, cache=cache,
                )
            if kind == "update":
                if payload is not None:
                    model.load_state_dict(payload)
                    model.eval()
                if cache is not None:
                    cache.bump_version()
                return cache.version if cache is not None else None
            if kind == "replace":
                # payload is the full (num_nodes, dim) replacement matrix;
                # each worker swaps the slice its store holds resident.
                if isinstance(store, PartitionedKVStore):
                    store.replace(payload[book.nodes_of(rank)])
                else:
                    store.replace(payload)
                return store.version
            if kind == "stats":
                return {
                    "rank": rank,
                    "store_version": store.version,
                    "embedding_cache": (
                        cache.stats() if cache is not None else None
                    ),
                    "feature_store": store.stats() or None,
                    "comm": comm.stats.serving_snapshot(),
                }
            raise ValueError(f"unknown serving request kind {kind!r}")

        return handler

    return factory


class MultiprocessInferenceServer(_ShardServerBase):
    """Serve ``predict(node_ids)`` over shards living in forked processes.

    Takes exactly the :class:`~repro.serving.distributed.
    DistributedInferenceServer` constructor — a layered model, the
    per-worker :class:`~repro.partition.shard.ShardedGraph` list (one
    shared book, rank order), global or per-worker features, and a
    :class:`~repro.serving.ServingConfig` with ``backend="mp"`` — and
    serves bit-identical logits from one forked OS process per shard.
    See the module docstring for the process lifecycle, propagation, and
    failure semantics.

    Requires a platform with the ``fork`` start method (Linux, macOS with
    fork enabled); :meth:`start` raises otherwise.
    """

    backend = "mp"

    def __init__(
        self,
        model,
        shards: Sequence[ShardedGraph],
        features,
        config: Optional[ServingConfig] = None,
    ):
        if config is None:
            config = ServingConfig(backend="mp")
        super().__init__(model, shards, features, config)
        self._cluster: Optional[MultiprocessServiceCluster] = None
        self._version_counter = 1
        self._spec_version_seen = (
            self._features_spec.version
            if isinstance(self._features_spec, FeatureStore) else None
        )
        self._last_worker_stats: Optional[list] = None

    # ------------------------------------------------------------------ #
    # cluster lifecycle
    # ------------------------------------------------------------------ #
    def _on_start(self) -> None:
        # Runs on the caller's thread *before* the serve loop spawns, and
        # after ``model.eval()`` — so the fork happens from an effectively
        # single-threaded parent and every child inherits an eval'd model.
        cluster = MultiprocessServiceCluster(
            _make_shard_service(self.model, self.shards, self._features_spec,
                                self.config, self.book),
            world_size=self._world,
            timeout_s=self.config.comm_timeout_s,
            name="serving-shard",
        )
        cluster.start()
        self._cluster = cluster

    def _on_stop(self) -> None:
        cluster = self._cluster
        if cluster is None:
            return
        try:
            if cluster.running and cluster.failure is None:
                self._last_worker_stats = cluster.request("stats")
        except (WorkerFailedError, RuntimeError):
            pass
        cluster.stop()

    @property
    def processes(self):
        """The shard worker processes, in rank order (empty pre-start)."""
        return self._cluster.processes if self._cluster is not None else []

    def _debug_crash_worker(self, rank: int) -> None:
        """Test hook: make shard ``rank`` die before its next request."""
        if self._cluster is None:
            raise RuntimeError("server is not started")
        self._cluster.inject_crash(rank)

    # ------------------------------------------------------------------ #
    # backend hooks
    # ------------------------------------------------------------------ #
    def _maybe_propagate_store(self) -> None:
        # The children forked a snapshot of the feature spec; when the
        # parent-side store reports a new version (replace(), embedding
        # step), ship the full replacement before the next batch runs.
        spec = self._features_spec
        if not isinstance(spec, FeatureStore):
            return
        if spec.version == self._spec_version_seen:
            return
        self._spec_version_seen = spec.version
        self._cluster.request("replace", spec.gather(None))
        self._version_counter += 1

    def _compute(self, seeds: np.ndarray):
        self._maybe_propagate_store()
        results = self._cluster.request("predict", seeds)
        return self._scatter_owned(seeds, results)

    def _apply_update(self, apply_fn: Optional[Callable]) -> int:
        # Runs on the serve-loop thread with no batch in flight.  Mutate
        # the parent's (authoritative) model, then ship the weights; a
        # bare version bump still crosses so children invalidate caches.
        if apply_fn is not None:
            apply_fn(self.model)
            self.model.eval()
            payload = self.model.state_dict()
        else:
            payload = None
        self._cluster.request("update", payload)
        self._version_counter += 1
        return self.version

    @property
    def version(self) -> int:
        return self._version_counter

    def _backend_stats(self) -> dict:
        workers = self._last_worker_stats
        cluster = self._cluster
        if (cluster is not None and cluster.running
                and cluster.failure is None):
            try:
                workers = cluster.request("stats")
                self._last_worker_stats = workers
            except (WorkerFailedError, RuntimeError):
                workers = self._last_worker_stats
        workers = workers or []
        return {
            "store_version": (
                max(w["store_version"] for w in workers) if workers else None
            ),
            "embedding_cache": _aggregate_counters(
                [w["embedding_cache"] for w in workers]
            ),
            "feature_store": _aggregate_counters(
                [w["feature_store"] for w in workers]
            ),
            "workers": workers,
            "processes": {
                "alive": [p.is_alive() for p in self.processes],
                "exitcodes": [p.exitcode for p in self.processes],
                "failure": cluster.failure if cluster is not None else None,
            },
        }
