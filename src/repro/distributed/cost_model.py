"""Epoch-time and memory cost model.

The paper reports wall-clock epoch times on a cluster of 36-core Xeon
machines connected by 200 Gb/s InfiniBand.  The simulated cluster runs all
workers as threads of one small host, so raw wall-clock numbers are not
comparable.  Instead every benchmark reports a *modeled* epoch time:

``epoch_time = max over workers of (compute_time · compute_scale
               + transferred_bytes / bandwidth + messages · latency)``

where ``compute_time`` is the worker's thread-CPU time and the transfer
terms come from the exact per-worker byte counts recorded by the
communicator.  The defaults below mimic the relative balance of the paper's
hardware; benchmarks that need the communication-bound regime of
ogbn-papers100M at 128 machines (Fig. 6) scale ``bandwidth_mbps`` down and
say so in EXPERIMENTS.md.

The cost model is also where "out of memory" is decided (Fig. 6's missing
vanilla-DP bar at 32 machines): a worker whose peak live tensor bytes exceed
``memory_budget_mb`` is flagged OOM.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.distributed.cluster import ClusterRunResult

#: Tags whose transfer time the engine's prefetch pipeline can hide behind
#: compute (§3.4): the forward halo fetches and the case-2 backward
#: re-fetches are issued on a background thread, so up to ``compute_time`` of
#: their wire time overlaps.  Error exchanges and gradient allreduces are
#: synchronization points and stay serial.
PREFETCH_OVERLAP_TAGS = ("forward_halo", "backward_refetch")

#: Tags hidden when the distributed sampled-training loop pipelines batch
#: b+1's cooperative sampling (the per-layer frontier allgathers, tagged
#: ``sample_frontier``) behind batch b's compute — see
#: ``FullBatchTrainer._distributed_sampled_epoch`` and
#: ``NeighborSamplingConfig.overlap_sampling``.
SAMPLING_OVERLAP_TAGS = ("sample_frontier",)

#: Everything the sampled data path can hide at once: halo prefetch plus the
#: pipelined sampling frontiers.
PIPELINE_OVERLAP_TAGS = PREFETCH_OVERLAP_TAGS + SAMPLING_OVERLAP_TAGS


@dataclass(frozen=True)
class ClusterSpec:
    """Description of the (simulated) cluster hardware.

    Parameters
    ----------
    bandwidth_mbps:
        Effective per-worker network bandwidth in megabytes per second.
    latency_s:
        Per-message latency in seconds.
    compute_scale:
        Multiplier applied to measured per-worker compute times (use <1 to
        model faster machines than the simulation host).
    memory_budget_mb:
        Per-worker memory budget used for OOM detection; ``None`` disables
        the check.
    """

    name: str = "xeon-infiniband"
    bandwidth_mbps: float = 2000.0
    latency_s: float = 50e-6
    compute_scale: float = 1.0
    memory_budget_mb: Optional[float] = None

    def transfer_time(self, nbytes: int, messages: int = 0) -> float:
        """Modeled time to move ``nbytes`` in ``messages`` point-to-point sends."""
        bandwidth_bytes_per_s = self.bandwidth_mbps * 1024.0 * 1024.0
        return nbytes / bandwidth_bytes_per_s + messages * self.latency_s

    def with_budget(self, memory_budget_mb: float) -> "ClusterSpec":
        return replace(self, memory_budget_mb=memory_budget_mb)


#: Default spec used by the benchmarks; roughly balances compute and
#: communication the way the paper's testbed does for mid-sized worker counts.
PAPER_LIKE_SPEC = ClusterSpec()

#: A communication-constrained spec used for the papers100M-style runs where
#: the paper observes training becoming communication bound at 128 workers.
COMM_BOUND_SPEC = ClusterSpec(name="comm-bound", bandwidth_mbps=200.0, latency_s=200e-6)


@dataclass
class WorkerCost:
    """Modeled breakdown for one worker."""

    rank: int
    compute_time_s: float
    comm_time_s: float
    peak_memory_mb: float
    oom: bool
    #: portion of ``comm_time_s`` hidden behind compute by the prefetch
    #: pipeline (0 unless the cost model was given ``overlap_tags``)
    hidden_comm_time_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        return self.compute_time_s + self.comm_time_s - self.hidden_comm_time_s


@dataclass
class EpochCostReport:
    """Cluster-wide epoch cost summary (the quantity the paper's figures plot)."""

    spec: ClusterSpec
    workers: List[WorkerCost]

    @property
    def epoch_time_s(self) -> float:
        """Modeled epoch time: the slowest worker's compute + communication."""
        return max(w.total_time_s for w in self.workers) if self.workers else 0.0

    @property
    def max_peak_memory_mb(self) -> float:
        return max(w.peak_memory_mb for w in self.workers) if self.workers else 0.0

    @property
    def any_oom(self) -> bool:
        return any(w.oom for w in self.workers)

    @property
    def compute_time_s(self) -> float:
        return max(w.compute_time_s for w in self.workers) if self.workers else 0.0

    @property
    def comm_time_s(self) -> float:
        return max(w.comm_time_s for w in self.workers) if self.workers else 0.0

    @property
    def hidden_comm_time_s(self) -> float:
        """Comm time hidden behind compute by prefetch (slowest worker)."""
        return max(w.hidden_comm_time_s for w in self.workers) if self.workers else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "epoch_time_s": self.epoch_time_s,
            "compute_time_s": self.compute_time_s,
            "comm_time_s": self.comm_time_s,
            "hidden_comm_time_s": self.hidden_comm_time_s,
            "max_peak_memory_mb": self.max_peak_memory_mb,
            "any_oom": self.any_oom,
        }


def epoch_cost(result: ClusterRunResult, spec: ClusterSpec = PAPER_LIKE_SPEC,
               num_epochs: int = 1,
               overlap_tags: Optional[Sequence[str]] = None) -> EpochCostReport:
    """Convert a :class:`ClusterRunResult` into a modeled per-epoch cost report.

    ``num_epochs`` divides measured compute time and communication volume so
    a multi-epoch training run can be reported per epoch.

    ``overlap_tags`` names communication tags whose wire time overlaps with
    compute (pass :data:`PREFETCH_OVERLAP_TAGS` for runs executed with
    ``SARConfig(prefetch=True)``): per worker, up to ``compute_time`` of the
    tagged transfer time is hidden, so the modeled total becomes
    ``max(compute, overlappable_comm) + serial_comm``.
    """
    if num_epochs <= 0:
        raise ValueError(f"num_epochs must be positive, got {num_epochs}")
    workers = []
    for rank in range(result.world_size):
        stats = result.comm_stats[rank]
        # Full-duplex links: sends and receives overlap, so the modeled wire
        # time is driven by the larger of the two directions.
        directional_bytes = max(stats.bytes_sent, stats.bytes_received) / num_epochs
        messages = max(stats.messages_sent, stats.messages_received) / num_epochs
        comm_time = spec.transfer_time(directional_bytes, messages)
        compute_time = result.compute_times[rank] * spec.compute_scale / num_epochs
        hidden = 0.0
        if overlap_tags:
            sent_overlap, recv_overlap = stats.bytes_for_tags(overlap_tags)
            overlap_bytes = max(sent_overlap, recv_overlap) / num_epochs
            overlap_time = min(spec.transfer_time(int(overlap_bytes)), comm_time)
            hidden = min(compute_time, overlap_time)
        peak_mb = result.memory[rank].peak_mb
        workers.append(
            WorkerCost(
                rank=rank,
                compute_time_s=compute_time,
                comm_time_s=comm_time,
                peak_memory_mb=peak_mb,
                oom=spec.memory_budget_mb is not None and peak_mb > spec.memory_budget_mb,
                hidden_comm_time_s=hidden,
            )
        )
    return EpochCostReport(spec=spec, workers=workers)


def scaling_table(reports: Dict[int, EpochCostReport]) -> List[Dict[str, float]]:
    """Flatten ``{num_workers: report}`` into printable benchmark rows."""
    rows = []
    for world_size in sorted(reports):
        report = reports[world_size]
        row = {"num_workers": world_size}
        row.update(report.as_dict())
        rows.append(row)
    return rows
