"""Simulated distributed runtime: communicators, cluster, and cost model."""

from repro.distributed.comm import Communicator, CommStats
from repro.distributed.thread_backend import (
    ThreadCommunicator,
    SharedStore,
    ClusterAborted,
    create_thread_communicators,
)
from repro.distributed.cluster import SimulatedCluster, ClusterRunResult, run_distributed
from repro.distributed.cost_model import (
    ClusterSpec,
    EpochCostReport,
    WorkerCost,
    epoch_cost,
    scaling_table,
    PAPER_LIKE_SPEC,
    COMM_BOUND_SPEC,
    PREFETCH_OVERLAP_TAGS,
)

__all__ = [
    "Communicator",
    "CommStats",
    "ThreadCommunicator",
    "SharedStore",
    "ClusterAborted",
    "create_thread_communicators",
    "SimulatedCluster",
    "ClusterRunResult",
    "run_distributed",
    "ClusterSpec",
    "EpochCostReport",
    "WorkerCost",
    "epoch_cost",
    "scaling_table",
    "PAPER_LIKE_SPEC",
    "COMM_BOUND_SPEC",
    "PREFETCH_OVERLAP_TAGS",
]
