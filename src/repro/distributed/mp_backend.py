"""Multiprocessing backend (true multi-process workers on one host).

The thread backend in :mod:`repro.distributed.thread_backend` is the default
because it is fast to spin up and lets the benchmarks simulate up to 32
workers cheaply.  This module provides a small, slower, but *genuinely*
multi-process backend built on :mod:`multiprocessing` primitives, matching
the paper's deployment model of one training process per machine ("repro
band": multi-process on one big server).  It exists to demonstrate that the
SAR algorithms only rely on the abstract :class:`Communicator` interface; the
example/test keep the worker count and graph size small.

Usage::

    from repro.distributed.mp_backend import run_multiprocess
    results = run_multiprocess(worker_fn, world_size=2)

``worker_fn`` must be a module-level (picklable) function with the usual
``(rank, comm, *args)`` signature.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.comm import Communicator, reduce_arrays

_POLL_S = 0.005
_DEFAULT_TIMEOUT_S = 300.0


class MultiprocessCommunicator(Communicator):
    """Communicator backed by a ``multiprocessing.Manager`` dict and barrier."""

    def __init__(self, rank: int, world_size: int, store, barrier,
                 timeout_s: float = _DEFAULT_TIMEOUT_S):
        super().__init__(rank, world_size)
        self._store = store
        self._barrier = barrier
        self._timeout_s = timeout_s
        self._collective_counter = 0

    # -- point-to-point ------------------------------------------------- #
    def publish(self, key: str, array: np.ndarray) -> None:
        self._store[(self.rank, key)] = np.asarray(array)

    def _wait_get(self, owner_rank: int, key: str) -> np.ndarray:
        deadline = time.monotonic() + self._timeout_s
        while True:
            value = self._store.get((owner_rank, key))
            if value is not None:
                return value
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"rank {self.rank} timed out waiting for rank {owner_rank} key {key!r}"
                )
            time.sleep(_POLL_S)

    def fetch(self, owner_rank: int, key: str, rows: Optional[np.ndarray] = None,
              tag: str = "halo") -> np.ndarray:
        array = self._wait_get(owner_rank, key)
        out = array[np.asarray(rows)] if rows is not None else np.array(array, copy=True)
        if owner_rank != self.rank:
            self.stats.record_recv(out.nbytes, tag=tag)
        return out

    def unpublish(self, key: str) -> None:
        self._store.pop((self.rank, key), None)

    def clear_published(self) -> None:
        for store_key in list(self._store.keys()):
            if store_key[0] == self.rank:
                self._store.pop(store_key, None)

    # -- collectives ----------------------------------------------------- #
    def barrier(self) -> None:
        self._barrier.wait(timeout=self._timeout_s)

    def exchange(self, key: str, outgoing: Dict[int, np.ndarray],
                 tag: str = "exchange") -> Dict[int, np.ndarray]:
        prefix = f"__xchg/{key}"
        for dest, array in outgoing.items():
            array = np.asarray(array)
            self._store[(self.rank, f"{prefix}/to{dest}")] = array
            if dest != self.rank:
                self.stats.record_send(array.nbytes, tag=tag)
        self.barrier()
        received: Dict[int, np.ndarray] = {}
        for sender in range(self.world_size):
            value = self._store.get((sender, f"{prefix}/to{self.rank}"))
            if value is None:
                continue
            received[sender] = np.array(value, copy=True)
            if sender != self.rank:
                self.stats.record_recv(received[sender].nbytes, tag=tag)
        self.barrier()
        for dest in outgoing:
            self._store.pop((self.rank, f"{prefix}/to{dest}"), None)
        return received

    def allreduce(self, array: np.ndarray, op: str = "sum", tag: str = "allreduce") -> np.ndarray:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._store[(self.rank, key)] = array
        contributions = [self._wait_get(r, key) for r in range(self.world_size)]
        result = reduce_arrays(contributions, op).astype(array.dtype, copy=False)
        ring_bytes = int(2 * array.nbytes * (self.world_size - 1) / max(self.world_size, 1))
        self.stats.record_send(ring_bytes, tag=tag)
        self.stats.record_recv(ring_bytes, tag=tag)
        self.barrier()
        self._store.pop((self.rank, key), None)
        return result

    def allgather(self, array: np.ndarray, tag: str = "allgather") -> List[np.ndarray]:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._store[(self.rank, key)] = array
        gathered = [np.array(self._wait_get(r, key), copy=True)
                    for r in range(self.world_size)]
        self.barrier()
        self._store.pop((self.rank, key), None)
        return gathered


def _mp_worker(rank: int, world_size: int, store, barrier, worker_fn, worker_arg,
               common_kwargs, result_queue, timeout_s: float) -> None:
    comm = MultiprocessCommunicator(rank, world_size, store, barrier, timeout_s=timeout_s)
    try:
        if worker_arg is _NO_ARG:
            result = worker_fn(rank, comm, **common_kwargs)
        else:
            result = worker_fn(rank, comm, worker_arg, **common_kwargs)
        result_queue.put((rank, "ok", result))
    except Exception as exc:  # noqa: BLE001 - report to parent, do not hang peers
        result_queue.put((rank, "error", repr(exc)))


class _NoArg:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no per-worker argument>"


_NO_ARG = _NoArg()


def run_multiprocess(worker_fn: Callable[..., Any], world_size: int,
                     worker_args: Optional[Sequence[Any]] = None,
                     timeout_s: float = _DEFAULT_TIMEOUT_S,
                     **common_kwargs: Any) -> List[Any]:
    """Run ``worker_fn`` on ``world_size`` separate processes and collect results.

    The per-worker results are returned indexed by rank.  Any worker error is
    re-raised in the parent with the failing rank identified.
    """
    if worker_args is not None and len(worker_args) != world_size:
        raise ValueError(f"worker_args must have length {world_size}")
    # Fork (the POSIX default) keeps worker functions picklable-by-reference and
    # avoids re-importing the caller's module in the children.
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with mp.Manager() as manager:
        store = manager.dict()
        barrier = manager.Barrier(world_size)
        result_queue = manager.Queue()
        processes = []
        for rank in range(world_size):
            arg = worker_args[rank] if worker_args is not None else _NO_ARG
            process = ctx.Process(
                target=_mp_worker,
                args=(rank, world_size, store, barrier, worker_fn, arg, common_kwargs,
                      result_queue, timeout_s),
            )
            process.start()
            processes.append(process)
        results: List[Any] = [None] * world_size
        errors: List[str] = []
        for _ in range(world_size):
            rank, status, payload = result_queue.get(timeout=timeout_s)
            if status == "ok":
                results[rank] = payload
            else:
                errors.append(f"rank {rank}: {payload}")
        for process in processes:
            process.join(timeout=timeout_s)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        if errors:
            raise RuntimeError("multiprocess workers failed: " + "; ".join(errors))
    return results
