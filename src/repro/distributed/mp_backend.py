"""Multiprocessing backend (true multi-process workers on one host).

The thread backend in :mod:`repro.distributed.thread_backend` is the default
because it is fast to spin up and lets the benchmarks simulate up to 32
workers cheaply.  This module provides a small, slower, but *genuinely*
multi-process backend built on :mod:`multiprocessing` primitives, matching
the paper's deployment model of one training process per machine ("repro
band": multi-process on one big server).  It exists to demonstrate that the
SAR algorithms only rely on the abstract :class:`Communicator` interface; the
example/test keep the worker count and graph size small.

Usage::

    from repro.distributed.mp_backend import run_multiprocess
    results = run_multiprocess(worker_fn, world_size=2)

``worker_fn`` must be a module-level (picklable) function with the usual
``(rank, comm, *args)`` signature.

Failure semantics
-----------------

* A worker that **raises** posts an error result; the parent writes an abort
  flag into the shared store and breaks the barrier, so survivors blocked in
  a collective unblock promptly (instead of spinning until their timeout),
  post their own errors, and exit.  The parent raises
  :class:`WorkerFailedError` naming the failing rank.
* A worker that **dies without posting anything** (killed, segfault,
  ``os._exit``) is detected by polling ``Process.is_alive`` alongside the
  result queue; the parent aborts the cluster the same way, terminates any
  survivors that do not exit within a short grace period, and raises naming
  the dead rank and its exit code.
* On every path — success, error, crash, timeout — no child process outlives
  the :func:`run_multiprocess` call.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.comm import STREAM_KEY_PREFIX, Communicator, reduce_arrays

_DEFAULT_TIMEOUT_S = 300.0
#: parent-side liveness-check interval while draining the result queue
_POLL_S = 0.2
#: bounded wait slice while a worker is parked on the store condition
_WAIT_SLICE_S = 0.1
#: how long survivors get to post their errors after the cluster aborts
_ABORT_GRACE_S = 10.0
#: store key carrying the abort message (rank ``-1`` collides with no worker)
_ABORT_KEY = (-1, "__abort__")


class WorkerFailedError(RuntimeError):
    """One or more worker processes raised, died, or timed out."""


def _poison_cluster(store, barrier, condition, message: str) -> None:
    """Flag the cluster as aborted and wake every blocked worker.

    Writes the abort message into the shared store (every communicator wait
    loop checks it), breaks the barrier (unblocks collectives), and
    broadcasts the store condition (unblocks parked ``_wait_get`` readers).
    Each step tolerates a Manager that is already torn down.
    """
    try:
        store[_ABORT_KEY] = message
    except Exception:  # pragma: no cover - manager already gone
        pass
    try:
        barrier.abort()
    except Exception:  # pragma: no cover - manager already gone
        pass
    try:
        with condition:
            condition.notify_all()
    except Exception:  # pragma: no cover - manager already gone
        pass


class MultiprocessCommunicator(Communicator):
    """Communicator backed by a ``multiprocessing.Manager`` dict and barrier.

    Blocking reads park on a shared Manager :class:`~threading.Condition` in
    bounded slices (every publish notifies it) instead of hammering the
    Manager proxy with a few-millisecond poll, and every wait loop checks the
    abort flag so a peer failure propagates within one slice.
    """

    def __init__(self, rank: int, world_size: int, store, barrier, condition,
                 timeout_s: float = _DEFAULT_TIMEOUT_S):
        super().__init__(rank, world_size)
        self._store = store
        self._barrier = barrier
        self._cond = condition
        self._timeout_s = timeout_s
        self._collective_counter = 0
        self._exchange_counter = 0

    # -- point-to-point ------------------------------------------------- #
    def _put_and_notify(self, store_key, array: np.ndarray) -> None:
        self._store[store_key] = array
        with self._cond:
            self._cond.notify_all()

    def _check_abort(self) -> None:
        message = self._store.get(_ABORT_KEY)
        if message is not None:
            raise WorkerFailedError(f"rank {self.rank}: cluster aborted: {message}")

    def publish(self, key: str, array: np.ndarray) -> None:
        self._put_and_notify((self.rank, key), np.asarray(array))

    def _wait_get(self, owner_rank: int, key: str) -> np.ndarray:
        deadline = time.monotonic() + self._timeout_s
        while True:
            value = self._store.get((owner_rank, key))
            if value is not None:
                return value
            self._check_abort()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank} timed out waiting for rank {owner_rank} key {key!r}"
                )
            with self._cond:
                # Re-check under the lock: a publisher cannot notify between
                # this get and the wait (notify needs the same lock), so a
                # publish is either seen here or wakes the wait below.
                if self._store.get((owner_rank, key)) is None:
                    self._cond.wait(min(_WAIT_SLICE_S, remaining))

    def fetch(self, owner_rank: int, key: str, rows: Optional[np.ndarray] = None,
              tag: str = "halo") -> np.ndarray:
        array = self._wait_get(owner_rank, key)
        out = array[np.asarray(rows)] if rows is not None else np.array(array, copy=True)
        if owner_rank != self.rank:
            self.stats.record_recv(out.nbytes, tag=tag)
        return out

    def unpublish(self, key: str) -> None:
        self._store.pop((self.rank, key), None)

    def clear_published(self) -> None:
        # Keyed-stream payloads (background sampling frontiers) survive the
        # iteration-boundary sweep; they are reclaimed via release_keyed.
        for store_key in list(self._store.keys()):
            if store_key[0] == self.rank and not store_key[1].startswith(STREAM_KEY_PREFIX):
                self._store.pop(store_key, None)

    # -- collectives ----------------------------------------------------- #
    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._timeout_s)
        except Exception as exc:  # BrokenBarrierError (proxied) or timeout
            self._check_abort()
            raise WorkerFailedError(
                f"rank {self.rank}: barrier broken or timed out (a worker died "
                f"or exceeded the {self._timeout_s:.0f}s timeout)"
            ) from exc

    def exchange(self, key: str, outgoing: Dict[int, np.ndarray],
                 tag: str = "exchange") -> Dict[int, np.ndarray]:
        """All-to-all over the store: one write and one pop-read per peer.

        Each rank's payload for a peer is written once under a per-call
        unique prefix; after a single barrier the receiver *pops* the entries
        addressed to it, so the read doubles as cleanup and the old
        second barrier (which only guarded a cleanup sweep) is gone.  The
        per-call counter advances identically on every rank, so a slow
        reader can never collide with the next call's entries.
        """
        self._exchange_counter += 1
        prefix = f"__xchg/{self._exchange_counter}/{key}"
        received: Dict[int, np.ndarray] = {}
        for dest, array in outgoing.items():
            if not 0 <= dest < self.world_size:
                raise ValueError(f"exchange destination {dest} out of range")
            array = np.asarray(array)
            if dest == self.rank:
                received[self.rank] = np.array(array, copy=True)
                continue
            self._store[(self.rank, f"{prefix}/to{dest}")] = array
            self.stats.record_send(array.nbytes, tag=tag)
        self.barrier()
        for sender in range(self.world_size):
            if sender == self.rank:
                continue
            value = self._store.pop((sender, f"{prefix}/to{self.rank}"), None)
            if value is None:
                continue
            received[sender] = np.array(value, copy=True)
            self.stats.record_recv(received[sender].nbytes, tag=tag)
        return received

    def allreduce(self, array: np.ndarray, op: str = "sum", tag: str = "allreduce") -> np.ndarray:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._put_and_notify((self.rank, key), array)
        contributions = [self._wait_get(r, key) for r in range(self.world_size)]
        result = reduce_arrays(contributions, op).astype(array.dtype, copy=False)
        ring_bytes = int(2 * array.nbytes * (self.world_size - 1) / max(self.world_size, 1))
        self.stats.record_send(ring_bytes, tag=tag)
        self.stats.record_recv(ring_bytes, tag=tag)
        self.barrier()
        self._store.pop((self.rank, key), None)
        return result

    def allgather(self, array: np.ndarray, tag: str = "allgather") -> List[np.ndarray]:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._put_and_notify((self.rank, key), array)
        gathered = [np.array(self._wait_get(r, key), copy=True)
                    for r in range(self.world_size)]
        self.barrier()
        self._store.pop((self.rank, key), None)
        return gathered


def _mp_worker(rank: int, world_size: int, store, barrier, condition, worker_fn,
               worker_arg, common_kwargs, result_queue, timeout_s: float) -> None:
    comm = MultiprocessCommunicator(rank, world_size, store, barrier, condition,
                                    timeout_s=timeout_s)
    try:
        if worker_arg is _NO_ARG:
            result = worker_fn(rank, comm, **common_kwargs)
        else:
            result = worker_fn(rank, comm, worker_arg, **common_kwargs)
        result_queue.put((rank, "ok", result))
    except Exception as exc:  # noqa: BLE001 - report to parent, do not hang peers
        result_queue.put((rank, "error", repr(exc)))


class _NoArg:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no per-worker argument>"


_NO_ARG = _NoArg()


def run_multiprocess(worker_fn: Callable[..., Any], world_size: int,
                     worker_args: Optional[Sequence[Any]] = None,
                     timeout_s: float = _DEFAULT_TIMEOUT_S,
                     **common_kwargs: Any) -> List[Any]:
    """Run ``worker_fn`` on ``world_size`` separate processes and collect results.

    The per-worker results are returned indexed by rank.  Any worker error —
    an exception, a silent death, or a timeout — is re-raised in the parent
    as :class:`WorkerFailedError` with the failing rank identified, and no
    child process is left behind (see the module docstring for the exact
    failure semantics).
    """
    if worker_args is not None and len(worker_args) != world_size:
        raise ValueError(f"worker_args must have length {world_size}")
    # Fork (the POSIX default) keeps worker functions picklable-by-reference and
    # avoids re-importing the caller's module in the children.
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with mp.Manager() as manager:
        store = manager.dict()
        barrier = manager.Barrier(world_size)
        condition = manager.Condition()
        result_queue = manager.Queue()
        processes: List[mp.process.BaseProcess] = []
        for rank in range(world_size):
            arg = worker_args[rank] if worker_args is not None else _NO_ARG
            process = ctx.Process(
                target=_mp_worker,
                args=(rank, world_size, store, barrier, condition, worker_fn, arg,
                      common_kwargs, result_queue, timeout_s),
            )
            process.start()
            processes.append(process)

        results: List[Any] = [None] * world_size
        errors: List[str] = []
        reported: set = set()
        deadline = time.monotonic() + timeout_s
        aborted = False

        def _abort(message: str) -> None:
            """Unblock every survivor and bound how long we keep waiting."""
            nonlocal aborted, deadline
            if aborted:
                return
            aborted = True
            _poison_cluster(store, barrier, condition, message)
            deadline = min(deadline, time.monotonic() + _ABORT_GRACE_S)

        def _record(rank: int, status: str, payload: Any) -> None:
            reported.add(rank)
            if status == "ok":
                results[rank] = payload
            elif errors and "cluster aborted" in str(payload):
                # Follow-on failure of a survivor we unblocked ourselves; the
                # root cause is already recorded.
                pass
            else:
                errors.append(f"rank {rank}: {payload}")
                _abort(errors[-1])

        try:
            while len(reported) < world_size:
                try:
                    _record(*result_queue.get(timeout=_POLL_S))
                    continue
                except queue_mod.Empty:
                    pass
                if time.monotonic() > deadline:
                    if not errors:
                        missing = sorted(set(range(world_size)) - reported)
                        errors.append(
                            f"timed out after {timeout_s:.0f}s waiting for ranks {missing}"
                        )
                        _abort(errors[-1])
                    break
                crashed = [r for r in range(world_size)
                           if r not in reported and not processes[r].is_alive()]
                if not crashed:
                    continue
                # A dead rank's result may still be in flight through the
                # Manager — drain once more before declaring it crashed.
                try:
                    _record(*result_queue.get(timeout=_POLL_S))
                    continue
                except queue_mod.Empty:
                    pass
                for rank in crashed:
                    if rank not in reported:
                        _record(rank, "error",
                                "worker process died without posting a result "
                                f"(exitcode {processes[rank].exitcode})")
        finally:
            # Leak nothing: give workers a moment to exit on their own, then
            # escalate terminate → kill.
            for process in processes:
                process.join(timeout=2.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                if process.is_alive():
                    process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - terminate ignored
                    process.kill()
                    process.join(timeout=5.0)
        if errors:
            raise WorkerFailedError("multiprocess workers failed: " + "; ".join(errors))
    return results


# --------------------------------------------------------------------------- #
# long-lived service workers (request/response loop per forked process)
# --------------------------------------------------------------------------- #

#: request kinds reserved by the worker loop itself.
_STOP_KIND = "__stop__"
_CRASH_KIND = "__crash__"
#: job id carrying each worker's startup acknowledgement.
_INIT_JOB = 0
#: how long stop() lets workers drain before escalating terminate -> kill.
_STOP_GRACE_S = 2.0


def portable(payload: Any) -> Any:
    """Make a response payload cheap and safe to ship through an mp queue.

    Queue transport pickles every payload; a non-contiguous array (a slice,
    a transpose) pickles through a private copy anyway, so taking the
    contiguous copy *here* keeps the feeder thread from doing it and makes
    the cost explicit at the call site.  Tuples/lists/dicts are walked;
    everything else is returned untouched (and must be picklable).
    """
    if isinstance(payload, np.ndarray):
        return np.ascontiguousarray(payload)
    if isinstance(payload, tuple):
        return tuple(portable(item) for item in payload)
    if isinstance(payload, list):
        return [portable(item) for item in payload]
    if isinstance(payload, dict):
        return {key: portable(value) for key, value in payload.items()}
    return payload


def _service_worker(rank: int, world_size: int, store, barrier, condition,
                    requests, responses, service_factory, timeout_s: float) -> None:
    """Long-lived request loop of one forked service worker.

    ``service_factory(rank, comm)`` builds the worker's state (graph handles,
    stores, caches — collective construction is fine: every worker runs it
    concurrently) and returns a ``handler(kind, payload)`` callable.  The
    loop then answers ``(kind, job_id, payload)`` requests until the stop
    sentinel arrives.  A handler exception poisons the cluster before the
    error response is posted, so peers blocked in the failed job's
    collectives unblock within one wait slice instead of timing out.
    """
    comm = MultiprocessCommunicator(rank, world_size, store, barrier, condition,
                                    timeout_s=timeout_s)
    try:
        handler = service_factory(rank, comm)
    except BaseException as exc:  # noqa: BLE001 - report to parent, unblock peers
        _poison_cluster(store, barrier, condition,
                        f"rank {rank} failed to initialize: {exc!r}")
        responses.put((rank, _INIT_JOB, "error", repr(exc)))
        return
    responses.put((rank, _INIT_JOB, "ok", None))
    while True:
        kind, job_id, payload = requests.get()
        if kind == _STOP_KIND:
            break
        if kind == _CRASH_KIND:
            # Fault injection (tests): die mid-job without posting anything,
            # exactly like a segfault between dequeue and response.
            os._exit(13)
        try:
            result = handler(kind, payload)
        except BaseException as exc:  # noqa: BLE001 - keep the loop alive
            _poison_cluster(store, barrier, condition,
                            f"rank {rank} failed on job {job_id}: {exc!r}")
            responses.put((rank, job_id, "error", repr(exc)))
            continue
        responses.put((rank, job_id, "ok", portable(result)))


class MultiprocessServiceCluster:
    """``world_size`` long-lived forked worker processes behind job queues.

    :func:`run_multiprocess` forks, runs one function, and reaps — the right
    shape for training jobs.  Serving needs the opposite lifecycle: workers
    that build their state once (shard graph handles, feature stores,
    caches) and then answer an open-ended stream of small requests.  This
    cluster provides that loop:

    * every worker gets its own request queue; :meth:`request` posts one
      ``(kind, payload)`` job to **all** of them and blocks until every rank
      responded (responses cross one shared queue, matched by job id);
    * while waiting, the parent polls ``Process.is_alive`` alongside the
      response queue — a worker that dies without responding fails the job
      with :class:`WorkerFailedError` naming the dead rank, after poisoning
      the cluster so surviving workers blocked in the dead job's collectives
      unblock promptly (no hang);
    * a poisoned cluster fails every later :meth:`request` immediately;
      :meth:`stop` remains the only teardown path and always reaps: stop
      sentinels first, then join, then terminate -> kill stragglers, then
      the Manager process itself — no child outlives it.

    Requires the ``fork`` start method: workers inherit the factory's
    captured state (model, shards, feature matrices) by address-space copy
    instead of pickling.  Request/response payloads *do* cross a pickling
    queue — keep them to the per-job data (seed ids, logit rows, state
    dicts).
    """

    def __init__(self, service_factory: Callable[[int, Communicator], Callable],
                 world_size: int, timeout_s: float = _DEFAULT_TIMEOUT_S,
                 name: str = "service"):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self.name = name
        self._service_factory = service_factory
        self._timeout_s = timeout_s
        self._lock = threading.Lock()
        self._manager = None
        self._store = None
        self._barrier = None
        self._condition = None
        self._requests: List[Any] = []
        self._responses = None
        self._processes: List[mp.process.BaseProcess] = []
        self._job_counter = _INIT_JOB
        self._started = False
        self._stopped = False
        self._failure: Optional[str] = None

    # -- lifecycle -------------------------------------------------------- #
    def start(self) -> "MultiprocessServiceCluster":
        """Fork the workers and wait for every rank's startup ack."""
        if self._started:
            raise RuntimeError("cluster is already started")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "MultiprocessServiceCluster requires the 'fork' start method "
                "(workers inherit the service state by address-space copy); "
                "this platform does not support fork"
            )
        ctx = mp.get_context("fork")
        self._manager = mp.Manager()
        self._store = self._manager.dict()
        self._barrier = self._manager.Barrier(self.world_size)
        self._condition = self._manager.Condition()
        self._requests = [ctx.Queue() for _ in range(self.world_size)]
        self._responses = ctx.Queue()
        self._processes = [
            ctx.Process(
                target=_service_worker,
                args=(rank, self.world_size, self._store, self._barrier,
                      self._condition, self._requests[rank], self._responses,
                      self._service_factory, self._timeout_s),
                name=f"{self.name}-{rank}",
                daemon=True,
            )
            for rank in range(self.world_size)
        ]
        self._started = True
        for process in self._processes:
            process.start()
        try:
            self._collect(_INIT_JOB)
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Reap every worker (graceful drain, then terminate -> kill) — idempotent."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        for process, requests in zip(self._processes, self._requests):
            if process.is_alive():
                try:
                    requests.put((_STOP_KIND, -1, None))
                except Exception:  # pragma: no cover - queue torn down
                    pass
        for process in self._processes:
            process.join(timeout=_STOP_GRACE_S)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            if process.is_alive():
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=5.0)
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    # -- introspection ---------------------------------------------------- #
    @property
    def processes(self) -> List[mp.process.BaseProcess]:
        """The worker processes, indexed by rank (for liveness checks)."""
        return list(self._processes)

    @property
    def running(self) -> bool:
        return (self._started and not self._stopped
                and all(p.is_alive() for p in self._processes))

    @property
    def failure(self) -> Optional[str]:
        """The message that poisoned the cluster, or ``None`` while healthy."""
        return self._failure

    # -- job dispatch ------------------------------------------------------ #
    def request(self, kind: str, payload: Any = None) -> List[Any]:
        """Run one job on every worker; per-rank responses indexed by rank.

        Thread-safe (jobs from concurrent callers are serialized, so every
        worker sees the same job order).  Raises :class:`WorkerFailedError`
        if any worker errors or dies before responding.
        """
        with self._lock:
            if not self._started or self._stopped:
                raise RuntimeError("cluster is not running")
            if self._failure is not None:
                raise WorkerFailedError(
                    f"cluster is poisoned by an earlier failure: {self._failure}"
                )
            self._job_counter += 1
            job_id = self._job_counter
            for requests in self._requests:
                requests.put((kind, job_id, portable(payload)))
            return self._collect(job_id)

    def inject_crash(self, rank: int) -> None:
        """Fault injection: make ``rank`` die mid-loop before its next job.

        The crash sentinel is queued in order, so a job posted *after* this
        call finds the rank already dead — the deterministic way for tests
        to exercise the mid-request failure path.
        """
        self._requests[rank].put((_CRASH_KIND, -1, None))

    def _collect(self, job_id: int) -> List[Any]:
        """Drain responses for ``job_id`` with liveness polling (see class doc)."""
        results: List[Any] = [None] * self.world_size
        reported: set = set()
        errors: List[str] = []
        deadline = time.monotonic() + self._timeout_s

        def _record(rank: int, status: str, payload: Any) -> None:
            reported.add(rank)
            if status == "ok":
                results[rank] = payload
            elif errors and "cluster aborted" in str(payload):
                # Follow-on failure of a survivor the poisoning unblocked;
                # the root cause is already recorded.
                pass
            else:
                errors.append(f"rank {rank}: {payload}")
                self._poison(errors[-1])

        def _drain_one() -> bool:
            try:
                rank, jid, status, payload = self._responses.get(timeout=_POLL_S)
            except queue_mod.Empty:
                return False
            if jid == job_id:
                _record(rank, status, payload)
            # Stale responses (an aborted earlier job's stragglers) are
            # dropped: their job already raised in the parent.
            return True

        while len(reported) < self.world_size and not (errors and
                                                       reported >= self._live_or_reported(reported)):
            if _drain_one():
                continue
            if time.monotonic() > deadline:
                missing = sorted(set(range(self.world_size)) - reported)
                errors.append(
                    f"timed out after {self._timeout_s:.0f}s waiting for "
                    f"ranks {missing}"
                )
                self._poison(errors[-1])
                break
            crashed = [r for r in range(self.world_size)
                       if r not in reported and not self._processes[r].is_alive()]
            if not crashed:
                continue
            # A dead rank's response may still be in flight through the
            # queue feeder — drain once more before declaring it crashed.
            if _drain_one():
                continue
            for rank in crashed:
                if rank not in reported:
                    _record(rank, "error",
                            "worker process died without responding "
                            f"(exitcode {self._processes[rank].exitcode})")
        if errors:
            raise WorkerFailedError(
                f"{self.name} workers failed: " + "; ".join(errors)
            )
        return results

    def _live_or_reported(self, reported: set) -> set:
        """Ranks we can still expect a response from, plus those heard."""
        return reported | {
            r for r in range(self.world_size) if self._processes[r].is_alive()
        }

    def _poison(self, message: str) -> None:
        if self._failure is None:
            self._failure = message
        _poison_cluster(self._store, self._barrier, self._condition, message)

    def __enter__(self) -> "MultiprocessServiceCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
