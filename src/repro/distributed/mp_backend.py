"""Multiprocessing backend (true multi-process workers on one host).

The thread backend in :mod:`repro.distributed.thread_backend` is the default
because it is fast to spin up and lets the benchmarks simulate up to 32
workers cheaply.  This module provides a small, slower, but *genuinely*
multi-process backend built on :mod:`multiprocessing` primitives, matching
the paper's deployment model of one training process per machine ("repro
band": multi-process on one big server).  It exists to demonstrate that the
SAR algorithms only rely on the abstract :class:`Communicator` interface; the
example/test keep the worker count and graph size small.

Usage::

    from repro.distributed.mp_backend import run_multiprocess
    results = run_multiprocess(worker_fn, world_size=2)

``worker_fn`` must be a module-level (picklable) function with the usual
``(rank, comm, *args)`` signature.

Failure semantics
-----------------

* A worker that **raises** posts an error result; the parent writes an abort
  flag into the shared store and breaks the barrier, so survivors blocked in
  a collective unblock promptly (instead of spinning until their timeout),
  post their own errors, and exit.  The parent raises
  :class:`WorkerFailedError` naming the failing rank.
* A worker that **dies without posting anything** (killed, segfault,
  ``os._exit``) is detected by polling ``Process.is_alive`` alongside the
  result queue; the parent aborts the cluster the same way, terminates any
  survivors that do not exit within a short grace period, and raises naming
  the dead rank and its exit code.
* On every path — success, error, crash, timeout — no child process outlives
  the :func:`run_multiprocess` call.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.distributed.comm import STREAM_KEY_PREFIX, Communicator, reduce_arrays

_DEFAULT_TIMEOUT_S = 300.0
#: parent-side liveness-check interval while draining the result queue
_POLL_S = 0.2
#: bounded wait slice while a worker is parked on the store condition
_WAIT_SLICE_S = 0.1
#: how long survivors get to post their errors after the cluster aborts
_ABORT_GRACE_S = 10.0
#: store key carrying the abort message (rank ``-1`` collides with no worker)
_ABORT_KEY = (-1, "__abort__")


class WorkerFailedError(RuntimeError):
    """One or more worker processes raised, died, or timed out."""


class MultiprocessCommunicator(Communicator):
    """Communicator backed by a ``multiprocessing.Manager`` dict and barrier.

    Blocking reads park on a shared Manager :class:`~threading.Condition` in
    bounded slices (every publish notifies it) instead of hammering the
    Manager proxy with a few-millisecond poll, and every wait loop checks the
    abort flag so a peer failure propagates within one slice.
    """

    def __init__(self, rank: int, world_size: int, store, barrier, condition,
                 timeout_s: float = _DEFAULT_TIMEOUT_S):
        super().__init__(rank, world_size)
        self._store = store
        self._barrier = barrier
        self._cond = condition
        self._timeout_s = timeout_s
        self._collective_counter = 0
        self._exchange_counter = 0

    # -- point-to-point ------------------------------------------------- #
    def _put_and_notify(self, store_key, array: np.ndarray) -> None:
        self._store[store_key] = array
        with self._cond:
            self._cond.notify_all()

    def _check_abort(self) -> None:
        message = self._store.get(_ABORT_KEY)
        if message is not None:
            raise WorkerFailedError(f"rank {self.rank}: cluster aborted: {message}")

    def publish(self, key: str, array: np.ndarray) -> None:
        self._put_and_notify((self.rank, key), np.asarray(array))

    def _wait_get(self, owner_rank: int, key: str) -> np.ndarray:
        deadline = time.monotonic() + self._timeout_s
        while True:
            value = self._store.get((owner_rank, key))
            if value is not None:
                return value
            self._check_abort()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"rank {self.rank} timed out waiting for rank {owner_rank} key {key!r}"
                )
            with self._cond:
                # Re-check under the lock: a publisher cannot notify between
                # this get and the wait (notify needs the same lock), so a
                # publish is either seen here or wakes the wait below.
                if self._store.get((owner_rank, key)) is None:
                    self._cond.wait(min(_WAIT_SLICE_S, remaining))

    def fetch(self, owner_rank: int, key: str, rows: Optional[np.ndarray] = None,
              tag: str = "halo") -> np.ndarray:
        array = self._wait_get(owner_rank, key)
        out = array[np.asarray(rows)] if rows is not None else np.array(array, copy=True)
        if owner_rank != self.rank:
            self.stats.record_recv(out.nbytes, tag=tag)
        return out

    def unpublish(self, key: str) -> None:
        self._store.pop((self.rank, key), None)

    def clear_published(self) -> None:
        # Keyed-stream payloads (background sampling frontiers) survive the
        # iteration-boundary sweep; they are reclaimed via release_keyed.
        for store_key in list(self._store.keys()):
            if store_key[0] == self.rank and not store_key[1].startswith(STREAM_KEY_PREFIX):
                self._store.pop(store_key, None)

    # -- collectives ----------------------------------------------------- #
    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._timeout_s)
        except Exception as exc:  # BrokenBarrierError (proxied) or timeout
            self._check_abort()
            raise WorkerFailedError(
                f"rank {self.rank}: barrier broken or timed out (a worker died "
                f"or exceeded the {self._timeout_s:.0f}s timeout)"
            ) from exc

    def exchange(self, key: str, outgoing: Dict[int, np.ndarray],
                 tag: str = "exchange") -> Dict[int, np.ndarray]:
        """All-to-all over the store: one write and one pop-read per peer.

        Each rank's payload for a peer is written once under a per-call
        unique prefix; after a single barrier the receiver *pops* the entries
        addressed to it, so the read doubles as cleanup and the old
        second barrier (which only guarded a cleanup sweep) is gone.  The
        per-call counter advances identically on every rank, so a slow
        reader can never collide with the next call's entries.
        """
        self._exchange_counter += 1
        prefix = f"__xchg/{self._exchange_counter}/{key}"
        received: Dict[int, np.ndarray] = {}
        for dest, array in outgoing.items():
            if not 0 <= dest < self.world_size:
                raise ValueError(f"exchange destination {dest} out of range")
            array = np.asarray(array)
            if dest == self.rank:
                received[self.rank] = np.array(array, copy=True)
                continue
            self._store[(self.rank, f"{prefix}/to{dest}")] = array
            self.stats.record_send(array.nbytes, tag=tag)
        self.barrier()
        for sender in range(self.world_size):
            if sender == self.rank:
                continue
            value = self._store.pop((sender, f"{prefix}/to{self.rank}"), None)
            if value is None:
                continue
            received[sender] = np.array(value, copy=True)
            self.stats.record_recv(received[sender].nbytes, tag=tag)
        return received

    def allreduce(self, array: np.ndarray, op: str = "sum", tag: str = "allreduce") -> np.ndarray:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._put_and_notify((self.rank, key), array)
        contributions = [self._wait_get(r, key) for r in range(self.world_size)]
        result = reduce_arrays(contributions, op).astype(array.dtype, copy=False)
        ring_bytes = int(2 * array.nbytes * (self.world_size - 1) / max(self.world_size, 1))
        self.stats.record_send(ring_bytes, tag=tag)
        self.stats.record_recv(ring_bytes, tag=tag)
        self.barrier()
        self._store.pop((self.rank, key), None)
        return result

    def allgather(self, array: np.ndarray, tag: str = "allgather") -> List[np.ndarray]:
        array = np.asarray(array)
        self._collective_counter += 1
        key = f"__coll/{self._collective_counter}"
        self._put_and_notify((self.rank, key), array)
        gathered = [np.array(self._wait_get(r, key), copy=True)
                    for r in range(self.world_size)]
        self.barrier()
        self._store.pop((self.rank, key), None)
        return gathered


def _mp_worker(rank: int, world_size: int, store, barrier, condition, worker_fn,
               worker_arg, common_kwargs, result_queue, timeout_s: float) -> None:
    comm = MultiprocessCommunicator(rank, world_size, store, barrier, condition,
                                    timeout_s=timeout_s)
    try:
        if worker_arg is _NO_ARG:
            result = worker_fn(rank, comm, **common_kwargs)
        else:
            result = worker_fn(rank, comm, worker_arg, **common_kwargs)
        result_queue.put((rank, "ok", result))
    except Exception as exc:  # noqa: BLE001 - report to parent, do not hang peers
        result_queue.put((rank, "error", repr(exc)))


class _NoArg:
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no per-worker argument>"


_NO_ARG = _NoArg()


def run_multiprocess(worker_fn: Callable[..., Any], world_size: int,
                     worker_args: Optional[Sequence[Any]] = None,
                     timeout_s: float = _DEFAULT_TIMEOUT_S,
                     **common_kwargs: Any) -> List[Any]:
    """Run ``worker_fn`` on ``world_size`` separate processes and collect results.

    The per-worker results are returned indexed by rank.  Any worker error —
    an exception, a silent death, or a timeout — is re-raised in the parent
    as :class:`WorkerFailedError` with the failing rank identified, and no
    child process is left behind (see the module docstring for the exact
    failure semantics).
    """
    if worker_args is not None and len(worker_args) != world_size:
        raise ValueError(f"worker_args must have length {world_size}")
    # Fork (the POSIX default) keeps worker functions picklable-by-reference and
    # avoids re-importing the caller's module in the children.
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with mp.Manager() as manager:
        store = manager.dict()
        barrier = manager.Barrier(world_size)
        condition = manager.Condition()
        result_queue = manager.Queue()
        processes: List[mp.process.BaseProcess] = []
        for rank in range(world_size):
            arg = worker_args[rank] if worker_args is not None else _NO_ARG
            process = ctx.Process(
                target=_mp_worker,
                args=(rank, world_size, store, barrier, condition, worker_fn, arg,
                      common_kwargs, result_queue, timeout_s),
            )
            process.start()
            processes.append(process)

        results: List[Any] = [None] * world_size
        errors: List[str] = []
        reported: set = set()
        deadline = time.monotonic() + timeout_s
        aborted = False

        def _abort(message: str) -> None:
            """Unblock every survivor and bound how long we keep waiting."""
            nonlocal aborted, deadline
            if aborted:
                return
            aborted = True
            store[_ABORT_KEY] = message
            try:
                barrier.abort()
            except Exception:  # pragma: no cover - manager already torn down
                pass
            with condition:
                condition.notify_all()
            deadline = min(deadline, time.monotonic() + _ABORT_GRACE_S)

        def _record(rank: int, status: str, payload: Any) -> None:
            reported.add(rank)
            if status == "ok":
                results[rank] = payload
            elif errors and "cluster aborted" in str(payload):
                # Follow-on failure of a survivor we unblocked ourselves; the
                # root cause is already recorded.
                pass
            else:
                errors.append(f"rank {rank}: {payload}")
                _abort(errors[-1])

        try:
            while len(reported) < world_size:
                try:
                    _record(*result_queue.get(timeout=_POLL_S))
                    continue
                except queue_mod.Empty:
                    pass
                if time.monotonic() > deadline:
                    if not errors:
                        missing = sorted(set(range(world_size)) - reported)
                        errors.append(
                            f"timed out after {timeout_s:.0f}s waiting for ranks {missing}"
                        )
                        _abort(errors[-1])
                    break
                crashed = [r for r in range(world_size)
                           if r not in reported and not processes[r].is_alive()]
                if not crashed:
                    continue
                # A dead rank's result may still be in flight through the
                # Manager — drain once more before declaring it crashed.
                try:
                    _record(*result_queue.get(timeout=_POLL_S))
                    continue
                except queue_mod.Empty:
                    pass
                for rank in crashed:
                    if rank not in reported:
                        _record(rank, "error",
                                "worker process died without posting a result "
                                f"(exitcode {processes[rank].exitcode})")
        finally:
            # Leak nothing: give workers a moment to exit on their own, then
            # escalate terminate → kill.
            for process in processes:
                process.join(timeout=2.0)
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                if process.is_alive():
                    process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - terminate ignored
                    process.kill()
                    process.join(timeout=5.0)
        if errors:
            raise WorkerFailedError("multiprocess workers failed: " + "; ".join(errors))
    return results
