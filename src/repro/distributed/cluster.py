"""Simulated cluster: launch N workers (threads), collect results and metrics.

A "worker function" has the signature::

    def worker_fn(rank: int, comm: Communicator, shard, **kwargs) -> Any

:class:`SimulatedCluster` spawns one thread per worker, installs a
per-worker :class:`~repro.tensor.memory.MemoryTracker` and a thread-CPU
timer, runs the function, and gathers everything into a
:class:`ClusterRunResult`.  Any worker exception aborts the shared store so
the remaining workers unwind instead of deadlocking at a barrier.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.distributed.comm import CommStats
from repro.distributed.thread_backend import (
    ClusterAborted,
    create_thread_communicators,
)
from repro.tensor.memory import MemoryTracker, track_memory
from repro.utils.logging import get_logger
from repro.utils.timing import WorkerTimer
from repro.utils.validation import check_positive_int

logger = get_logger("distributed.cluster")


@dataclass
class ClusterRunResult:
    """Per-worker outputs and measurements of one cluster run."""

    world_size: int
    results: List[Any]
    memory: List[MemoryTracker]
    comm_stats: List[CommStats]
    compute_times: List[float]

    @property
    def peak_memory_bytes(self) -> List[int]:
        return [t.peak_bytes for t in self.memory]

    @property
    def peak_memory_mb(self) -> List[float]:
        return [t.peak_mb for t in self.memory]

    @property
    def max_peak_memory_mb(self) -> float:
        return max(self.peak_memory_mb) if self.memory else 0.0

    @property
    def max_compute_time(self) -> float:
        return max(self.compute_times) if self.compute_times else 0.0

    @property
    def total_bytes_communicated(self) -> int:
        return sum(s.bytes_sent for s in self.comm_stats)

    def total_sent_by_tag(self) -> Dict[str, int]:
        """Cluster-wide sent bytes per communication tag."""
        return self._total_by_tag("sent_by_tag")

    def total_received_by_tag(self) -> Dict[str, int]:
        """Cluster-wide received bytes per communication tag."""
        return self._total_by_tag("received_by_tag")

    def _total_by_tag(self, attribute: str) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for stats in self.comm_stats:
            for tag, nbytes in getattr(stats, attribute).items():
                totals[tag] = totals.get(tag, 0) + nbytes
        return totals

    def summary(self) -> Dict[str, float]:
        """Compact dictionary for logging / benchmark reports."""
        return {
            "world_size": self.world_size,
            "max_peak_memory_mb": self.max_peak_memory_mb,
            "max_compute_time_s": self.max_compute_time,
            "total_comm_mb": self.total_bytes_communicated / 2 ** 20,
        }


@dataclass
class _WorkerSlot:
    rank: int
    tracker: MemoryTracker
    timer: WorkerTimer = field(default_factory=WorkerTimer)
    result: Any = None
    exception: Optional[BaseException] = None
    traceback: str = ""


class SimulatedCluster:
    """Runs worker functions on ``world_size`` simulated machines."""

    def __init__(self, world_size: int, timeout_s: float = 120.0):
        self.world_size = check_positive_int(world_size, "world_size")
        self.timeout_s = float(timeout_s)

    def run(self, worker_fn: Callable[..., Any],
            worker_args: Optional[Sequence[Any]] = None,
            **common_kwargs: Any) -> ClusterRunResult:
        """Run ``worker_fn`` on every rank and gather the results.

        Parameters
        ----------
        worker_fn:
            Called as ``worker_fn(rank, comm, worker_args[rank], **common_kwargs)``
            (the positional shard argument is omitted when ``worker_args`` is
            ``None``).
        worker_args:
            Optional per-rank positional argument (typically the worker's
            graph shard).
        common_kwargs:
            Keyword arguments passed to every worker unchanged.
        """
        if worker_args is not None and len(worker_args) != self.world_size:
            raise ValueError(
                f"worker_args must have length {self.world_size}, got {len(worker_args)}"
            )
        comms, store = create_thread_communicators(self.world_size, timeout_s=self.timeout_s)
        slots = [
            _WorkerSlot(rank=r, tracker=MemoryTracker(label=f"worker-{r}"))
            for r in range(self.world_size)
        ]

        def _runner(rank: int) -> None:
            slot = slots[rank]
            try:
                with track_memory(slot.tracker):
                    slot.timer.start()
                    try:
                        if worker_args is None:
                            slot.result = worker_fn(rank, comms[rank], **common_kwargs)
                        else:
                            slot.result = worker_fn(
                                rank, comms[rank], worker_args[rank], **common_kwargs
                            )
                    finally:
                        slot.timer.stop()
            except ClusterAborted as exc:
                slot.exception = exc
                slot.traceback = traceback.format_exc()
            except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
                slot.exception = exc
                slot.traceback = traceback.format_exc()
                store.abort(f"worker {rank} failed: {exc!r}")

        threads = [
            threading.Thread(target=_runner, args=(rank,), name=f"repro-worker-{rank}")
            for rank in range(self.world_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        self._raise_worker_failure(slots)
        return ClusterRunResult(
            world_size=self.world_size,
            results=[slot.result for slot in slots],
            memory=[slot.tracker for slot in slots],
            comm_stats=[comm.stats for comm in comms],
            compute_times=[slot.timer.elapsed for slot in slots],
        )

    @staticmethod
    def _raise_worker_failure(slots: Sequence[_WorkerSlot]) -> None:
        primary = next(
            (s for s in slots if s.exception is not None and not isinstance(s.exception, ClusterAborted)),
            None,
        )
        if primary is None:
            primary = next((s for s in slots if s.exception is not None), None)
        if primary is None:
            return
        logger.error("Worker %d failed:\n%s", primary.rank, primary.traceback)
        raise RuntimeError(
            f"Worker {primary.rank} failed: {primary.exception!r}\n{primary.traceback}"
        ) from primary.exception


def run_distributed(worker_fn: Callable[..., Any], world_size: int,
                    worker_args: Optional[Sequence[Any]] = None,
                    timeout_s: float = 120.0, **common_kwargs: Any) -> ClusterRunResult:
    """One-shot helper: build a :class:`SimulatedCluster` and run ``worker_fn``."""
    cluster = SimulatedCluster(world_size, timeout_s=timeout_s)
    return cluster.run(worker_fn, worker_args=worker_args, **common_kwargs)
