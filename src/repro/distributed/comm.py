"""Communicator interface and communication-volume accounting.

The paper's system communicates through ``torch.distributed`` backed by
Intel's oneCCL over InfiniBand.  The algorithms only need a small set of
primitives, which this interface captures:

* ``publish`` / ``fetch`` — a worker makes one of its tensors remotely
  readable; peers fetch (a row subset of) it.  This models the halo exchange
  of both vanilla domain-parallel training and SAR (Algorithm 1 line
  "Fetch Z_{q→p}"), including SAR's *re*-fetch during the backward pass for
  case-2 aggregators.
* ``exchange`` — an all-to-all-v used in Algorithm 2 to send the error
  tensors ``E_{p→q}`` to their owners and collect the errors for the local
  partition.
* ``allreduce`` / ``allgather`` / ``barrier`` — parameter-gradient
  synchronization, distributed batch norm statistics, and global metrics.

Every byte moved is recorded in :class:`CommStats`; the epoch-time cost model
(:mod:`repro.distributed.cost_model`) converts volumes into modeled transfer
times.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: Key prefix of the keyed-stream publishes behind
#: :meth:`Communicator.allgather_keyed`.  Both backends exempt keys under it
#: from :meth:`Communicator.clear_published`, so an iteration boundary
#: (``DistributedGraph.begin_step``) can never delete a stream payload a
#: background sampler has published but a peer has not consumed yet.  Stream
#: keys are reclaimed explicitly via :meth:`Communicator.release_keyed`.
STREAM_KEY_PREFIX = "__stream/"

#: Byte-accounting tags of the distributed serving path
#: (:mod:`repro.serving.distributed`): activation rows fetched from a peer
#: because the local embedding cache missed them, the per-layer frontier
#: allgathers of the cooperative receptive-field walk, and the small control
#: collectives (cache-truncation votes, fast-path votes).
SERVE_HALO_TAG = "serve_halo"
SERVE_FRONTIER_TAG = "serve_frontier"
SERVE_CONTROL_TAG = "serve_ctl"


@dataclass
class CommStats:
    """Per-worker communication counters (bytes and message counts).

    Counters may be updated from another worker's thread (the fetching side
    records the owner's send), so updates are lock-protected.  Byte volumes
    are broken down per direction by a caller-supplied tag (e.g.
    "forward_halo", "backward_refetch", "backward_error", "grad_sync") in
    :attr:`sent_by_tag` / :attr:`received_by_tag`.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    #: bytes this worker sent, broken down by tag
    sent_by_tag: Dict[str, int] = field(default_factory=dict)
    #: bytes this worker received, broken down by tag
    received_by_tag: Dict[str, int] = field(default_factory=dict)
    #: feature-store hot-row cache: remote rows served locally / fetched
    cache_hit_rows: int = 0
    cache_miss_rows: int = 0
    #: bytes that never crossed the wire because the cache held the rows
    cache_hit_bytes: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_send(self, nbytes: int, tag: str = "other") -> None:
        with self._lock:
            self.bytes_sent += int(nbytes)
            self.messages_sent += 1
            self.sent_by_tag[tag] = self.sent_by_tag.get(tag, 0) + int(nbytes)

    def record_recv(self, nbytes: int, tag: str = "other") -> None:
        with self._lock:
            self.bytes_received += int(nbytes)
            self.messages_received += 1
            self.received_by_tag[tag] = self.received_by_tag.get(tag, 0) + int(nbytes)

    def record_cache(self, hit_rows: int, miss_rows: int, hit_bytes: int) -> None:
        """Account one feature-store cache probe (hot-row halo cache)."""
        with self._lock:
            self.cache_hit_rows += int(hit_rows)
            self.cache_miss_rows += int(miss_rows)
            self.cache_hit_bytes += int(hit_bytes)

    def reset(self) -> None:
        with self._lock:
            self.bytes_sent = 0
            self.bytes_received = 0
            self.messages_sent = 0
            self.messages_received = 0
            self.sent_by_tag = {}
            self.received_by_tag = {}
            self.cache_hit_rows = 0
            self.cache_miss_rows = 0
            self.cache_hit_bytes = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def bytes_for_tags(self, tags) -> tuple:
        """``(sent, received)`` byte totals summed over ``tags``."""
        with self._lock:
            sent = sum(self.sent_by_tag.get(tag, 0) for tag in tags)
            received = sum(self.received_by_tag.get(tag, 0) for tag in tags)
        return sent, received

    def snapshot(self) -> Dict[str, int]:
        # Counters are written from other workers' threads (and the prefetch
        # thread), so a consistent snapshot must hold the same lock as the
        # writers.
        with self._lock:
            out = {
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "messages_sent": self.messages_sent,
                "messages_received": self.messages_received,
            }
            if self.cache_hit_rows or self.cache_miss_rows:
                out["cache_hit_rows"] = self.cache_hit_rows
                out["cache_miss_rows"] = self.cache_miss_rows
                out["cache_hit_bytes"] = self.cache_hit_bytes
            out.update({f"sent:{k}": v for k, v in sorted(self.sent_by_tag.items())})
            out.update({f"recv:{k}": v for k, v in sorted(self.received_by_tag.items())})
        return out

    def serving_snapshot(self) -> Dict[str, int]:
        """Serving-path telemetry: halo/frontier bytes and cache rows.

        The fixed-key subset of :meth:`snapshot` the serving ``stats()``
        surface exposes per worker — halo-fetch volume (activation rows a
        peer served because the local embedding cache missed them), frontier
        allgather volume from the cooperative receptive-field walk, and the
        feature-store hot-row cache counters.  Keys are always present so
        the shape is stable for dashboards and tests.
        """
        with self._lock:
            return {
                "halo_bytes_sent": self.sent_by_tag.get(SERVE_HALO_TAG, 0),
                "halo_bytes_received": self.received_by_tag.get(SERVE_HALO_TAG, 0),
                "frontier_bytes_sent": self.sent_by_tag.get(SERVE_FRONTIER_TAG, 0),
                "frontier_bytes_received": self.received_by_tag.get(SERVE_FRONTIER_TAG, 0),
                "cache_hit_rows": self.cache_hit_rows,
                "cache_miss_rows": self.cache_miss_rows,
                "cache_hit_bytes": self.cache_hit_bytes,
            }


class Communicator(abc.ABC):
    """Abstract communication backend seen by SAR / domain-parallel code."""

    def __init__(self, rank: int, world_size: int):
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world_size {world_size}")
        self.rank = rank
        self.world_size = world_size
        self.stats = CommStats()

    # -- point-to-point ------------------------------------------------- #
    @abc.abstractmethod
    def publish(self, key: str, array: np.ndarray) -> None:
        """Make ``array`` readable by other workers under ``key``.

        Publishing is free (the data already lives on this worker); only
        fetches are accounted as communication.
        """

    @abc.abstractmethod
    def fetch(self, owner_rank: int, key: str, rows: Optional[np.ndarray] = None,
              tag: str = "halo") -> np.ndarray:
        """Blocking read of (a row subset of) a remote published array.

        Returns a fresh copy owned by the calling worker, so the fetched
        halo counts towards the caller's memory while it stays alive.
        """

    @abc.abstractmethod
    def unpublish(self, key: str) -> None:
        """Remove one of this worker's published arrays."""

    @abc.abstractmethod
    def clear_published(self) -> None:
        """Remove all of this worker's published arrays (end of iteration)."""

    # -- collectives ----------------------------------------------------- #
    @abc.abstractmethod
    def exchange(self, key: str, outgoing: Dict[int, np.ndarray],
                 tag: str = "exchange") -> Dict[int, np.ndarray]:
        """All-to-all-v: send ``outgoing[q]`` to rank ``q``; receive from every rank.

        Ranks absent from ``outgoing`` receive nothing from this worker; the
        result only contains ranks that actually sent something.
        """

    @abc.abstractmethod
    def allreduce(self, array: np.ndarray, op: str = "sum", tag: str = "allreduce") -> np.ndarray:
        """Elementwise reduction across all workers (op: "sum", "max", "min", "mean")."""

    @abc.abstractmethod
    def allgather(self, array: np.ndarray, tag: str = "allgather") -> List[np.ndarray]:
        """Gather one array from every worker (indexed by rank)."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Wait until every worker reaches this point."""

    # -- keyed (barrier-free) collectives --------------------------------- #
    def allgather_keyed(self, key: str, array: np.ndarray,
                        tag: str = "allgather") -> List[np.ndarray]:
        """Allgather under an explicit caller-chosen key, without a barrier.

        The plain :meth:`allgather` orders concurrent calls with a private
        per-worker counter and a shared barrier, so it is only safe from the
        one thread that runs every collective in lockstep.  This variant
        instead *names* the collective: every rank publishes its payload
        under ``key`` (prefixed by :data:`STREAM_KEY_PREFIX`) and blockingly
        fetches every peer's payload under the same key.  As long as all
        ranks derive identical key sequences — the samplers namespace theirs
        by ``(epoch, batch, layer)``, the same discipline ``begin_step``
        uses for step keys — calls need no global ordering and may run from
        a background thread concurrently with the main thread's barrier
        collectives.

        The payload stays published (exempt from :meth:`clear_published`)
        until :meth:`release_keyed`; see
        :class:`repro.sample.distributed.DistributedNeighborSampler` for the
        release discipline that makes reclamation safe without acknowledgement
        messages.
        """
        array = np.asarray(array)
        name = STREAM_KEY_PREFIX + key
        self.publish(name, array)
        return [
            array if rank == self.rank else self.fetch(rank, name, tag=tag)
            for rank in range(self.world_size)
        ]

    def release_keyed(self, key: str) -> None:
        """Reclaim this worker's payload of a completed keyed allgather."""
        self.unpublish(STREAM_KEY_PREFIX + key)

    # -- helpers ---------------------------------------------------------- #
    def allreduce_scalar(self, value: float, op: str = "sum") -> float:
        """Convenience wrapper reducing a single Python float."""
        out = self.allreduce(np.asarray([value], dtype=np.float64), op=op)
        return float(out[0])


def reduce_arrays(arrays: List[np.ndarray], op: str) -> np.ndarray:
    """Reference reduction used by the backends."""
    stacked = np.stack(arrays, axis=0)
    if op == "sum":
        return stacked.sum(axis=0)
    if op == "mean":
        return stacked.mean(axis=0)
    if op == "max":
        return stacked.max(axis=0)
    if op == "min":
        return stacked.min(axis=0)
    raise ValueError(f"Unknown reduction op {op!r}")
