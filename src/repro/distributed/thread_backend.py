"""In-process cluster backend: one thread per worker, a shared key/value store.

This backend gives every worker blocking point-to-point and collective
primitives with the same synchronization structure as a real
``torch.distributed`` deployment, while keeping everything inside one Python
process so the benchmarks can run on a laptop.  NumPy releases the GIL for
the heavy kernels, so workers do overlap; per-worker *compute* time is
measured with thread CPU clocks (see :mod:`repro.utils.timing`) to stay
independent of host core counts.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.comm import STREAM_KEY_PREFIX, Communicator, CommStats, reduce_arrays

_DEFAULT_TIMEOUT_S = 120.0


class ClusterAborted(RuntimeError):
    """Raised on all workers when any worker fails, to avoid deadlocks."""


class SharedStore:
    """Shared key/value store of published arrays, with blocking reads."""

    def __init__(self, world_size: int, timeout_s: float = _DEFAULT_TIMEOUT_S):
        self.world_size = world_size
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._data: Dict[Tuple[int, str], np.ndarray] = {}
        self._events: Dict[Tuple[int, str], threading.Event] = {}
        self._barrier: Optional[threading.Barrier] = None
        self.failure = threading.Event()
        self.failure_message: Optional[str] = None

    def attach_barrier(self, barrier: threading.Barrier) -> None:
        """Register the cluster barrier so :meth:`abort` can break it."""
        self._barrier = barrier

    # -- failure handling ------------------------------------------------ #
    def abort(self, message: str) -> None:
        with self._lock:
            if self.failure_message is None:
                self.failure_message = message
        self.failure.set()
        if self._barrier is not None:
            self._barrier.abort()
        # Wake up any blocked readers.
        with self._lock:
            for event in self._events.values():
                event.set()

    def _check_failure(self) -> None:
        if self.failure.is_set():
            raise ClusterAborted(self.failure_message or "another worker failed")

    # -- data access ------------------------------------------------------ #
    def _event_for(self, owner: int, key: str) -> threading.Event:
        with self._lock:
            event = self._events.get((owner, key))
            if event is None:
                event = threading.Event()
                self._events[(owner, key)] = event
            return event

    def put(self, owner: int, key: str, array: np.ndarray) -> None:
        event = self._event_for(owner, key)
        with self._lock:
            self._data[(owner, key)] = array
        event.set()

    def wait_get(self, owner: int, key: str) -> np.ndarray:
        """Block until ``(owner, key)`` is published; return the stored array.

        The wait parks on the publish event (``abort`` sets every registered
        event, so failures wake blocked readers) instead of spinning on a
        2 ms poll.  Waits are sliced so the event reference is re-acquired a
        few times per second: ``remove()`` discards the event object, and a
        reader parked on a discarded event would otherwise miss both a
        re-publish (which installs a fresh event) and ``abort`` (which only
        sets events still registered).
        """
        deadline = time.monotonic() + self.timeout_s
        while True:
            self._check_failure()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"Timed out waiting for rank {owner} to publish {key!r} "
                    f"after {self.timeout_s:.0f}s"
                )
            event = self._event_for(owner, key)
            if not event.wait(min(remaining, 0.1)):
                continue
            self._check_failure()
            with self._lock:
                if (owner, key) in self._data:
                    return self._data[(owner, key)]
            # Event set without data: abort() (raises below) or a transient
            # publish/remove race — back off briefly instead of spinning.
            self._check_failure()
            time.sleep(0.002)

    def try_get(self, owner: int, key: str) -> Optional[np.ndarray]:
        with self._lock:
            return self._data.get((owner, key))

    def remove(self, owner: int, key: str) -> None:
        with self._lock:
            self._data.pop((owner, key), None)
            event = self._events.pop((owner, key), None)
        if event is not None:
            event.clear()

    def clear_owner(self, owner: int, keep_prefix: Optional[str] = None) -> None:
        """Drop all of ``owner``'s entries, except keys under ``keep_prefix``."""
        with self._lock:
            keys = [
                k for k in self._data
                if k[0] == owner and not (keep_prefix and k[1].startswith(keep_prefix))
            ]
            for k in keys:
                self._data.pop(k, None)
                self._events.pop(k, None)

    def keys_of(self, owner: int) -> List[str]:
        with self._lock:
            return [key for (o, key) in self._data if o == owner]


class ThreadCommunicator(Communicator):
    """Communicator backed by a :class:`SharedStore` and a shared barrier."""

    def __init__(self, rank: int, world_size: int, store: SharedStore,
                 barrier: threading.Barrier, peer_stats: List[CommStats]):
        super().__init__(rank, world_size)
        self._store = store
        self._barrier = barrier
        self._peer_stats = peer_stats
        self.stats = peer_stats[rank]
        self._collective_counter = 0

    # -- point-to-point ------------------------------------------------- #
    def publish(self, key: str, array: np.ndarray) -> None:
        self._store.put(self.rank, key, np.asarray(array))

    def fetch(self, owner_rank: int, key: str, rows: Optional[np.ndarray] = None,
              tag: str = "halo") -> np.ndarray:
        if owner_rank == self.rank:
            array = self._store.wait_get(owner_rank, key)
            # A row fetch already copies (fancy indexing); the whole-array
            # case must copy too — returning the published array itself would
            # let caller mutation silently corrupt what peers fetch.
            return array[rows] if rows is not None else array.copy()
        array = self._store.wait_get(owner_rank, key)
        out = array[np.asarray(rows)].copy() if rows is not None else array.copy()
        nbytes = out.nbytes
        self.stats.record_recv(nbytes, tag=tag)
        self._peer_stats[owner_rank].record_send(nbytes, tag=tag)
        return out

    def unpublish(self, key: str) -> None:
        self._store.remove(self.rank, key)

    def clear_published(self) -> None:
        # Keyed-stream payloads (background sampling frontiers) survive the
        # iteration-boundary sweep; they are reclaimed via release_keyed.
        self._store.clear_owner(self.rank, keep_prefix=STREAM_KEY_PREFIX)

    # -- collectives ------------------------------------------------------ #
    def barrier(self) -> None:
        if self._store.failure.is_set():
            raise ClusterAborted(self._store.failure_message or "another worker failed")
        try:
            self._barrier.wait(timeout=self._store.timeout_s)
        except threading.BrokenBarrierError as exc:
            raise ClusterAborted(
                self._store.failure_message or "barrier broken (a worker died)"
            ) from exc

    def _next_collective_key(self, name: str) -> str:
        self._collective_counter += 1
        return f"__coll/{name}/{self._collective_counter}"

    def exchange(self, key: str, outgoing: Dict[int, np.ndarray],
                 tag: str = "exchange") -> Dict[int, np.ndarray]:
        prefix = f"__xchg/{key}"
        for dest, array in outgoing.items():
            if not 0 <= dest < self.world_size:
                raise ValueError(f"exchange destination {dest} out of range")
            array = np.asarray(array)
            self._store.put(self.rank, f"{prefix}/to{dest}", array)
            if dest != self.rank:
                self.stats.record_send(array.nbytes, tag=tag)
        self.barrier()
        received: Dict[int, np.ndarray] = {}
        for sender in range(self.world_size):
            array = self._store.try_get(sender, f"{prefix}/to{self.rank}")
            if array is None:
                continue
            if sender == self.rank:
                received[sender] = array
            else:
                received[sender] = array.copy()
                self.stats.record_recv(array.nbytes, tag=tag)
        self.barrier()
        for dest in outgoing:
            self._store.remove(self.rank, f"{prefix}/to{dest}")
        return received

    def allreduce(self, array: np.ndarray, op: str = "sum", tag: str = "allreduce") -> np.ndarray:
        array = np.asarray(array)
        key = self._next_collective_key("allreduce")
        self._store.put(self.rank, key, array)
        contributions = [self._store.wait_get(r, key) for r in range(self.world_size)]
        result = reduce_arrays(contributions, op).astype(array.dtype, copy=False)
        # Ring-allreduce volume: each worker sends/receives ~2·(N-1)/N of the payload.
        ring_bytes = int(2 * array.nbytes * (self.world_size - 1) / max(self.world_size, 1))
        self.stats.record_send(ring_bytes, tag=tag)
        self.stats.record_recv(ring_bytes, tag=tag)
        self.barrier()
        self._store.remove(self.rank, key)
        return result

    def allgather(self, array: np.ndarray, tag: str = "allgather") -> List[np.ndarray]:
        array = np.asarray(array)
        key = self._next_collective_key("allgather")
        self._store.put(self.rank, key, array)
        gathered = []
        for r in range(self.world_size):
            remote = self._store.wait_get(r, key)
            if r != self.rank:
                remote = remote.copy()
                self.stats.record_recv(remote.nbytes, tag=tag)
                self.stats.record_send(array.nbytes, tag=tag)
            gathered.append(remote)
        self.barrier()
        self._store.remove(self.rank, key)
        return gathered


def create_thread_communicators(world_size: int,
                                timeout_s: float = _DEFAULT_TIMEOUT_S
                                ) -> Tuple[List[ThreadCommunicator], SharedStore]:
    """Create one communicator per worker sharing a store and a barrier."""
    store = SharedStore(world_size, timeout_s=timeout_s)
    barrier = threading.Barrier(world_size)
    store.attach_barrier(barrier)
    peer_stats = [CommStats() for _ in range(world_size)]
    comms = [
        ThreadCommunicator(rank, world_size, store, barrier, peer_stats)
        for rank in range(world_size)
    ]
    return comms, store
