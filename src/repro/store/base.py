"""The :class:`FeatureStore` protocol: one interface between compute and bytes.

Every feature consumer in the stack — the mini-batch loader's fetch stage,
layer-wise inference, the serving server, the trainers, and the distributed
halo path — historically reached into a materialized dense ``(N, F)`` matrix
with its own ad-hoc indexing.  :class:`FeatureStore` replaces those five
private access patterns with one contract:

* :meth:`gather` — rows by global node id (the only read primitive),
* :attr:`num_rows` / :attr:`dim` / :attr:`dtype` — the logical matrix shape,
* :attr:`version` — a monotonically increasing stamp advanced by *any*
  mutation of the stored values, so downstream caches (the serving
  :class:`~repro.serving.cache.EmbeddingCache`, the KV store's hot-row
  cache) can compose their own invalidation with the store's,
* :meth:`gather_tensor` — the autograd entry point; trainable backends
  (:class:`~repro.store.sparse.SparseEmbeddingStore`) override it so the
  backward pass produces *per-row sparse* updates instead of dense
  gradients,
* :meth:`scatter_grad` — accumulate per-row gradients (trainable backends
  only; read-only backends raise).

Backends are interchangeable by construction: the bit-parity matrix in
``tests/test_feature_store.py`` asserts that sampled training, layer-wise
inference, and serving produce identical logits whichever backend feeds
them.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.tensor.tensor import Tensor


class FeatureStore(abc.ABC):
    """Abstract row store addressed by global node id."""

    #: whether :meth:`scatter_grad` accepts gradients (learnable backend)
    trainable: bool = False

    # -- logical shape --------------------------------------------------- #
    @property
    @abc.abstractmethod
    def num_rows(self) -> int:
        """Number of rows (nodes) the store covers."""

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Feature width of every row."""

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Element dtype of the stored rows."""

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """Monotonic stamp advanced by every mutation of the stored values.

        Consumers that cache derived state (serving activation caches,
        hot-row caches) key or invalidate by this stamp; reading rows never
        changes it.
        """

    # -- reads ----------------------------------------------------------- #
    @abc.abstractmethod
    def gather(self, node_ids: Optional[np.ndarray]) -> np.ndarray:
        """Rows for ``node_ids`` in request order; ``None`` = all rows.

        The returned array is safe for the caller to *read* for the current
        version; whether it aliases internal storage is backend-defined
        (:class:`~repro.store.dense.DenseStore` returns views for the
        zero-copy fast path), so callers must not write into it.
        """

    def gather_tensor(self, node_ids: Optional[np.ndarray]) -> Tensor:
        """Rows wrapped for autograd.

        Read-only backends return a plain leaf tensor; trainable backends
        override this so the backward pass accumulates per-row sparse
        gradients into the store (see
        :class:`~repro.store.sparse.SparseEmbeddingStore`).
        """
        return Tensor(self.gather(node_ids))

    # -- writes (trainable backends only) --------------------------------- #
    def scatter_grad(self, node_ids: np.ndarray, grads: np.ndarray) -> None:
        """Accumulate per-row gradients for a later sparse optimizer step."""
        raise NotImplementedError(
            f"{type(self).__name__} is a read-only feature store; only "
            "trainable backends (SparseEmbeddingStore) accept gradients"
        )

    # -- lifecycle --------------------------------------------------------- #
    def release(self) -> None:
        """Release externally held resources (published rows, caches).

        A no-op for resident backends; :class:`~repro.store.
        PartitionedKVStore` unpublishes its rows.  Long-lived owners (the
        distributed serving backend) call this on shutdown so stores can be
        torn down uniformly without backend checks.
        """

    # -- telemetry -------------------------------------------------------- #
    def stats(self) -> Dict[str, int]:
        """Backend telemetry (cache hits, bytes moved, ...); may be empty."""
        return {}

    # -- shared validation ------------------------------------------------ #
    def _check_ids(self, node_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(node_ids)
        if ids.ndim != 1:
            raise ValueError(f"node_ids must be 1-D, got shape {ids.shape}")
        if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self.num_rows):
            raise IndexError(
                f"node_ids must lie in [0, {self.num_rows}), got range "
                f"[{int(ids.min())}, {int(ids.max())}]"
            )
        return ids.astype(np.int64, copy=False)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_rows={self.num_rows}, dim={self.dim}, "
            f"dtype={np.dtype(self.dtype).name}, version={self.version})"
        )


def as_feature_store(features) -> FeatureStore:
    """Coerce ``features`` to a :class:`FeatureStore`.

    A store passes through unchanged; a 2-D array is wrapped in a zero-copy
    :class:`~repro.store.dense.DenseStore`.  This is the adapter every
    consumer applies at its boundary, so call sites accept either
    representation.
    """
    if isinstance(features, FeatureStore):
        return features
    arr = np.asarray(features)
    if arr.ndim != 2:
        raise ValueError(
            f"features must be a FeatureStore or a 2-D array, got shape {arr.shape}"
        )
    from repro.store.dense import DenseStore

    return DenseStore(arr)
