"""Pluggable feature storage: one gather interface, three backends.

* :class:`~repro.store.base.FeatureStore` — the protocol every feature
  consumer (loader fetch stage, layer-wise inference, serving, trainers,
  distributed halo path) reads through,
* :class:`~repro.store.dense.DenseStore` — zero-copy wrapper of the resident
  dense matrix (the identity backend; today's behavior),
* :class:`~repro.store.kv.PartitionedKVStore` — rows partitioned across
  workers, pulled by global id with request coalescing and a byte-bounded
  hot-row LRU cache,
* :class:`~repro.store.sparse.SparseEmbeddingStore` — learnable node
  embeddings whose backward yields per-row sparse gradients for the sparse
  optimizers in :mod:`repro.tensor.optim`.

See ``docs/feature_store.md`` for the backend matrix and consistency rules.
"""

from repro.store.base import FeatureStore, as_feature_store
from repro.store.dense import DenseStore
from repro.store.kv import FEATURE_FETCH_TAG, PartitionedKVStore
from repro.store.sparse import SparseEmbeddingStore

__all__ = [
    "FeatureStore",
    "as_feature_store",
    "DenseStore",
    "PartitionedKVStore",
    "SparseEmbeddingStore",
    "FEATURE_FETCH_TAG",
]
