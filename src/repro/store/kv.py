"""Partitioned KV feature backend: pull-by-global-id with a hot-row cache.

Each worker owns its partition's feature rows and makes them remotely
readable through the existing :class:`~repro.distributed.comm.Communicator`
publish/fetch machinery (under a :data:`~repro.distributed.comm.
STREAM_KEY_PREFIX` key, so the per-iteration ``clear_published`` sweep never
reclaims them).  :meth:`PartitionedKVStore.gather` then serves *any* global
node id from *any* worker:

* ids are split by owner (the :class:`~repro.partition.book.PartitionBook`),
* the caller's own rows are sliced directly from the resident matrix,
* remote ids are **deduplicated and coalesced** into at most one fetch per
  owner per call,
* and before anything touches the wire, each remote row is probed in a
  **byte-bounded LRU cache** (:class:`~repro.utils.lru.LRUDict`) of hot
  remote rows — on skewed access patterns (Zipf request mixes, repeated halo
  sources across mini-batches) most remote rows are served locally and the
  fetch shrinks to the cold tail.

Cache hits, misses, and the bytes they kept off the wire are recorded both in
the store's own counters (:meth:`stats`) and in the communicator's
:class:`~repro.distributed.comm.CommStats` (``cache_hit_rows`` /
``cache_miss_rows`` / ``cache_hit_bytes``), so the epoch cost model and the
benchmarks see them next to the fetch volumes they reduce.

The distributed halo path plugs in through :meth:`covers` +
:meth:`fetch_rows`: when a SAR aggregation's published payload *is* the
static feature matrix (layer 0 of every epoch), the
:class:`~repro.core.seq_agg.SequentialAggregationEngine` routes the block's
``required_src_local`` rows through :meth:`fetch_rows` instead of a raw
``comm.fetch`` — so repeated frontier sources across batches hit the cache
and halo traffic stops being proportional to frontier size.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from repro.distributed.comm import Communicator, STREAM_KEY_PREFIX
from repro.partition.book import PartitionBook
from repro.store.base import FeatureStore
from repro.utils.lru import LRUDict

#: tag under which coalesced remote feature rows travel (CommStats breakdown)
FEATURE_FETCH_TAG = "feature_fetch"


class PartitionedKVStore(FeatureStore):
    """Feature rows partitioned across workers, pulled by global node id.

    Parameters
    ----------
    comm:
        This worker's communicator.  Construction publishes the local rows;
        every worker of the world must construct its store with the same
        ``name`` before any worker gathers remote rows (the usual collective
        setup discipline — the trainers do it right after sharding).
    book:
        The partition book mapping global ids to ``(owner, local row)``.
    local_rows:
        ``(num_local_nodes, dim)`` — the rows this worker owns, in local-id
        order (``book.nodes_of(comm.rank)`` order).  Held by reference.
    name:
        Namespace for the published key; two stores on the same communicator
        need distinct names.
    cache_bytes:
        Byte budget of the hot remote-row cache.  ``None`` disables caching
        (every gather fetches its remote rows); ``0`` keeps the cache code
        path but retains nothing — the "cache off" baseline benchmarks use.
    """

    def __init__(self, comm: Communicator, book: PartitionBook,
                 local_rows: np.ndarray, name: str = "feat",
                 cache_bytes: Optional[int] = 1 << 22):
        local_rows = np.asarray(local_rows)
        if local_rows.ndim != 2:
            raise ValueError(
                f"local_rows must be 2-D, got shape {local_rows.shape}"
            )
        expected = len(book.nodes_of(comm.rank))
        if local_rows.shape[0] != expected:
            raise ValueError(
                f"rank {comm.rank} owns {expected} nodes but local_rows has "
                f"{local_rows.shape[0]} rows"
            )
        self.comm = comm
        self.book = book
        self.name = name
        self._local = local_rows
        self._version = 1
        self._cache: Optional[LRUDict] = (
            None if cache_bytes is None
            else LRUDict(capacity=None, byte_budget=int(cache_bytes))
        )
        # Guards cache probes/inserts: the engine's prefetch thread and the
        # consuming thread (loader fetch stage, trainer) may fetch
        # concurrently.  comm.fetch runs outside the lock; a concurrent
        # double-fetch of the same row is benign (idempotent insert).
        self._cache_lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.bytes_fetched = 0
        self.bytes_saved = 0
        self.fetch_calls = 0
        self.gather_calls = 0
        comm.publish(self._key(), local_rows)

    def _key(self) -> str:
        # Versioned stream key: survives clear_published, and a replace()
        # can never serve stale rows to a peer still holding the old stamp.
        return f"{STREAM_KEY_PREFIX}featstore/{self.name}/v{self._version}"

    # -- FeatureStore interface ------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(self.book.num_nodes)

    @property
    def dim(self) -> int:
        return int(self._local.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._local.dtype

    @property
    def version(self) -> int:
        return self._version

    @property
    def local_matrix(self) -> np.ndarray:
        """This worker's resident rows (local-id order)."""
        return self._local

    def covers(self, payload: np.ndarray) -> bool:
        """Whether ``payload`` *is* this worker's resident feature matrix.

        The halo-routing hook: the engine only substitutes the store for the
        raw fetch when the aggregation's published payload is identical (by
        object) to the store's matrix — by replicated control flow every
        worker then publishes its own store rows, so peer fetches through
        :meth:`fetch_rows` read exactly what a raw fetch would have.
        """
        return payload is self._local

    def gather(self, node_ids: Optional[np.ndarray]) -> np.ndarray:
        """Rows for global ``node_ids`` (``None`` = all rows, ascending id)."""
        if node_ids is None:
            node_ids = np.arange(self.num_rows, dtype=np.int64)
        ids = self._check_ids(node_ids)
        self.gather_calls += 1
        out = np.empty((len(ids), self.dim), dtype=self.dtype)
        if not len(ids):
            return out
        owner, local = self.book.to_local(ids)
        mine = owner == self.comm.rank
        if mine.any():
            out[mine] = self._local[local[mine]]
        for q in np.unique(owner[~mine]):
            sel = owner == q
            out[sel] = self.fetch_rows(int(q), local[sel])
        return out

    # -- remote row access (also the halo-path entry point) --------------- #
    def fetch_rows(self, owner_rank: int, local_rows: np.ndarray) -> np.ndarray:
        """Rows of ``owner_rank``'s partition addressed by *local* row ids.

        Deduplicates the request, serves hot rows from the cache, coalesces
        the misses into one fetch, and returns the rows in request order.
        """
        local_rows = np.asarray(local_rows, dtype=np.int64)
        if owner_rank == self.comm.rank:
            return self._local[local_rows]
        unique, inverse = np.unique(local_rows, return_inverse=True)
        rows = np.empty((len(unique), self.dim), dtype=self.dtype)
        cache = self._cache
        row_bytes = self.dim * self.dtype.itemsize
        if cache is None:
            missing = np.arange(len(unique))
        else:
            missing_list = []
            with self._cache_lock:
                for i, row in enumerate(unique):
                    hit = cache.get((owner_rank, int(row)))
                    if hit is None:
                        missing_list.append(i)
                    else:
                        rows[i] = hit
            missing = np.asarray(missing_list, dtype=np.int64)
            hits = len(unique) - len(missing)
            self.cache_hits += hits
            self.cache_misses += len(missing)
            self.bytes_saved += hits * row_bytes
            self.comm.stats.record_cache(hits, len(missing), hits * row_bytes)
        if len(missing):
            fetched = self.comm.fetch(owner_rank, self._key(),
                                      rows=unique[missing], tag=FEATURE_FETCH_TAG)
            rows[missing] = fetched
            self.fetch_calls += 1
            self.bytes_fetched += int(fetched.nbytes)
            if cache is not None:
                with self._cache_lock:
                    for i, row in zip(missing, unique[missing]):
                        # Per-row copies: eviction frees each row
                        # independently instead of pinning the fetched block.
                        cache[(owner_rank, int(row))] = rows[i].copy()
        return rows[inverse]

    # -- mutation --------------------------------------------------------- #
    def replace(self, local_rows: np.ndarray) -> int:
        """Swap this worker's rows and invalidate every cache (collective).

        All workers must replace at the same point (the versioned key means a
        peer fetching under the old stamp would block forever rather than
        read torn data).  Returns the new version.
        """
        local_rows = np.asarray(local_rows)
        if local_rows.shape != self._local.shape:
            raise ValueError(
                f"replacement must have shape {self._local.shape}, got "
                f"{local_rows.shape}"
            )
        self.comm.unpublish(self._key())
        self._version += 1
        self._local = local_rows
        if self._cache is not None:
            with self._cache_lock:
                self._cache.clear()
        self.comm.publish(self._key(), local_rows)
        return self._version

    def release(self) -> None:
        """Unpublish the local rows (end of the store's life)."""
        self.comm.unpublish(self._key())

    # -- telemetry -------------------------------------------------------- #
    def stats(self) -> Dict[str, int]:
        out = {
            "version": self._version,
            "gather_calls": self.gather_calls,
            "fetch_calls": self.fetch_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bytes_fetched": self.bytes_fetched,
            "bytes_saved": self.bytes_saved,
        }
        if self._cache is not None:
            out["cache_rows"] = len(self._cache)
            out["cache_bytes"] = self._cache.current_bytes
            out["cache_budget_bytes"] = self._cache.byte_budget
            out["cache_evictions"] = self._cache.evictions
        return out
