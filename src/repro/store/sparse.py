"""Learnable node embeddings with per-row sparse gradients.

Graphs whose nodes carry no input features (or deliberately discarded ones)
are trained with a **learnable embedding table**: one trainable row per node,
fed to the model exactly where the static feature matrix used to go.  The
naive way to make the table trainable — a single ``(N, F)`` parameter
``Tensor`` indexed per batch — produces a *dense* ``(N, F)`` gradient every
step even though a mini-batch touches a few hundred rows, and a dense
optimizer then walks all ``N`` rows of moment state.  For graph-scale ``N``
that dominates the step.

:class:`SparseEmbeddingStore` avoids the dense path entirely:

* :meth:`gather_tensor` records a :class:`_SparseGather` autograd node whose
  *parent* is a one-element anchor tensor — the table itself never enters
  the graph, so no ``(N, F)`` gradient buffer can exist;
* the node's backward **scatters** the incoming ``(batch, F)`` gradient into
  the store's pending list (:meth:`scatter_grad`) and contributes nothing
  dense;
* :meth:`pending_gradients` coalesces the pending scatters (duplicate rows
  summed, ids deduplicated) for the sparse optimizers in
  :mod:`repro.tensor.optim`, which update **only the touched rows** and
  their per-row moment state;
* every applied update bumps :attr:`version`, so downstream caches keyed on
  the store stamp (serving activation cache, hot-row caches) invalidate.

The store is also a perfectly ordinary read-only :class:`~repro.store.base.
FeatureStore` under ``no_grad`` — inference and serving gather from it like
any other backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.store.base import FeatureStore
from repro.tensor.tensor import DEFAULT_DTYPE, Function, Tensor
from repro.utils.seed import derive_rng


class _SparseGather(Function):
    """Row gather whose backward scatters into the store instead of densifying.

    The only parent is the store's one-element *anchor* tensor (always
    ``requires_grad``), which exists purely so autograd records this node and
    calls :meth:`backward`; the returned gradient for it is ``None``, so the
    whole contribution of the embedding table to the graph is the side-effect
    scatter into ``store._pending``.
    """

    def forward(self, anchor: Tensor, store: "SparseEmbeddingStore" = None,
                node_ids: np.ndarray = None) -> np.ndarray:
        self.save_for_backward(store, node_ids)
        return store.weight[node_ids]

    def backward(self, grad_out: np.ndarray):
        store, node_ids = self.saved
        store.scatter_grad(node_ids, grad_out)
        return (None,)


class SparseEmbeddingStore(FeatureStore):
    """Trainable per-node embedding table with sparse backward.

    Parameters
    ----------
    num_rows, dim:
        Table shape — one ``dim``-wide row per node.
    scale:
        Standard deviation of the normal init (default ``1/sqrt(dim)``, the
        usual embedding scaling).
    seed:
        Init seed, threaded through :func:`repro.utils.seed.derive_rng` so
        runs are reproducible.
    weight:
        Alternatively, an explicit ``(num_rows, dim)`` initial table (copied;
        overrides ``scale``/``seed``).
    """

    trainable = True

    def __init__(self, num_rows: int, dim: int, scale: Optional[float] = None,
                 seed: int = 0, weight: Optional[np.ndarray] = None,
                 dtype=DEFAULT_DTYPE):
        if num_rows <= 0 or dim <= 0:
            raise ValueError(
                f"embedding table needs positive shape, got ({num_rows}, {dim})"
            )
        if weight is not None:
            weight = np.asarray(weight, dtype=dtype)
            if weight.shape != (num_rows, dim):
                raise ValueError(
                    f"explicit weight must have shape ({num_rows}, {dim}), "
                    f"got {weight.shape}"
                )
            self.weight = weight.copy()
        else:
            if scale is None:
                scale = 1.0 / float(np.sqrt(dim))
            # 0x5EED1 tags the embedding-init stream within the seed space.
            rng = derive_rng(seed, 0x5EED1)
            self.weight = rng.normal(0.0, scale, size=(num_rows, dim)).astype(dtype)
        self._version = 1
        # The anchor's only job is to be a requires_grad parent for
        # _SparseGather so backward runs; it never receives a gradient.
        self._anchor = Tensor(np.zeros(1, dtype=dtype), requires_grad=True,
                              name="sparse_embedding_anchor")
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self.scatter_calls = 0

    # -- FeatureStore interface ------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(self.weight.shape[0])

    @property
    def dim(self) -> int:
        return int(self.weight.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self.weight.dtype

    @property
    def version(self) -> int:
        return self._version

    def gather(self, node_ids: Optional[np.ndarray]) -> np.ndarray:
        if node_ids is None:
            return self.weight
        return self.weight[self._check_ids(node_ids)]

    def gather_tensor(self, node_ids: Optional[np.ndarray]) -> Tensor:
        if node_ids is None:
            node_ids = np.arange(self.num_rows, dtype=np.int64)
        ids = self._check_ids(node_ids)
        return _SparseGather.apply(self._anchor, store=self, node_ids=ids)

    def scatter_grad(self, node_ids: np.ndarray, grads: np.ndarray) -> None:
        ids = self._check_ids(node_ids)
        grads = np.asarray(grads, dtype=self.dtype)
        if grads.shape != (len(ids), self.dim):
            raise ValueError(
                f"grads must have shape ({len(ids)}, {self.dim}), got {grads.shape}"
            )
        self._pending.append((ids, grads.copy()))
        self.scatter_calls += 1

    # -- sparse-optimizer interface --------------------------------------- #
    def pending_gradients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Coalesced pending scatters: ``(unique_ids, summed_grads)``.

        Duplicate rows across (and within) scatters are summed, matching the
        accumulate semantics a dense parameter's ``.grad`` would have had.
        Returns empty arrays when nothing is pending.
        """
        if not self._pending:
            return (np.empty(0, dtype=np.int64),
                    np.empty((0, self.dim), dtype=self.dtype))
        all_ids = np.concatenate([ids for ids, _ in self._pending])
        all_grads = np.concatenate([g for _, g in self._pending], axis=0)
        unique, inverse = np.unique(all_ids, return_inverse=True)
        summed = np.zeros((len(unique), self.dim), dtype=self.dtype)
        np.add.at(summed, inverse, all_grads)
        return unique, summed

    def clear_pending(self) -> None:
        """Drop pending gradients (the sparse optimizers' ``zero_grad``)."""
        self._pending.clear()

    def apply_row_update(self, node_ids: np.ndarray, delta: np.ndarray) -> int:
        """Add ``delta`` to the addressed rows and advance :attr:`version`."""
        ids = self._check_ids(node_ids)
        self.weight[ids] += np.asarray(delta, dtype=self.dtype)
        self._version += 1
        return self._version

    # -- persistence ------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight.copy()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        weight = np.asarray(state["weight"], dtype=self.dtype)
        if weight.shape != self.weight.shape:
            raise ValueError(
                f"state weight shape {weight.shape} does not match table "
                f"shape {self.weight.shape}"
            )
        self.weight[...] = weight
        self._version += 1

    def stats(self) -> Dict[str, int]:
        return {
            "version": self._version,
            "scatter_calls": self.scatter_calls,
            "pending_scatters": len(self._pending),
        }
