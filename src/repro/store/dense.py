"""Dense in-memory backend: the zero-copy wrapper over today's feature matrix.

:class:`DenseStore` is the identity backend — it holds the ``(N, F)`` matrix
the stack always had and serves :meth:`gather` by NumPy indexing.  Its value
is the *interface*: consumers written against :class:`~repro.store.base.
FeatureStore` run unchanged over the partitioned KV store or learnable sparse
embeddings, and the dense backend keeps the fast path exactly as fast as
direct indexing was (``gather(None)`` returns the matrix itself, no copy).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.store.base import FeatureStore


class DenseStore(FeatureStore):
    """Feature rows backed by one resident ``(num_rows, dim)`` matrix.

    Parameters
    ----------
    matrix:
        The 2-D feature matrix.  Held by reference (zero-copy): the caller
        may swap in new contents via :meth:`replace` (which bumps
        :attr:`version`) but must not mutate the array in place without a
        :meth:`bump_version` — downstream caches key on the stamp.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"DenseStore needs a 2-D matrix, got shape {matrix.shape}")
        self._matrix = matrix
        self._version = 1

    # -- FeatureStore interface ------------------------------------------ #
    @property
    def num_rows(self) -> int:
        return int(self._matrix.shape[0])

    @property
    def dim(self) -> int:
        return int(self._matrix.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._matrix.dtype

    @property
    def version(self) -> int:
        return self._version

    @property
    def matrix(self) -> np.ndarray:
        """The backing matrix itself (the zero-copy fast path)."""
        return self._matrix

    def gather(self, node_ids: Optional[np.ndarray]) -> np.ndarray:
        if node_ids is None:
            return self._matrix
        return self._matrix[self._check_ids(node_ids)]

    # -- mutation --------------------------------------------------------- #
    def replace(self, matrix: np.ndarray) -> int:
        """Swap the backing matrix (same shape class) and bump the version."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.dim:
            raise ValueError(
                f"replacement must be 2-D with {self.dim} columns, got {matrix.shape}"
            )
        self._matrix = matrix
        return self.bump_version()

    def bump_version(self) -> int:
        """Advance the version stamp after an in-place mutation."""
        self._version += 1
        return self._version
