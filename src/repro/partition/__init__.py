"""Graph partitioning (METIS substitute), partition book, and per-worker shards."""

from repro.partition.partitioner import (
    partition_graph,
    edge_cut,
    partition_sizes,
    balance_ratio,
)
from repro.partition.book import PartitionBook
from repro.partition.shard import (
    EdgeBlock,
    ShardedGraph,
    ShardedHeteroGraph,
    create_shards,
    create_hetero_shards,
)

__all__ = [
    "partition_graph",
    "edge_cut",
    "partition_sizes",
    "balance_ratio",
    "PartitionBook",
    "EdgeBlock",
    "ShardedGraph",
    "ShardedHeteroGraph",
    "create_shards",
    "create_hetero_shards",
]
