"""Partition book: global ↔ local node-id bookkeeping.

Once a partition assignment is computed, every worker addresses its own
nodes with *local* ids ``0 … |V_p|-1`` (as in DistDGL / the SAR library);
the :class:`PartitionBook` holds the bidirectional mapping and is shared by
the sharding code, the communicator (which ships rows addressed by remote
local ids) and the evaluation code (which stitches per-worker predictions
back into global node order).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_1d_int_array, check_positive_int


class PartitionBook:
    """Mapping between global node ids and (partition, local id) pairs."""

    def __init__(self, assignment, num_parts: int):
        self.num_parts = check_positive_int(num_parts, "num_parts")
        self.assignment = check_1d_int_array(assignment, "assignment", max_value=self.num_parts)
        self.num_nodes = len(self.assignment)
        sizes = np.bincount(self.assignment, minlength=self.num_parts)
        if (sizes == 0).any():
            empty = np.where(sizes == 0)[0].tolist()
            raise ValueError(f"Partitions {empty} are empty; every partition needs ≥1 node")
        # Global ids of each partition's nodes, in ascending global order.
        self._partition_nodes: List[np.ndarray] = [
            np.where(self.assignment == p)[0].astype(np.int64) for p in range(self.num_parts)
        ]
        # Local id of every global node within its partition.
        self._local_ids = np.empty(self.num_nodes, dtype=np.int64)
        for nodes in self._partition_nodes:
            self._local_ids[nodes] = np.arange(len(nodes))

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        sizes = ", ".join(str(len(n)) for n in self._partition_nodes)
        return f"PartitionBook(num_parts={self.num_parts}, sizes=[{sizes}])"

    def partition_of(self, global_ids) -> np.ndarray:
        """Partition index of each global node id."""
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=self.num_nodes)
        return self.assignment[global_ids]

    def to_local(self, global_ids) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(partition, local_id)`` arrays for the given global ids."""
        global_ids = check_1d_int_array(global_ids, "global_ids", max_value=self.num_nodes)
        return self.assignment[global_ids], self._local_ids[global_ids]

    def to_global(self, partition: int, local_ids) -> np.ndarray:
        """Map local ids of ``partition`` back to global node ids."""
        nodes = self.nodes_of(partition)
        local_ids = check_1d_int_array(local_ids, "local_ids", max_value=len(nodes))
        return nodes[local_ids]

    def nodes_of(self, partition: int) -> np.ndarray:
        """Global ids of the nodes owned by ``partition`` (ascending)."""
        if not 0 <= partition < self.num_parts:
            raise ValueError(f"partition must be in [0, {self.num_parts}), got {partition}")
        return self._partition_nodes[partition]

    def partition_sizes(self) -> np.ndarray:
        """Number of nodes per partition."""
        return np.asarray([len(n) for n in self._partition_nodes], dtype=np.int64)

    def local_ids_of(self, partition: int) -> np.ndarray:
        """Local ids (0..size-1) of ``partition``; mainly for symmetry in tests."""
        return np.arange(len(self._partition_nodes[partition]), dtype=np.int64)

    def scatter_to_global(self, per_partition_values: Sequence[np.ndarray]) -> np.ndarray:
        """Assemble per-partition row blocks back into global node order.

        ``per_partition_values[p]`` must have ``partition_sizes()[p]`` rows.
        """
        if len(per_partition_values) != self.num_parts:
            raise ValueError(
                f"Expected {self.num_parts} per-partition arrays, got {len(per_partition_values)}"
            )
        first = np.asarray(per_partition_values[0])
        out_shape = (self.num_nodes,) + first.shape[1:]
        out = np.zeros(out_shape, dtype=first.dtype)
        for p, values in enumerate(per_partition_values):
            values = np.asarray(values)
            nodes = self._partition_nodes[p]
            if values.shape[0] != len(nodes):
                raise ValueError(
                    f"Partition {p} expects {len(nodes)} rows, got {values.shape[0]}"
                )
            out[nodes] = values
        return out
