"""Per-worker graph shards and the block subgraphs ``G_{p,q}``.

Following Section 3.2 of the paper, worker ``p`` owns the vertices ``V_p`` of
its partition and, for every partition ``q`` (including its own), a block
subgraph ``G_{p,q}`` containing all edges from partition ``q`` into partition
``p``.  During aggregation, worker ``p`` iterates over the blocks: for the
local block the source features are already resident, for remote blocks the
(deduplicated) required source rows are fetched from worker ``q``.

:class:`EdgeBlock` stores a remote block in the compact form the
communicator needs: the *local-to-q* ids of the required source nodes plus
per-edge indices into that compact list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph.hetero import HeteroGraph
from repro.partition.book import PartitionBook
from repro.tensor import edge_plan as edge_plan_mod
from repro.tensor.edge_plan import EdgePlan


@dataclass
class EdgeBlock:
    """Edges from partition ``src_rank`` into partition ``dst_rank`` (``G_{p,q}``)."""

    src_rank: int
    dst_rank: int
    num_dst: int
    #: local ids (on worker ``src_rank``) of the unique source nodes this block needs
    required_src_local: np.ndarray
    #: per-edge index into :attr:`required_src_local`
    src_index: np.ndarray
    #: per-edge destination id, local to worker ``dst_rank``
    dst_local: np.ndarray
    #: per-edge *global* edge position in the original graph's edge arrays
    #: (``None`` for block grids that never need it, e.g. sampled grids).
    #: Carried so per-worker code can recover the original edge order — the
    #: reduction order that makes restricted outputs bit-identical to the
    #: single-machine pipeline (see :meth:`ShardedGraph.in_edge_index`).
    edge_pos: Optional[np.ndarray] = None
    #: lazily built unweighted CSR matrices, keyed by orientation
    _csr_cache: Dict[bool, sp.csr_matrix] = field(default_factory=dict, repr=False)
    #: lazily built ``(edge_order, indices, indptr)`` CSR sparsity structure,
    #: keyed by orientation — shared by every weighted matrix of this block
    _structure_cache: Dict[bool, tuple] = field(default_factory=dict, repr=False)
    #: lazily built edge plan this block's kernels execute through
    _plan: Optional[EdgePlan] = field(default=None, repr=False)

    @property
    def num_edges(self) -> int:
        return len(self.src_index)

    @property
    def num_required_src(self) -> int:
        return len(self.required_src_local)

    def plan(self) -> Optional[EdgePlan]:
        """This block's :class:`~repro.tensor.edge_plan.EdgePlan` (lazy, cached).

        The plan is built over the block's *compact* edge list — per-edge
        indices into :attr:`required_src_local` and local destination ids —
        so the SAR kernels aggregate fetched feature rows through it without
        any per-call sparsity construction.  ``None`` while plans are
        globally disabled (the kernels then fall back to the cached scipy
        matrices / ``ufunc.at`` reference path).
        """
        if not edge_plan_mod.plans_enabled():
            return None
        if self._plan is None:
            self._plan = EdgePlan(self.src_index, self.dst_local,
                                  self.num_dst, self.num_required_src)
        return self._plan

    def _shape(self, transpose: bool) -> tuple:
        if transpose:
            return (self.num_required_src, self.num_dst)
        return (self.num_dst, self.num_required_src)

    def _structure(self, transpose: bool) -> tuple:
        """``(edge_order, indices, indptr)`` of the CSR layout for one orientation.

        Sorting the edges happens once; after that any edge-weighted matrix
        is assembled by permuting its weights into the cached layout (parallel
        edges stay as separate stored entries, which scipy's matvec sums).
        When the block's edge plan is available its orientation *is* this
        layout, so the sort is shared rather than derived twice.
        """
        cached = self._structure_cache.get(transpose)
        if cached is None:
            plan = self.plan()
            if plan is not None:
                orientation = plan._o(transpose)
                cached = (orientation.order, orientation.indices, orientation.indptr)
            else:
                if transpose:
                    rows, cols = self.src_index, self.dst_local
                else:
                    rows, cols = self.dst_local, self.src_index
                num_rows = self._shape(transpose)[0]
                order = np.lexsort((cols, rows))
                indices = cols[order]
                indptr = np.zeros(num_rows + 1, dtype=np.int64)
                np.cumsum(np.bincount(rows, minlength=num_rows), out=indptr[1:])
                cached = (order, indices, indptr)
            self._structure_cache[transpose] = cached
        return cached

    def aggregation_matrix(self, transpose: bool = False) -> sp.csr_matrix:
        """Unweighted (num_dst × num_required_src) sum-aggregation matrix.

        Each orientation is built lazily on first use and cached; requesting
        the forward matrix no longer materializes the transpose as well.
        """
        mat = self._csr_cache.get(transpose)
        if mat is None:
            order, indices, indptr = self._structure(transpose)
            mat = sp.csr_matrix(
                (np.ones(self.num_edges, dtype=np.float32), indices, indptr),
                shape=self._shape(transpose),
            )
            self._csr_cache[transpose] = mat
        return mat

    def weighted_matrix(self, weights: np.ndarray, transpose: bool = False) -> sp.csr_matrix:
        """Edge-weighted aggregation matrix over the cached sparsity structure.

        The COO→CSR sort is paid once per block and orientation
        (:meth:`_structure`); after that every call — the GAT backward hot
        path builds one per head per block — only permutes ``weights`` into
        the cached layout.  The returned matrix itself is *not* retained:
        edge-sized weight data must not outlive the aggregation that created
        it, or SAR's "nothing edge-sized survives" memory behaviour would be
        silently broken.
        """
        weights = np.asarray(weights, dtype=np.float32)
        if weights.shape != (self.num_edges,):
            raise ValueError(
                f"weights must have shape ({self.num_edges},), got {weights.shape}"
            )
        order, indices, indptr = self._structure(transpose)
        return sp.csr_matrix((weights[order], indices, indptr),
                             shape=self._shape(transpose))


def restrict_block_to_dst(block: EdgeBlock, dst_mask: np.ndarray) -> EdgeBlock:
    """Drop the block's edges whose destination is outside ``dst_mask``.

    This is the per-layer MFG restriction of the SAR path: the required
    source set is recomputed from the surviving edges, so remote blocks
    fetch (and receive backward errors for) strictly fewer halo rows.  The
    destination row space keeps its full height — worker feature matrices
    stay shaped ``(num_local_nodes, F)`` and the model code is unchanged;
    rows outside the mask simply aggregate nothing.  Surviving edges keep
    their original order, so per-row reductions stay bit-identical to the
    unrestricted blocks.
    """
    dst_mask = np.asarray(dst_mask, dtype=bool)
    if dst_mask.shape != (block.num_dst,):
        raise ValueError(
            f"dst_mask must have shape ({block.num_dst},), got {dst_mask.shape}"
        )
    keep = dst_mask[block.dst_local]
    kept_src_index = block.src_index[keep]
    required, src_index = np.unique(kept_src_index, return_inverse=True)
    return EdgeBlock(
        src_rank=block.src_rank,
        dst_rank=block.dst_rank,
        num_dst=block.num_dst,
        required_src_local=block.required_src_local[required],
        src_index=src_index.astype(np.int64),
        dst_local=block.dst_local[keep],
        edge_pos=None if block.edge_pos is None else block.edge_pos[keep],
    )


class ShardedGraph:
    """Worker ``rank``'s view of a partitioned homogeneous graph."""

    def __init__(self, rank: int, book: PartitionBook, blocks: List[EdgeBlock],
                 local_in_degrees: np.ndarray,
                 node_data: Optional[Dict[str, np.ndarray]] = None):
        self.rank = rank
        self.num_parts = book.num_parts
        self.book = book
        self.global_node_ids = book.nodes_of(rank)
        self.num_local_nodes = len(self.global_node_ids)
        self.num_total_nodes = book.num_nodes
        self.blocks = blocks
        self.local_in_degrees = np.asarray(local_in_degrees, dtype=np.int64)
        self.node_data: Dict[str, np.ndarray] = dict(node_data or {})
        self._in_edge_index = None

    def in_edge_index(self):
        """Per-local-destination in-edge buckets in ascending *global* edge order.

        Builds (once, cached) a :class:`~repro.sample.neighbor.InEdgeIndex`
        over this worker's incoming edges: destinations are local ids, while
        sources and edge ids stay global.  Because every bucket lists a
        destination's complete in-neighbourhood in ascending global edge id —
        the original edge order — blocks rebuilt from these buckets reduce
        per destination in exactly the order the single-machine pipeline
        does, which is what keeps distributed restricted outputs
        bit-identical (the distributed serving path,
        :func:`repro.sample.inference.distributed_restricted_logits`).
        Requires block grids carrying :attr:`EdgeBlock.edge_pos` (anything
        :func:`create_shards` builds).
        """
        if self._in_edge_index is None:
            from repro.sample.neighbor import InEdgeIndex

            srcs, dsts, eids = [], [], []
            for q, block in enumerate(self.blocks):
                if block.num_edges == 0:
                    continue
                if block.edge_pos is None:
                    raise ValueError(
                        "in_edge_index() needs blocks carrying global edge "
                        "positions (EdgeBlock.edge_pos); rebuild the shard "
                        "with create_shards()"
                    )
                src_global = self.book.to_global(q, block.required_src_local)
                srcs.append(src_global[block.src_index])
                dsts.append(block.dst_local)
                eids.append(block.edge_pos)
            if srcs:
                src = np.concatenate(srcs)
                dst = np.concatenate(dsts)
                eid = np.concatenate(eids)
                # Feed edges in ascending global edge id so every bucket's
                # order is the original (single-machine) reduction order.
                order = np.argsort(eid, kind="stable")
                src, dst, eid = src[order], dst[order], eid[order]
            else:
                src = dst = eid = np.empty(0, dtype=np.int64)
            self._in_edge_index = InEdgeIndex(src, dst, self.num_local_nodes,
                                              eids=eid)
        return self._in_edge_index

    def with_blocks(self, blocks: List[EdgeBlock],
                    recompute_in_degrees: bool = False) -> "ShardedGraph":
        """A shallow view of this shard executing over substitute edge blocks.

        Node data and the partition book are shared with the original shard —
        only the block grid differs.  ``recompute_in_degrees`` re-derives the
        per-node in-degrees from the substitute blocks: the MFG restriction
        keeps every required destination's complete in-neighbourhood, so it
        shares the original (global) degrees, while *sampled* block grids
        must normalize mean aggregation by the sampled degree.
        """
        view = ShardedGraph.__new__(ShardedGraph)
        view.__dict__.update(self.__dict__)
        view.blocks = blocks
        view._in_edge_index = None
        if recompute_in_degrees:
            degrees = np.zeros(self.num_local_nodes, dtype=np.int64)
            for block in blocks:
                if block.num_edges:
                    degrees += np.bincount(block.dst_local,
                                           minlength=self.num_local_nodes)
            view.local_in_degrees = degrees
        return view

    def __repr__(self) -> str:
        return (
            f"ShardedGraph(rank={self.rank}/{self.num_parts}, "
            f"local_nodes={self.num_local_nodes}, halo={self.halo_size})"
        )

    @property
    def local_block(self) -> EdgeBlock:
        """The block of edges whose source and destination are both local."""
        return self.blocks[self.rank]

    def remote_blocks(self) -> List[EdgeBlock]:
        """Blocks whose sources live on other workers, in rank order."""
        return [b for q, b in enumerate(self.blocks) if q != self.rank]

    @property
    def halo_size(self) -> int:
        """Total number of unique remote source rows this worker must fetch."""
        return sum(b.num_required_src for q, b in enumerate(self.blocks) if q != self.rank)

    @property
    def num_local_edges(self) -> int:
        """Total number of edges whose destination is local."""
        return sum(b.num_edges for b in self.blocks)

    def feature_store(self, comm, key: str = "feat", name: str = "feat",
                      cache_bytes: Optional[int] = 1 << 22):
        """This worker's :class:`~repro.store.PartitionedKVStore` over one of
        its node-data arrays (collective: every worker must build the store
        for the same ``key``/``name`` before any worker gathers).

        Parameters
        ----------
        comm:
            The worker's communicator (``comm.rank`` must equal this shard's
            rank).
        key:
            Which ``node_data`` array to serve (default the feature matrix).
        name, cache_bytes:
            Forwarded to :class:`~repro.store.PartitionedKVStore`.
        """
        from repro.store import PartitionedKVStore

        if comm.rank != self.rank:
            raise ValueError(
                f"communicator rank {comm.rank} does not match shard rank {self.rank}"
            )
        if key not in self.node_data:
            raise KeyError(
                f"shard has no node_data[{key!r}]; available: {sorted(self.node_data)}"
            )
        return PartitionedKVStore(comm, self.book, self.node_data[key],
                                  name=name, cache_bytes=cache_bytes)


class ShardedHeteroGraph:
    """Worker ``rank``'s view of a partitioned heterogeneous graph."""

    def __init__(self, rank: int, book: PartitionBook,
                 relation_blocks: Dict[str, List[EdgeBlock]],
                 relation_in_degrees: Dict[str, np.ndarray],
                 node_data: Optional[Dict[str, np.ndarray]] = None):
        self.rank = rank
        self.num_parts = book.num_parts
        self.book = book
        self.global_node_ids = book.nodes_of(rank)
        self.num_local_nodes = len(self.global_node_ids)
        self.num_total_nodes = book.num_nodes
        self.relation_blocks = relation_blocks
        self.relation_in_degrees = {k: np.asarray(v, dtype=np.int64)
                                    for k, v in relation_in_degrees.items()}
        self.node_data: Dict[str, np.ndarray] = dict(node_data or {})

    @property
    def relation_names(self) -> List[str]:
        return list(self.relation_blocks.keys())

    @property
    def halo_size(self) -> int:
        return sum(
            b.num_required_src
            for blocks in self.relation_blocks.values()
            for q, b in enumerate(blocks) if q != self.rank
        )

    def __repr__(self) -> str:
        return (
            f"ShardedHeteroGraph(rank={self.rank}/{self.num_parts}, "
            f"local_nodes={self.num_local_nodes}, relations={self.relation_names})"
        )


# --------------------------------------------------------------------------- #
# shard construction
# --------------------------------------------------------------------------- #
def _build_blocks(src: np.ndarray, dst: np.ndarray, book: PartitionBook) -> List[List[EdgeBlock]]:
    """Build the full N×N grid of edge blocks for one edge set.

    Returns ``blocks[p][q]`` = edges from partition ``q`` into partition ``p``.
    """
    num_parts = book.num_parts
    dst_part, dst_local = book.to_local(dst)
    src_part, src_local = book.to_local(src)
    sizes = book.partition_sizes()

    # Sort edges by (destination partition, source partition) once.
    key = dst_part * num_parts + src_part
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    src_local_sorted = src_local[order]
    dst_local_sorted = dst_local[order]

    blocks: List[List[EdgeBlock]] = [[None] * num_parts for _ in range(num_parts)]  # type: ignore
    for p in range(num_parts):
        for q in range(num_parts):
            lo = np.searchsorted(key_sorted, p * num_parts + q, side="left")
            hi = np.searchsorted(key_sorted, p * num_parts + q, side="right")
            block_src = src_local_sorted[lo:hi]
            block_dst = dst_local_sorted[lo:hi]
            required, src_index = np.unique(block_src, return_inverse=True)
            blocks[p][q] = EdgeBlock(
                src_rank=q,
                dst_rank=p,
                num_dst=int(sizes[p]),
                required_src_local=required.astype(np.int64),
                src_index=src_index.astype(np.int64),
                dst_local=block_dst.astype(np.int64),
                # order[lo:hi] are the edges' positions in the original
                # (src, dst) arrays — the global edge ids.
                edge_pos=order[lo:hi].astype(np.int64),
            )
    return blocks


def create_shards(graph: Graph, book: PartitionBook) -> List[ShardedGraph]:
    """Split ``graph`` into one :class:`ShardedGraph` per partition."""
    if book.num_nodes != graph.num_nodes:
        raise ValueError(
            f"PartitionBook covers {book.num_nodes} nodes but graph has {graph.num_nodes}"
        )
    blocks = _build_blocks(graph.src, graph.dst, book)
    in_degrees = graph.in_degrees()
    shards = []
    for p in range(book.num_parts):
        nodes = book.nodes_of(p)
        node_data = {k: v[nodes] for k, v in graph.ndata.items()}
        shards.append(
            ShardedGraph(
                rank=p,
                book=book,
                blocks=blocks[p],
                local_in_degrees=in_degrees[nodes],
                node_data=node_data,
            )
        )
    return shards


def create_hetero_shards(hgraph: HeteroGraph, book: PartitionBook) -> List[ShardedHeteroGraph]:
    """Split a heterogeneous graph into per-worker shards (one block grid per relation)."""
    if book.num_nodes != hgraph.num_nodes:
        raise ValueError(
            f"PartitionBook covers {book.num_nodes} nodes but graph has {hgraph.num_nodes}"
        )
    per_relation_blocks: Dict[str, List[List[EdgeBlock]]] = {}
    per_relation_degrees: Dict[str, np.ndarray] = {}
    for name, (src, dst) in hgraph.relations.items():
        per_relation_blocks[name] = _build_blocks(src, dst, book)
        per_relation_degrees[name] = np.bincount(dst, minlength=hgraph.num_nodes)

    shards = []
    for p in range(book.num_parts):
        nodes = book.nodes_of(p)
        node_data = {k: v[nodes] for k, v in hgraph.ndata.items()}
        shards.append(
            ShardedHeteroGraph(
                rank=p,
                book=book,
                relation_blocks={name: per_relation_blocks[name][p]
                                 for name in hgraph.relation_names},
                relation_in_degrees={name: per_relation_degrees[name][nodes]
                                     for name in hgraph.relation_names},
                node_data=node_data,
            )
        )
    return shards
