"""Balanced k-way graph partitioning (METIS substitute).

The paper partitions graphs with METIS, which (a) balances the number of
nodes per partition and (b) minimizes the number of edges crossing partition
boundaries.  METIS is not available offline, so this module implements a
light-weight multilevel-free analogue:

* ``"metis"`` (default): BFS region growing from spread-out seeds to obtain
  balanced parts, followed by several passes of greedy boundary refinement
  (Kernighan–Lin style single-node moves) that reduce the edge cut while
  respecting a balance tolerance.
* ``"contiguous"``: contiguous node-id ranges — effective for generated SBM
  graphs whose ids are already grouped by community.
* ``"random"``: balanced random assignment — the worst-case baseline used by
  ablation benchmarks to show the impact of partition quality.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.graph.graph import Graph
from repro.utils.seed import temp_seed
from repro.utils.validation import check_positive_int

_METHODS = ("metis", "contiguous", "random")


def partition_graph(graph: Graph, num_parts: int, method: str = "metis",
                    seed: Optional[int] = 0, refine_passes: int = 4,
                    balance_tolerance: float = 0.05) -> np.ndarray:
    """Assign every node to one of ``num_parts`` partitions.

    Returns an ``int64`` array of length ``graph.num_nodes`` with values in
    ``[0, num_parts)``.
    """
    num_parts = check_positive_int(num_parts, "num_parts")
    if method not in _METHODS:
        raise ValueError(f"Unknown partition method {method!r}; choose from {_METHODS}")
    if num_parts == 1:
        return np.zeros(graph.num_nodes, dtype=np.int64)
    if num_parts > graph.num_nodes:
        raise ValueError(
            f"Cannot split {graph.num_nodes} nodes into {num_parts} non-empty partitions"
        )

    if method == "contiguous":
        return _contiguous_assignment(graph.num_nodes, num_parts)
    if method == "random":
        return _random_assignment(graph.num_nodes, num_parts, seed)
    assignment = _region_growing(graph, num_parts, seed)
    if refine_passes > 0:
        assignment = _refine(graph, assignment, num_parts, refine_passes, balance_tolerance)
    return assignment


def edge_cut(graph: Graph, assignment: np.ndarray) -> int:
    """Number of edges whose endpoints lie in different partitions."""
    assignment = np.asarray(assignment)
    return int((assignment[graph.src] != assignment[graph.dst]).sum())


def partition_sizes(assignment: np.ndarray, num_parts: int) -> np.ndarray:
    """Number of nodes per partition."""
    return np.bincount(np.asarray(assignment), minlength=num_parts).astype(np.int64)


def balance_ratio(assignment: np.ndarray, num_parts: int) -> float:
    """Largest partition size divided by the ideal (perfectly balanced) size."""
    sizes = partition_sizes(assignment, num_parts)
    ideal = len(np.asarray(assignment)) / num_parts
    return float(sizes.max() / ideal) if ideal else 1.0


# --------------------------------------------------------------------------- #
# assignment strategies
# --------------------------------------------------------------------------- #
def _contiguous_assignment(num_nodes: int, num_parts: int) -> np.ndarray:
    bounds = np.linspace(0, num_nodes, num_parts + 1).astype(np.int64)
    assignment = np.empty(num_nodes, dtype=np.int64)
    for p in range(num_parts):
        assignment[bounds[p]:bounds[p + 1]] = p
    return assignment


def _random_assignment(num_nodes: int, num_parts: int, seed: Optional[int]) -> np.ndarray:
    assignment = _contiguous_assignment(num_nodes, num_parts)
    with temp_seed(seed) as rng:
        rng.shuffle(assignment)
    return assignment


def _build_neighbor_lists(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, indices) of undirected neighbours per node."""
    src = np.concatenate([graph.src, graph.dst])
    dst = np.concatenate([graph.dst, graph.src])
    order = np.argsort(src, kind="stable")
    sorted_src, sorted_dst = src[order], dst[order]
    indptr = np.zeros(graph.num_nodes + 1, dtype=np.int64)
    counts = np.bincount(sorted_src, minlength=graph.num_nodes)
    indptr[1:] = np.cumsum(counts)
    return indptr, sorted_dst


def _region_growing(graph: Graph, num_parts: int, seed: Optional[int]) -> np.ndarray:
    """Grow ``num_parts`` BFS regions of (nearly) equal size."""
    num_nodes = graph.num_nodes
    indptr, neighbors = _build_neighbor_lists(graph)
    assignment = np.full(num_nodes, -1, dtype=np.int64)
    capacity = np.full(num_parts, num_nodes // num_parts, dtype=np.int64)
    capacity[: num_nodes % num_parts] += 1

    with temp_seed(seed) as rng:
        seeds = rng.choice(num_nodes, size=num_parts, replace=False)
    frontiers: List[deque] = [deque([int(s)]) for s in seeds]
    sizes = np.zeros(num_parts, dtype=np.int64)

    # Round-robin BFS growth: each partition claims one unassigned frontier
    # node per round until it reaches its capacity.
    active = True
    while active:
        active = False
        for p in range(num_parts):
            if sizes[p] >= capacity[p]:
                continue
            frontier = frontiers[p]
            claimed = False
            while frontier and not claimed:
                node = frontier.popleft()
                if assignment[node] != -1:
                    continue
                assignment[node] = p
                sizes[p] += 1
                claimed = True
                nbrs = neighbors[indptr[node]:indptr[node + 1]]
                frontier.extend(int(n) for n in nbrs if assignment[n] == -1)
            if claimed:
                active = True

    # Disconnected leftovers: assign to the emptiest partitions.
    unassigned = np.where(assignment == -1)[0]
    for node in unassigned:
        p = int(np.argmin(sizes - capacity))
        assignment[node] = p
        sizes[p] += 1
    return assignment


def _refine(graph: Graph, assignment: np.ndarray, num_parts: int,
            passes: int, tolerance: float) -> np.ndarray:
    """Greedy boundary refinement: move nodes to the neighbour-majority part."""
    assignment = assignment.copy()
    indptr, neighbors = _build_neighbor_lists(graph)
    num_nodes = graph.num_nodes
    ideal = num_nodes / num_parts
    max_size = int(np.ceil(ideal * (1.0 + tolerance)))
    min_size = int(np.floor(ideal * (1.0 - tolerance)))
    sizes = partition_sizes(assignment, num_parts)

    for _ in range(passes):
        moved = 0
        # Only boundary nodes (with a neighbour in another part) can improve the cut.
        boundary_mask = assignment[graph.src] != assignment[graph.dst]
        boundary_nodes = np.unique(
            np.concatenate([graph.src[boundary_mask], graph.dst[boundary_mask]])
        )
        for node in boundary_nodes:
            current = assignment[node]
            nbrs = neighbors[indptr[node]:indptr[node + 1]]
            if len(nbrs) == 0:
                continue
            counts = np.bincount(assignment[nbrs], minlength=num_parts)
            best = int(np.argmax(counts))
            if best == current:
                continue
            gain = counts[best] - counts[current]
            if gain <= 0:
                continue
            if sizes[best] + 1 > max_size or sizes[current] - 1 < min_size:
                continue
            assignment[node] = best
            sizes[best] += 1
            sizes[current] -= 1
            moved += 1
        if moved == 0:
            break
    return assignment
