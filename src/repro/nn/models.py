"""End-to-end GNN models used in the paper's evaluation.

All three networks follow the paper's experimental setup (Section 4.2 and
Appendix A): three layers, batch normalization and dropout between layers,
and a plain classification head.  The same model object runs on a
single-machine :class:`~repro.graph.graph.Graph` / :class:`HeteroGraph` or on
a distributed graph handle — only the graph argument changes, mirroring how
the SAR library reuses unmodified DGL model code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.mfg import MFGPipeline
from repro.nn.dropout import Dropout
from repro.nn.gat import GATConv
from repro.nn.gat_fused import FusedGATConv
from repro.nn.module import Module, ModuleList
from repro.nn.norm import DistributedBatchNorm
from repro.nn.rgcn import RelGraphConv
from repro.nn.sage import SageConv
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_positive_int


class _DeepGNN(Module):
    """Shared skeleton: conv layers with (BatchNorm → activation → Dropout) in between."""

    def __init__(self, convs: List[Module], norm_dims: List[int], dropout: float,
                 use_batch_norm: bool, activation):
        super().__init__()
        self.convs = ModuleList(convs)
        self.use_batch_norm = use_batch_norm
        self.norms = ModuleList(
            [DistributedBatchNorm(dim) for dim in norm_dims] if use_batch_norm else []
        )
        self.dropout = Dropout(dropout)
        self._activation = activation

    def set_comm(self, comm) -> None:
        """Attach a communicator to every distributed BatchNorm layer."""
        for norm in self.norms:
            norm.set_comm(comm)

    @property
    def num_layers(self) -> int:
        return len(self.convs)

    def forward_layer(self, index: int, graph, x: Tensor) -> Tensor:
        """Apply conv layer ``index`` plus its trailing inter-layer transforms.

        This is the single-layer hook the layer-wise inference engine
        (:class:`repro.sample.inference.LayerWiseInference`) builds on: it
        computes exactly what the full :meth:`forward` computes for one layer
        — the conv itself followed by (BatchNorm → activation → Dropout) on
        every layer but the last — given only that layer's input features.

        Parameters
        ----------
        index:
            Conv layer to apply, ``0 <= index < num_layers``.
        graph:
            Anything the conv layers accept: a full
            :class:`~repro.graph.graph.Graph` / ``HeteroGraph``, one compacted
            :class:`~repro.graph.mfg.MFGBlock` / ``MFGHeteroBlock``, or a
            distributed graph handle.
        x:
            ``(num_src_rows, in_features)`` input features of this layer (for
            a block, the block's source rows; otherwise one row per node).

        Returns
        -------
        Tensor
            ``(num_dst_rows, out_features)`` layer outputs.  In ``eval()``
            mode every inter-layer transform is a per-row map (BatchNorm uses
            its running statistics, Dropout is the identity), so computing
            rows batch-by-batch yields bit-identical results to one full pass.
        """
        if not 0 <= index < len(self.convs):
            raise IndexError(
                f"model has {len(self.convs)} conv layers, asked for layer {index}"
            )
        x = self.convs[index](graph, x)
        if index < len(self.convs) - 1:
            if self.use_batch_norm:
                x = self.norms[index](x)
            x = self._activation(x)
            x = self.dropout(x)
        return x

    def forward(self, graph, x: Tensor) -> Tensor:
        """Apply the stack on a graph, a distributed handle, or an MFG pipeline.

        With an :class:`~repro.graph.mfg.MFGPipeline` each conv layer runs on
        its compacted block: ``x`` holds the pipeline's ``input_nodes`` rows
        and the output holds only the seed rows (``output_nodes``); the
        between-layer norm/activation/dropout apply to the (shrinking)
        restricted row sets.
        """
        pipeline = graph if isinstance(graph, MFGPipeline) else None
        if pipeline is not None and pipeline.num_layers != len(self.convs):
            raise ValueError(
                f"MFG pipeline has {pipeline.num_layers} layer blocks but the "
                f"model has {len(self.convs)} conv layers"
            )
        for index in range(len(self.convs)):
            layer_graph = pipeline.layer_block(index) if pipeline is not None else graph
            x = self.forward_layer(index, layer_graph, x)
        return x


class GraphSageNet(_DeepGNN):
    """Multi-layer GraphSage classifier (3 layers, hidden size 256 in the paper).

    ``aggregator`` selects the neighbour aggregation of every layer:
    ``"mean"``/``"sum"`` (the paper's case-1 configuration) or ``"max"``/
    ``"min"`` pooling (a case-2 configuration — distributed training
    re-fetches remote features during the backward pass, like GAT/R-GCN).
    """

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 num_layers: int = 3, dropout: float = 0.5, use_batch_norm: bool = True,
                 aggregator: str = "mean"):
        num_layers = check_positive_int(num_layers, "num_layers")
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        convs = [
            SageConv(dims[i], dims[i + 1], aggregator=aggregator)
            for i in range(num_layers)
        ]
        super().__init__(convs, dims[1:num_layers], dropout, use_batch_norm, F.relu)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes


class GATNet(_DeepGNN):
    """Multi-layer GAT classifier (3 layers, 4 heads, hidden size 128 in the paper).

    ``fused=True`` builds the network from :class:`FusedGATConv` layers (the
    paper's SAR+FAK configuration); the parameters and outputs are identical
    to the standard layers, only the kernel implementation differs.
    """

    def __init__(self, in_features: int, hidden_per_head: int, num_classes: int,
                 num_layers: int = 3, num_heads: int = 4, dropout: float = 0.5,
                 use_batch_norm: bool = True, fused: bool = False,
                 negative_slope: float = 0.2):
        num_layers = check_positive_int(num_layers, "num_layers")
        conv_cls = FusedGATConv if fused else GATConv
        convs: List[Module] = []
        norm_dims: List[int] = []
        width = hidden_per_head * num_heads
        for index in range(num_layers):
            layer_in = in_features if index == 0 else width
            if index == num_layers - 1:
                convs.append(conv_cls(layer_in, num_classes, num_heads=1,
                                      negative_slope=negative_slope))
            else:
                convs.append(conv_cls(layer_in, hidden_per_head, num_heads=num_heads,
                                      negative_slope=negative_slope))
                norm_dims.append(width)
        super().__init__(convs, norm_dims, dropout, use_batch_norm, F.elu)
        self.in_features = in_features
        self.hidden_per_head = hidden_per_head
        self.num_heads = num_heads
        self.num_classes = num_classes
        self.fused = fused


class RGCNNet(_DeepGNN):
    """Multi-layer R-GCN classifier for heterogeneous graphs (Appendix A)."""

    def __init__(self, in_features: int, hidden_features: int, num_classes: int,
                 relation_names: Sequence[str], num_layers: int = 3,
                 num_bases: Optional[int] = 2, dropout: float = 0.5,
                 use_batch_norm: bool = True):
        num_layers = check_positive_int(num_layers, "num_layers")
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        convs = [
            RelGraphConv(dims[i], dims[i + 1], relation_names, num_bases=num_bases)
            for i in range(num_layers)
        ]
        super().__init__(convs, dims[1:num_layers], dropout, use_batch_norm, F.relu)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.relation_names = list(relation_names)
