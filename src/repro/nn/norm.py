"""Batch normalization, including SAR's distributed variant (paper §3.4).

In distributed full-batch training the node-feature matrix ``H`` is split
row-wise across workers.  :class:`DistributedBatchNorm` computes the *global*
mean and variance by all-reducing per-worker summary statistics (count, sum,
sum of squares), and its custom backward pass all-reduces the two reduction
terms of the batch-norm gradient so that the result is numerically identical
to single-machine batch norm over the full feature matrix — while only ever
communicating ``O(F)`` numbers per worker.

:class:`BatchNorm1d` is the single-machine special case (``comm=None``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributed.comm import Communicator
from repro.nn.module import Module, Parameter
from repro.tensor import init
from repro.tensor.tensor import Function, Tensor, grad_enabled
from repro.utils.validation import check_positive_int


class _BatchNormFunction(Function):
    """Fused (optionally distributed) batch-norm forward/backward."""

    def forward(self, x: Tensor, gamma: Tensor, beta: Tensor,
                comm: Optional[Communicator], eps: float) -> np.ndarray:
        data = x.data
        if data.ndim != 2:
            raise ValueError(f"BatchNorm expects 2-D input, got shape {data.shape}")
        num_features = data.shape[1]
        local_count = np.float64(data.shape[0])
        local_sum = data.sum(axis=0, dtype=np.float64)
        local_sumsq = (data.astype(np.float64) ** 2).sum(axis=0)
        stats = np.concatenate([[local_count], local_sum, local_sumsq])
        if comm is not None:
            stats = comm.allreduce(stats, op="sum", tag="batchnorm")
        total_count = max(stats[0], 1.0)
        mean = (stats[1:1 + num_features] / total_count).astype(data.dtype)
        var = (stats[1 + num_features:] / total_count - mean.astype(np.float64) ** 2)
        var = np.maximum(var, 0.0).astype(data.dtype)
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (data - mean) * inv_std
        out = gamma.data * x_hat + beta.data
        self.save_for_backward(x_hat, gamma.data, inv_std, total_count, comm)
        # Stash statistics for the module to update its running buffers.
        self.batch_mean = mean
        self.batch_var = var
        return out

    def backward(self, grad_out):
        x_hat, gamma, inv_std, total_count, comm = self.saved
        dgamma = (grad_out * x_hat).sum(axis=0)
        dbeta = grad_out.sum(axis=0)
        dx_hat = grad_out * gamma
        # Global reduction terms of the batch-norm gradient.
        local_terms = np.concatenate([
            dx_hat.sum(axis=0, dtype=np.float64),
            (dx_hat * x_hat).sum(axis=0, dtype=np.float64),
        ])
        if comm is not None:
            local_terms = comm.allreduce(local_terms, op="sum", tag="batchnorm_grad")
        num_features = x_hat.shape[1]
        mean_dx_hat = (local_terms[:num_features] / total_count).astype(x_hat.dtype)
        mean_dx_hat_x = (local_terms[num_features:] / total_count).astype(x_hat.dtype)
        dx = inv_std * (dx_hat - mean_dx_hat - x_hat * mean_dx_hat_x)
        return dx.astype(x_hat.dtype), dgamma.astype(gamma.dtype), dbeta.astype(gamma.dtype)


class DistributedBatchNorm(Module):
    """Batch normalization over a row-partitioned feature matrix.

    Parameters
    ----------
    num_features:
        Feature dimension.
    comm:
        Communicator used to all-reduce summary statistics.  ``None`` makes
        the layer behave exactly like single-machine batch norm.  The
        communicator can also be (re)assigned later via :meth:`set_comm`,
        which is how the distributed model replicas attach their per-worker
        communicators.
    eps, momentum:
        Usual batch-norm hyperparameters; running statistics use
        ``running = (1 - momentum) * running + momentum * batch``.
    """

    def __init__(self, num_features: int, comm: Optional[Communicator] = None,
                 eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = check_positive_int(num_features, "num_features")
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.comm = comm
        self.gamma = Parameter(init.ones((self.num_features,)), name="batchnorm.gamma")
        self.beta = Parameter(init.zeros((self.num_features,)), name="batchnorm.beta")
        self.register_buffer("running_mean", init.zeros((self.num_features,)))
        self.register_buffer("running_var", init.ones((self.num_features,)))

    def set_comm(self, comm: Optional[Communicator]) -> None:
        """Attach / replace the communicator (used by distributed model builders)."""
        self.comm = comm

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"Expected {self.num_features} features, got input of shape {x.shape}"
            )
        if self.training:
            fn = _BatchNormFunction()
            fn.needs_grad = grad_enabled() and (x.requires_grad or self.gamma.requires_grad)
            out_data = fn.forward(x, self.gamma, self.beta, self.comm, self.eps)
            out = Tensor(out_data, requires_grad=fn.needs_grad)
            if fn.needs_grad:
                fn.parents = (x, self.gamma, self.beta)
                out._ctx = fn
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * fn.batch_mean,
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * fn.batch_var,
            )
            return out
        # Evaluation: use running statistics (identical on every worker).
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = Tensor((self.gamma.data * inv_std).astype(x.dtype))
        shift = Tensor((self.beta.data - self.gamma.data * self.running_mean * inv_std).astype(x.dtype))
        return x * scale + shift

    def __repr__(self) -> str:
        mode = "distributed" if self.comm is not None else "local"
        return f"DistributedBatchNorm(num_features={self.num_features}, mode={mode})"


class BatchNorm1d(DistributedBatchNorm):
    """Single-machine batch normalization (``DistributedBatchNorm`` without a communicator)."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__(num_features, comm=None, eps=eps, momentum=momentum)

    def __repr__(self) -> str:
        return f"BatchNorm1d(num_features={self.num_features})"
