"""Relational graph convolution (R-GCN) layer — paper Appendix A, Eq. 4/5.

``h_i^{l+1} = σ( Σ_r Σ_{j ∈ N_r(i)} (1/|N_r(i)|) W_r h_j  +  W_0 h_i )``

with optional basis decomposition ``W_r = Σ_b a_{rb} V_b`` to share parameters
across relations.  Because the aggregation has *learnable* parameters
(``W_r``), backpropagating to them requires the values of the layer inputs —
this is SAR's "case 2", so the distributed variant re-fetches remote features
during the backward pass (just like GAT).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.graph.hetero import HeteroGraph
from repro.graph.mfg import MFGHeteroBlock
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import init, ops
from repro.tensor.sparse import neighbor_aggregate, spmm
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_positive_int


class RelGraphConv(Module):
    """R-GCN layer over a heterogeneous graph with named relations."""

    def __init__(self, in_features: int, out_features: int, relation_names: Sequence[str],
                 num_bases: Optional[int] = None, self_loop: bool = True, bias: bool = True,
                 activation: Optional[Callable[[Tensor], Tensor]] = None):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.relation_names: List[str] = list(relation_names)
        if not self.relation_names:
            raise ValueError("RelGraphConv needs at least one relation")
        num_relations = len(self.relation_names)
        if num_bases is not None:
            num_bases = check_positive_int(num_bases, "num_bases")
            if num_bases > num_relations:
                raise ValueError(
                    f"num_bases ({num_bases}) cannot exceed the number of relations ({num_relations})"
                )
        self.num_bases = num_bases
        self.activation = activation

        if num_bases is None:
            # One independent weight matrix per relation, stored flattened so a
            # single parameter covers all relations.
            self.weight = Parameter(
                init.xavier_uniform((num_relations, in_features * out_features)),
                name="rgcn.weight",
            )
            self.basis = None
            self.coefficients = None
        else:
            # Basis decomposition (Eq. 5): W_r = Σ_b a_{rb} V_b.
            self.basis = Parameter(
                init.xavier_uniform((num_bases, in_features * out_features)), name="rgcn.basis"
            )
            self.coefficients = Parameter(
                init.xavier_uniform((num_relations, num_bases)), name="rgcn.coefficients"
            )
            self.weight = None

        self.self_linear: Optional[Linear] = None
        if self_loop:
            self.self_linear = Linear(in_features, out_features, bias=False, name="rgcn.self")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="rgcn.bias")

    # ------------------------------------------------------------------ #
    def relation_weights(self) -> Tensor:
        """Per-relation weight matrices as a flattened ``(R, in·out)`` tensor."""
        if self.weight is not None:
            return self.weight
        return self.coefficients @ self.basis

    def relation_weight(self, index: int) -> Tensor:
        """Weight matrix ``W_r`` of relation ``index``, shaped ``(in, out)``."""
        flat = ops.slice_(self.relation_weights(), index)
        return flat.reshape(self.in_features, self.out_features)

    # ------------------------------------------------------------------ #
    def forward(self, graph, x: Tensor) -> Tensor:
        """Apply the layer on a :class:`HeteroGraph` or a distributed hetero handle.

        On a distributed handle the whole relational aggregation — including
        applying ``W_r`` to (remotely fetched) neighbour features — is
        delegated to the handle, because the aggregation's gradient w.r.t.
        ``W_r`` needs those neighbour features: SAR must re-fetch them in the
        backward pass (case 2).
        """
        if x.shape[0] != graph.num_nodes:
            raise ValueError(
                f"Feature matrix has {x.shape[0]} rows but graph has {graph.num_nodes} nodes"
            )
        if isinstance(graph, (HeteroGraph, MFGHeteroBlock)):
            out: Optional[Tensor] = None
            for index, relation in enumerate(self.relation_names):
                z_r = x @ self.relation_weight(index)
                plan = graph.relation_plan(relation)
                if plan is not None:
                    contribution = neighbor_aggregate(z_r, plan, op="mean")
                else:
                    adj = graph.relation_adjacency(relation, normalization="mean")
                    adj_t = graph.relation_adjacency(relation, transpose=True,
                                                     normalization="mean")
                    contribution = spmm(z_r, adj, adj_t)
                out = contribution if out is None else out + contribution
        else:
            out = graph.rgcn_aggregate(
                x, self.relation_weights(), self.relation_names,
                self.in_features, self.out_features,
            )
        if self.self_linear is not None:
            self_rows = graph.gather_dst(x) if isinstance(graph, MFGHeteroBlock) else x
            out = out + self.self_linear(self_rows)
        if self.bias is not None:
            out = out + self.bias
        if self.activation is not None:
            out = self.activation(out)
        return out

    def __repr__(self) -> str:
        return (
            f"RelGraphConv(in={self.in_features}, out={self.out_features}, "
            f"relations={len(self.relation_names)}, num_bases={self.num_bases})"
        )
