"""Graph attention network (GAT) layer — standard two-step implementation.

This mirrors DGL's ``GATConv`` dataflow (the baseline in the paper's
Figure 2): per-edge attention logits and normalized attention coefficients
are materialized as full ``(E, H)`` tensors and kept alive by the autograd
graph until the backward pass.  The fused variant in
:mod:`repro.nn.gat_fused` computes the same mathematics without ever storing
those per-edge tensors.

GAT layer (paper Eq. 3), evaluated per attention head:

``e_{j→i} = LeakyReLU(a_l · z_i + a_r · z_j)``
``α_{j→i} = softmax_j(e_{j→i})``
``h_i = σ( Σ_j α_{j→i} · z_j )``
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.mfg import MFGBlock
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor import init, ops
from repro.tensor.sparse import edge_softmax, u_add_v, u_mul_e_sum
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_positive_int


class GATBase(Module):
    """Shared parameters and projection step of the standard and fused GAT layers."""

    def __init__(self, in_features: int, out_features: int, num_heads: int = 1,
                 negative_slope: float = 0.2,
                 activation: Optional[Callable[[Tensor], Tensor]] = None,
                 bias: bool = True):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.num_heads = check_positive_int(num_heads, "num_heads")
        self.negative_slope = float(negative_slope)
        self.activation = activation
        self.fc = Linear(in_features, out_features * num_heads, bias=False, name="gat.fc")
        self.attn_l = Parameter(
            init.xavier_uniform((num_heads, out_features)), name="gat.attn_l"
        )
        self.attn_r = Parameter(
            init.xavier_uniform((num_heads, out_features)), name="gat.attn_r"
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((num_heads * out_features,)), name="gat.bias")

    def project(self, x: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Compute ``z`` (N, H, D) and the per-node attention scores (N, H).

        ``a^T (z_i || z_j)`` decomposes into ``a_l · z_i + a_r · z_j``; the two
        per-node dot products are computed once here and combined per edge in
        the message-passing step.
        """
        num_nodes = x.shape[0]
        z = self.fc(x).reshape(num_nodes, self.num_heads, self.out_features)
        score_dst = (z * self.attn_l).sum(axis=-1)
        score_src = (z * self.attn_r).sum(axis=-1)
        return z, score_dst, score_src

    def finalize(self, aggregated: Tensor) -> Tensor:
        """Flatten heads, add bias, apply the output activation."""
        num_nodes = aggregated.shape[0]
        out = aggregated.reshape(num_nodes, self.num_heads * self.out_features)
        if self.bias is not None:
            out = out + self.bias
        if self.activation is not None:
            out = self.activation(out)
        return out


class GATConv(GATBase):
    """Standard ("DGL-style") GAT layer that materializes per-edge attention tensors."""

    #: Set by :class:`~repro.nn.gat_fused.FusedGATConv`; distributed graph
    #: handles use it to pick the fused or the materializing kernel.
    uses_fused_kernel = False

    def forward(self, graph, x: Tensor) -> Tensor:
        """Apply the layer on a :class:`Graph` or a distributed graph handle."""
        if x.shape[0] != graph.num_nodes:
            raise ValueError(
                f"Feature matrix has {x.shape[0]} rows but graph has {graph.num_nodes} nodes"
            )
        z, score_dst, score_src = self.project(x)
        if isinstance(graph, (Graph, MFGBlock)):
            aggregated = self._aggregate_local(graph, z, score_dst, score_src)
        else:
            aggregated = graph.gat_aggregate(
                z, score_dst, score_src,
                negative_slope=self.negative_slope,
                fused=self.uses_fused_kernel,
            )
        return self.finalize(aggregated)

    def _aggregate_local(self, graph, z: Tensor, score_dst: Tensor,
                         score_src: Tensor) -> Tensor:
        src, dst = graph.src, graph.dst
        plan = graph.plan()
        if isinstance(graph, MFGBlock):
            # Compacted block: destination scores live in the (smaller)
            # destination row space; sources keep the input row space.
            num_dst = graph.num_dst_nodes
            score_dst = graph.gather_dst(score_dst)
        else:
            num_dst = graph.num_nodes
        # Per-edge attention logits (E, H): materialized and saved by autograd.
        if plan is not None:
            raw = u_add_v(score_dst, score_src, plan)
        else:
            raw = ops.gather(score_dst, dst) + ops.gather(score_src, src)
        logits = F.leaky_relu(raw, self.negative_slope)
        # Normalized attention coefficients (E, H): another materialized tensor.
        alpha = edge_softmax(logits, dst, num_dst, plan=plan)
        return u_mul_e_sum(z, alpha, src, dst, num_dst, plan=plan)

    def __repr__(self) -> str:
        return (
            f"GATConv(in={self.in_features}, out={self.out_features}, "
            f"heads={self.num_heads})"
        )
