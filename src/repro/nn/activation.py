"""Activation modules (thin wrappers over :mod:`repro.tensor.functional`)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (GAT uses 0.2)."""

    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = float(negative_slope)

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class ELU(Module):
    """Exponential linear unit (the activation GAT applies between layers)."""

    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x: Tensor) -> Tensor:
        return F.elu(x, self.alpha)

    def __repr__(self) -> str:
        return f"ELU(alpha={self.alpha})"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"
