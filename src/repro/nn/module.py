"""Module / Parameter abstractions (the ``torch.nn.Module`` substitute).

Modules auto-register parameters and sub-modules assigned as attributes,
support recursive parameter collection, train/eval switching, and state
dicts.  The distributed trainer relies on :meth:`Module.parameters` returning
parameters in a *deterministic* order on every worker so that the
gradient-synchronization allreduce lines up across ranks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable model parameter (always requires grad)."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place (keeps the attribute in sync)."""
        if name not in self._buffers:
            raise KeyError(f"Unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # parameter access
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters in deterministic (registration) order."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # train / eval
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", bool(mode))
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, value in self._buffers.items():
            state[f"{prefix}{name}"] = np.asarray(value).copy()
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"Missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"Shape mismatch for {key!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                self.set_buffer(name, state[key])
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child})"


class ModuleList(Module):
    """A list of sub-modules registered in order."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        object.__setattr__(self, str(index), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Sequential(Module):
    """Apply modules one after another: ``Sequential(a, b)(x) == b(a(x))``."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items: List[Module] = []
        for index, module in enumerate(modules):
            self._items.append(module)
            self._modules[str(index)] = module
            object.__setattr__(self, str(index), module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
