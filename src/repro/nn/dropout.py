"""Dropout module."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_probability


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The paper applies dropout between all GNN layers of both the GraphSage
    and GAT networks.
    """

    def __init__(self, p: float = 0.5):
        super().__init__()
        self.p = check_probability(p, "dropout probability")

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
