"""GraphSage convolution (single-machine), paper Eq. 2.

``h_i = σ( W_res · h_i + AGG_{j∈N(i)} W · h_j )``

with ``AGG`` one of:

* ``"mean"`` / ``"sum"`` — linear aggregation; gradients w.r.t. the inputs do
  not depend on the input values, which is why the distributed version of
  this layer is SAR's "case 1": no re-fetch of remote features is needed
  during the backward pass.
* ``"max"`` / ``"min"`` — element-wise pooling; which neighbour attains the
  extremum depends on the *values*, so the distributed backward pass must
  re-fetch remote features — SAR's "case 2", just like attention.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.graph.graph import Graph
from repro.graph.mfg import MFGBlock
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.sparse import neighbor_aggregate, pool_aggregate, spmm
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_positive_int

AGGREGATORS = ("mean", "sum", "max", "min")


class SageConv(Module):
    """GraphSage layer with mean (default), sum, max, or min aggregation."""

    def __init__(self, in_features: int, out_features: int, aggregator: str = "mean",
                 bias: bool = True,
                 activation: Optional[Callable[[Tensor], Tensor]] = None):
        super().__init__()
        if aggregator not in AGGREGATORS:
            raise ValueError(
                f"aggregator must be one of {AGGREGATORS}, got {aggregator!r}"
            )
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.aggregator = aggregator
        self.activation = activation
        # W in the paper's Eq. 2 (applied to neighbours) and W_res (applied to self).
        self.neighbor_linear = Linear(in_features, out_features, bias=False, name="sage.neigh")
        self.self_linear = Linear(in_features, out_features, bias=bias, name="sage.self")

    def forward(self, graph, x: Tensor) -> Tensor:
        """Apply the layer.

        ``graph`` is a single-machine :class:`~repro.graph.graph.Graph`, a
        compacted per-layer :class:`~repro.graph.mfg.MFGBlock` (the MFG
        execution pipeline: ``x`` holds the block's required source rows and
        the output the required destination rows), or a distributed graph
        handle (``repro.core.DistributedGraph``), in which case ``x`` holds
        only the local partition's rows and the neighbour aggregation runs
        through the sequential-aggregation engine (SAR / domain-parallel
        exchange) — the model code is identical in all settings, as in the
        paper.
        """
        if x.shape[0] != graph.num_nodes:
            raise ValueError(
                f"Feature matrix has {x.shape[0]} rows but graph has {graph.num_nodes} nodes"
            )
        z = self.neighbor_linear(x)
        if isinstance(graph, (Graph, MFGBlock)):
            num_dst = graph.num_dst_nodes if isinstance(graph, MFGBlock) else graph.num_nodes
            plan = graph.plan()
            if self.aggregator in ("max", "min"):
                aggregated = pool_aggregate(z, graph.src, graph.dst, num_dst,
                                            op=self.aggregator, plan=plan)
            elif plan is not None:
                aggregated = neighbor_aggregate(z, plan, op=self.aggregator)
            else:
                norm = self.aggregator if self.aggregator == "mean" else "none"
                aggregated = spmm(z, graph.adjacency(normalization=norm),
                                  graph.adjacency(transpose=True, normalization=norm))
            self_rows = graph.gather_dst(x) if isinstance(graph, MFGBlock) else x
        else:
            aggregated = graph.aggregate_neighbors(z, op=self.aggregator)
            self_rows = x
        out = self.self_linear(self_rows) + aggregated
        if self.activation is not None:
            out = self.activation(out)
        return out

    def __repr__(self) -> str:
        return (
            f"SageConv(in={self.in_features}, out={self.out_features}, "
            f"aggregator={self.aggregator!r})"
        )


def sage_reference_forward(graph: Graph, x, w_neigh, w_self, bias=None,
                           aggregator: str = "mean"):
    """Plain-NumPy reference implementation used by the unit tests."""
    import numpy as np

    from repro.tensor.sparse import segment_max_np, segment_min_np

    x = x.data if isinstance(x, Tensor) else x
    z = x @ (w_neigh.data if isinstance(w_neigh, Tensor) else w_neigh)
    if aggregator in ("max", "min"):
        reduce = segment_max_np if aggregator == "max" else segment_min_np
        agg = reduce(z[graph.src], graph.dst, graph.num_nodes)
        agg = np.where(np.isfinite(agg), agg, 0.0).astype(z.dtype, copy=False)
    else:
        agg = np.zeros_like(z)
        np.add.at(agg, graph.dst, z[graph.src])
        if aggregator == "mean":
            deg = np.maximum(graph.in_degrees(), 1).astype(z.dtype)
            agg = agg / deg[:, None]
    out = x @ (w_self.data if isinstance(w_self, Tensor) else w_self) + agg
    if bias is not None:
        out = out + (bias.data if isinstance(bias, Tensor) else bias)
    return out


# Re-export the functional activation most GraphSage stacks use.
relu = F.relu
