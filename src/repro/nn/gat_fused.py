"""Fused attention kernels for GAT (paper §3.3).

The standard GAT implementation materializes the per-edge attention logits
and the normalized attention coefficients as ``(E, H)`` tensors, writes them
to memory in the forward pass, and reads them back in the backward pass.
The fused kernel computes attention coefficients *on the fly* while
aggregating neighbour features:

* forward: one pass over the edges that simultaneously computes the stable
  softmax statistics and the weighted feature sums; nothing edge-sized is
  saved for backward (only the node-level inputs, which autograd keeps alive
  anyway).
* backward: the attention coefficients are *recomputed* from the saved
  node-level projections and then used to push gradients to the neighbour
  features and attention scores.

This trades extra backward compute (growing with the number of heads) for a
much smaller forward-pass memory footprint — exactly the trade-off shown in
the paper's Figure 2 — and synergizes with SAR, which has to rematerialize
these intermediates during the backward pass anyway.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph.mfg import MFGBlock
from repro.nn.gat import GATBase
from repro.tensor.edge_plan import EdgePlan
from repro.tensor.sparse import segment_max_np, segment_sum_np
from repro.tensor.tensor import Function, Tensor

_TINY = np.finfo(np.float32).tiny


def fused_gat_forward_np(z: np.ndarray, score_dst: np.ndarray, score_src: np.ndarray,
                         src: np.ndarray, dst: np.ndarray, num_nodes: int,
                         negative_slope: float,
                         plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Single-pass attention aggregation (no per-edge tensor survives the call)."""
    raw = score_dst[dst] + score_src[src]
    logits = np.where(raw > 0, raw, negative_slope * raw)
    maxes = segment_max_np(logits, dst, num_nodes, plan=plan)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0)
    weights = np.exp(logits - maxes[dst])
    denom = np.maximum(segment_sum_np(weights, dst, num_nodes, plan=plan), _TINY)
    heads, dim = z.shape[1], z.shape[2]
    if plan is not None:
        numer = plan.u_mul_e_sum(z, weights)
    else:
        numer = np.empty((num_nodes, heads, dim), dtype=z.dtype)
        for h in range(heads):
            adj = sp.csr_matrix((weights[:, h], (dst, src)), shape=(num_nodes, z.shape[0]))
            numer[:, h, :] = adj @ z[:, h, :]
    return numer / denom[:, :, None]


def fused_gat_backward_np(grad_out: np.ndarray, z: np.ndarray, score_dst: np.ndarray,
                          score_src: np.ndarray, src: np.ndarray, dst: np.ndarray,
                          num_nodes: int, negative_slope: float,
                          plan: Optional[EdgePlan] = None
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recompute attention coefficients and backpropagate through the aggregation."""
    # Rematerialize the attention coefficients (the extra compute of the fused kernel).
    raw = score_dst[dst] + score_src[src]
    logits = np.where(raw > 0, raw, negative_slope * raw)
    maxes = segment_max_np(logits, dst, num_nodes, plan=plan)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0)
    weights = np.exp(logits - maxes[dst])
    denom = np.maximum(segment_sum_np(weights, dst, num_nodes, plan=plan), _TINY)
    alpha = weights / denom[dst]

    heads = z.shape[1]
    # Gradient w.r.t. z: transpose-aggregate the output gradient with weights alpha.
    if plan is not None:
        grad_z = plan.u_mul_e_sum_t(grad_out, alpha)
    else:
        grad_z = np.empty_like(z)
        for h in range(heads):
            adj_t = sp.csr_matrix((alpha[:, h], (src, dst)), shape=(z.shape[0], num_nodes))
            grad_z[:, h, :] = adj_t @ grad_out[:, h, :]
    # Gradient w.r.t. the normalized coefficients, then through the softmax.
    grad_alpha = np.einsum("ehd,ehd->eh", z[src], grad_out[dst])
    weighted = segment_sum_np(alpha * grad_alpha, dst, num_nodes, plan=plan)
    grad_logits = alpha * (grad_alpha - weighted[dst])
    grad_raw = np.where(raw > 0, grad_logits, negative_slope * grad_logits)
    if plan is not None:
        grad_score_dst = plan.segment_sum(grad_raw).astype(score_dst.dtype)
        grad_score_src = plan.segment_sum_src(grad_raw).astype(score_src.dtype)
    else:
        # Source rows are counted separately: on a compacted MFG block the
        # source row space is larger than the destination row space.
        grad_score_dst = segment_sum_np(grad_raw, dst, num_nodes).astype(score_dst.dtype)
        grad_score_src = segment_sum_np(grad_raw, src, z.shape[0]).astype(score_src.dtype)
    return grad_z, grad_score_dst, grad_score_src


class FusedGATAggregation(Function):
    """Autograd wrapper around the fused forward/backward kernels."""

    def forward(self, z: Tensor, score_dst: Tensor, score_src: Tensor,
                src: np.ndarray, dst: np.ndarray, num_nodes: int,
                negative_slope: float, plan: Optional[EdgePlan] = None) -> np.ndarray:
        out = fused_gat_forward_np(
            z.data, score_dst.data, score_src.data, src, dst, num_nodes,
            negative_slope, plan=plan
        )
        # Only node-level arrays are saved; per-edge intermediates are recomputed.
        self.save_for_backward(z.data, score_dst.data, score_src.data, src, dst,
                               num_nodes, negative_slope, plan)
        return out

    def backward(self, grad_out):
        z, score_dst, score_src, src, dst, num_nodes, negative_slope, plan = self.saved
        return fused_gat_backward_np(
            grad_out, z, score_dst, score_src, src, dst, num_nodes, negative_slope,
            plan=plan
        )


class FusedGATConv(GATBase):
    """GAT layer using the fused attention kernel (same parameters as :class:`GATConv`)."""

    #: Distributed graph handles read this flag to select the fused kernel path.
    uses_fused_kernel = True

    def forward(self, graph, x: Tensor) -> Tensor:
        """Apply the layer on a :class:`Graph` or a distributed graph handle."""
        if x.shape[0] != graph.num_nodes:
            raise ValueError(
                f"Feature matrix has {x.shape[0]} rows but graph has {graph.num_nodes} nodes"
            )
        z, score_dst, score_src = self.project(x)
        if isinstance(graph, (Graph, MFGBlock)):
            if isinstance(graph, MFGBlock):
                num_dst = graph.num_dst_nodes
                score_dst = graph.gather_dst(score_dst)
            else:
                num_dst = graph.num_nodes
            aggregated = FusedGATAggregation.apply(
                z, score_dst, score_src, graph.src, graph.dst, num_dst,
                self.negative_slope, graph.plan(),
            )
        else:
            aggregated = graph.gat_aggregate(
                z, score_dst, score_src,
                negative_slope=self.negative_slope,
                fused=True,
            )
        return self.finalize(aggregated)

    def __repr__(self) -> str:
        return (
            f"FusedGATConv(in={self.in_features}, out={self.out_features}, "
            f"heads={self.num_heads})"
        )
