"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

from repro.nn.module import Module, Parameter
from repro.tensor import init
from repro.tensor.tensor import Tensor
from repro.utils.validation import check_positive_int


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    The weight is stored with shape ``(in_features, out_features)`` so the
    forward pass is a plain ``x @ W`` (matching the ``z = W h`` projection in
    the paper's Eq. 1 applied to row-major feature matrices).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 name: Optional[str] = None):
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        label = name or "linear"
        self.weight = Parameter(
            init.xavier_uniform((self.in_features, self.out_features)), name=f"{label}.weight"
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(init.zeros((self.out_features,)), name=f"{label}.bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
