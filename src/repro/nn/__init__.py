"""Neural-network layers and models (the DGL-layers substitute)."""

from repro.nn.module import Module, Parameter, ModuleList, Sequential
from repro.nn.linear import Linear
from repro.nn.activation import ReLU, LeakyReLU, ELU, Sigmoid, Tanh
from repro.nn.dropout import Dropout
from repro.nn.norm import BatchNorm1d, DistributedBatchNorm
from repro.nn.sage import SageConv
from repro.nn.gat import GATConv, GATBase
from repro.nn.gat_fused import FusedGATConv, FusedGATAggregation
from repro.nn.rgcn import RelGraphConv
from repro.nn.models import GraphSageNet, GATNet, RGCNNet

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm1d",
    "DistributedBatchNorm",
    "SageConv",
    "GATConv",
    "GATBase",
    "FusedGATConv",
    "FusedGATAggregation",
    "RelGraphConv",
    "GraphSageNet",
    "GATNet",
    "RGCNNet",
]
