"""Training utilities: trainers, label augmentation, Correct & Smooth, metrics."""

from repro.training.trainer import (
    TrainingConfig,
    TrainingResult,
    EpochRecord,
    FullBatchTrainer,
    DistributedTrainer,
    DistributedTrainingResult,
    distributed_train_worker,
)
from repro.training.label_augmentation import LabelAugmenter, NoLabelAugmenter
from repro.training.correct_and_smooth import CorrectAndSmooth
from repro.training.metrics import (
    masked_accuracy,
    masked_correct_counts,
    distributed_masked_accuracy,
    distributed_mean_loss,
    evaluation_report,
)

__all__ = [
    "TrainingConfig",
    "TrainingResult",
    "EpochRecord",
    "FullBatchTrainer",
    "DistributedTrainer",
    "DistributedTrainingResult",
    "distributed_train_worker",
    "LabelAugmenter",
    "NoLabelAugmenter",
    "CorrectAndSmooth",
    "masked_accuracy",
    "masked_correct_counts",
    "distributed_masked_accuracy",
    "distributed_mean_loss",
    "evaluation_report",
]
