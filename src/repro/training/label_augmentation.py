"""Label augmentation / masked label prediction (Shi et al., 2020).

The paper trains with the label-augmentation scheme of "Masked Label
Prediction": every epoch a random subset of the *training* nodes gets its
ground-truth label appended (one-hot) to its input features, and the loss is
computed on the remaining training nodes.  At inference time all training
nodes carry their label and predictions are read off the val/test nodes.

The augmentation is purely node-local, so it works unchanged in distributed
training: every worker augments its own partition's rows.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive_int, check_probability


class LabelAugmenter:
    """Appends (masked) one-hot labels to node features."""

    def __init__(self, num_classes: int, augment_fraction: float = 0.5):
        self.num_classes = check_positive_int(num_classes, "num_classes")
        self.augment_fraction = check_probability(augment_fraction, "augment_fraction")

    @property
    def extra_features(self) -> int:
        """Number of feature columns the augmentation adds."""
        return self.num_classes

    def augmented_dim(self, feature_dim: int) -> int:
        return feature_dim + self.num_classes

    # ------------------------------------------------------------------ #
    def _append_labels(self, features: np.ndarray, labels: np.ndarray,
                       reveal_mask: np.ndarray) -> np.ndarray:
        onehot = np.zeros((features.shape[0], self.num_classes), dtype=features.dtype)
        revealed = np.where(reveal_mask)[0]
        onehot[revealed, labels[revealed]] = 1.0
        return np.concatenate([features, onehot], axis=1)

    def training_batch(self, features: np.ndarray, labels: np.ndarray,
                       train_mask: np.ndarray,
                       rng: Optional[np.random.Generator] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """One training epoch's augmented features and loss mask.

        Returns ``(augmented_features, predict_mask)`` where ``predict_mask``
        selects the training nodes whose labels were *not* revealed (the loss
        is computed on those).
        """
        rng = rng or np.random.default_rng()
        train_mask = np.asarray(train_mask, dtype=bool)
        reveal_mask = train_mask & (rng.random(len(train_mask)) < self.augment_fraction)
        predict_mask = train_mask & ~reveal_mask
        if train_mask.any() and not predict_mask.any():
            # Degenerate draw: every training node was revealed; hold one back
            # so the loss is never empty.
            held_out = np.where(train_mask)[0][0]
            reveal_mask[held_out] = False
            predict_mask[held_out] = True
        return self._append_labels(features, labels, reveal_mask), predict_mask

    def inference_batch(self, features: np.ndarray, labels: np.ndarray,
                        train_mask: np.ndarray) -> np.ndarray:
        """Inference-time features: all training nodes reveal their label."""
        return self._append_labels(features, labels, np.asarray(train_mask, dtype=bool))


class NoLabelAugmenter:
    """Drop-in replacement that performs no augmentation (keeps trainer code uniform)."""

    def __init__(self, num_classes: int):
        self.num_classes = num_classes

    @property
    def extra_features(self) -> int:
        return 0

    def augmented_dim(self, feature_dim: int) -> int:
        return feature_dim

    def training_batch(self, features, labels, train_mask, rng=None):
        return features, np.asarray(train_mask, dtype=bool)

    def inference_batch(self, features, labels, train_mask):
        return features
