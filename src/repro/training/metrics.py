"""Accuracy / loss metrics for single-machine and distributed evaluation."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed.comm import Communicator
from repro.tensor.tensor import Tensor


def _as_array(logits) -> np.ndarray:
    return logits.data if isinstance(logits, Tensor) else np.asarray(logits)


def masked_accuracy(logits, labels: np.ndarray, mask: np.ndarray) -> float:
    """Accuracy of ``argmax(logits)`` restricted to ``mask`` (NaN if mask empty)."""
    data = _as_array(logits)
    labels = np.asarray(labels)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() == 0:
        return float("nan")
    predictions = data[mask].argmax(axis=1)
    return float((predictions == labels[mask]).mean())


def masked_correct_counts(logits, labels: np.ndarray, mask: np.ndarray) -> tuple[int, int]:
    """Return ``(correct, total)`` over the masked rows."""
    data = _as_array(logits)
    labels = np.asarray(labels)
    mask = np.asarray(mask, dtype=bool)
    total = int(mask.sum())
    if total == 0:
        return 0, 0
    correct = int((data[mask].argmax(axis=1) == labels[mask]).sum())
    return correct, total


def distributed_masked_accuracy(logits, labels: np.ndarray, mask: np.ndarray,
                                comm: Communicator) -> float:
    """Global accuracy over a row-partitioned prediction matrix.

    Each worker passes its local rows; correct/total counts are all-reduced so
    every worker returns the identical global accuracy.
    """
    correct, total = masked_correct_counts(logits, labels, mask)
    reduced = comm.allreduce(np.asarray([correct, total], dtype=np.float64),
                             op="sum", tag="metrics")
    if reduced[1] == 0:
        return float("nan")
    return float(reduced[0] / reduced[1])


def distributed_mean_loss(local_loss_sum: float, local_count: int,
                          comm: Communicator) -> float:
    """Global mean loss from per-worker summed losses and counts."""
    reduced = comm.allreduce(np.asarray([local_loss_sum, float(local_count)], dtype=np.float64),
                             op="sum", tag="metrics")
    if reduced[1] == 0:
        return float("nan")
    return float(reduced[0] / reduced[1])


def evaluation_report(logits, labels: np.ndarray, masks: Dict[str, np.ndarray],
                      comm: Optional[Communicator] = None) -> Dict[str, float]:
    """Accuracy for every named mask (``{"train": …, "val": …, "test": …}``)."""
    report = {}
    for name, mask in masks.items():
        if comm is None:
            report[name] = masked_accuracy(logits, labels, mask)
        else:
            report[name] = distributed_masked_accuracy(logits, labels, mask, comm)
    return report
