"""Correct & Smooth post-processing (Huang et al., 2020).

The paper runs C&S on the trained model's soft predictions to squeeze out an
extra accuracy point or two (Table 1), and notes that it is implemented
"within the same framework as SAR" because both C&S stages are plain
non-learnable message propagation — the same neighbourhood aggregation SAR
already performs, minus trainable parameters and a backward pass.

The implementation below therefore only needs a *propagate* primitive:

* on a single-machine :class:`~repro.graph.graph.Graph` it is a sparse
  mat-vec with the symmetric-normalized adjacency;
* on a :class:`~repro.core.dist_graph.DistributedGraph` it is the handle's
  ``propagate`` method (sequential halo fetches, no autograd).

Stages (per the original paper):

1. **Correct** — propagate the residual error on the training nodes through
   the graph and add a scaled version of it to the soft predictions.
2. **Smooth**  — clamp the training rows to their ground-truth one-hot labels
   and run label propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import check_positive_int, check_probability


def _softmax_rows(values: np.ndarray) -> np.ndarray:
    shifted = values - values.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.maximum(exp.sum(axis=1, keepdims=True), np.finfo(values.dtype).tiny)


def _propagate(graph, values: np.ndarray) -> np.ndarray:
    """One step of symmetric-normalized propagation on either graph type."""
    if isinstance(graph, Graph):
        adj = graph.adjacency(normalization="sym")
        return np.asarray(adj @ values)
    return graph.propagate(values, normalization="sym")


@dataclass
class CorrectAndSmooth:
    """Configurable C&S post-processor.

    Parameters mirror the original paper's: the number of propagation
    iterations and the mixing coefficient ``alpha`` for each stage, plus
    ``autoscale`` to scale corrections by the mean training-error magnitude.
    """

    num_correct_iters: int = 20
    correct_alpha: float = 0.8
    num_smooth_iters: int = 20
    smooth_alpha: float = 0.8
    autoscale: bool = True

    def __post_init__(self):
        check_positive_int(self.num_correct_iters, "num_correct_iters")
        check_positive_int(self.num_smooth_iters, "num_smooth_iters")
        check_probability(self.correct_alpha, "correct_alpha")
        check_probability(self.smooth_alpha, "smooth_alpha")

    # ------------------------------------------------------------------ #
    def correct(self, graph, soft_predictions: np.ndarray, labels: np.ndarray,
                train_mask: np.ndarray) -> np.ndarray:
        """Stage 1: propagate the training-node residual errors."""
        train_mask = np.asarray(train_mask, dtype=bool)
        num_classes = soft_predictions.shape[1]
        error = np.zeros_like(soft_predictions)
        if train_mask.any():
            onehot = np.eye(num_classes, dtype=soft_predictions.dtype)[labels[train_mask]]
            error[train_mask] = onehot - soft_predictions[train_mask]
        residual = error.copy()
        for _ in range(self.num_correct_iters):
            residual = (
                self.correct_alpha * _propagate(graph, residual)
                + (1.0 - self.correct_alpha) * error
            )
        if self.autoscale:
            error_norm = float(np.abs(error[train_mask]).sum()) if train_mask.any() else 0.0
            train_count = float(train_mask.sum())
            if not isinstance(graph, Graph) and hasattr(graph, "comm"):
                # Distributed: the scale must be computed over the *global*
                # training set so every worker applies the same correction.
                reduced = graph.comm.allreduce(
                    np.asarray([error_norm, train_count], dtype=np.float64),
                    op="sum", tag="correct_and_smooth",
                )
                error_norm, train_count = float(reduced[0]), float(reduced[1])
            if train_count > 0:
                scale = error_norm / train_count
                denom = np.maximum(np.abs(residual).sum(axis=1, keepdims=True), 1e-9)
                correction = scale * residual / denom * num_classes
            else:
                correction = residual
        else:
            correction = residual
        return soft_predictions + correction

    def smooth(self, graph, corrected: np.ndarray, labels: np.ndarray,
               train_mask: np.ndarray) -> np.ndarray:
        """Stage 2: label propagation with training rows clamped to ground truth."""
        train_mask = np.asarray(train_mask, dtype=bool)
        num_classes = corrected.shape[1]
        base = corrected.copy()
        if train_mask.any():
            base[train_mask] = np.eye(num_classes, dtype=corrected.dtype)[labels[train_mask]]
        smoothed = base.copy()
        for _ in range(self.num_smooth_iters):
            smoothed = (
                self.smooth_alpha * _propagate(graph, smoothed)
                + (1.0 - self.smooth_alpha) * base
            )
        return smoothed

    # ------------------------------------------------------------------ #
    def __call__(self, graph, logits: np.ndarray, labels: np.ndarray,
                 train_mask: np.ndarray) -> np.ndarray:
        """Run both stages on raw logits; returns refined class scores."""
        soft = _softmax_rows(np.asarray(logits, dtype=np.float32))
        corrected = self.correct(graph, soft, labels, train_mask)
        return self.smooth(graph, corrected, labels, train_mask)
