"""Full-batch trainers: single-machine reference and distributed (SAR / DP).

The distributed trainer follows the recipe of the paper's Section 4.2:

* the graph is partitioned with the METIS-substitute partitioner and every
  worker receives its shard (features, labels, masks, edge blocks);
* each worker holds a full replica of the model, runs a full-batch forward /
  backward pass over its partition every epoch through a
  :class:`~repro.core.dist_graph.DistributedGraph` handle, and synchronizes
  parameter gradients with one allreduce at the end of the iteration;
* optional label augmentation (masked label prediction) and a final
  Correct & Smooth post-processing stage, both of which the paper uses for
  its Table-1 accuracies;
* training for ``num_epochs`` with a decaying learning rate.

The single-machine :class:`FullBatchTrainer` exists both as the correctness
reference (distributed training must produce the same numbers) and as the
baseline used in the single-host fused-attention benchmark.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SARConfig, SAR
from repro.core.dist_graph import DistributedGraph, DistributedHeteroGraph
from repro.core.grad_sync import broadcast_parameters, sync_gradients
from repro.datasets.synthetic import (
    HeteroNodeClassificationDataset,
    NodeClassificationDataset,
)
from repro.distributed.cluster import ClusterRunResult, SimulatedCluster
from repro.distributed.comm import Communicator
from repro.graph.hetero import HeteroGraph
from repro.graph.mfg import (
    build_hetero_mfg_pipeline,
    build_mfg_pipeline,
    message_flow_masks,
)
from repro.nn.module import Module
from repro.partition.book import PartitionBook
from repro.partition.partitioner import partition_graph
from repro.partition.shard import create_hetero_shards, create_shards
from repro.sample.distributed import (
    DistributedNeighborSampler,
    DistributedSamplingPlan,
    build_sampling_plan,
)
from repro.sample.inference import (
    LayerWiseInference,
    distributed_layerwise_logits,
)
from repro.sample.loader import (
    MiniBatchDataLoader,
    NeighborSamplingConfig,
    epoch_seed_order,
)
from repro.sample.neighbor import NeighborSampler
from repro.store import FeatureStore, as_feature_store
from repro.tensor import functional as F
from repro.tensor import no_grad
from repro.tensor.optim import (
    Adam,
    CosineDecay,
    LRScheduler,
    SparseAdam,
    SparseSGD,
    StepDecay,
)
from repro.tensor.tensor import Tensor
from repro.training.correct_and_smooth import CorrectAndSmooth
from repro.training.label_augmentation import LabelAugmenter, NoLabelAugmenter
from repro.training.metrics import (
    distributed_mean_loss,
    evaluation_report,
    masked_accuracy,
)
from repro.utils.logging import get_logger
from repro.utils.seed import temp_seed
from repro.utils.timing import Timer, WorkerTimer

logger = get_logger("training")

ModelFactory = Callable[[int], Module]


# --------------------------------------------------------------------------- #
# configuration / results
# --------------------------------------------------------------------------- #
@dataclass
class TrainingConfig:
    """Hyperparameters shared by the single-machine and distributed trainers.

    A config fully determines a run: with the same config (and dataset /
    model factory), a single-machine run and an ``N``-worker distributed run
    execute the same epoch structure, and — when :attr:`sampler` is set — the
    identical mini-batch sequence (the sampler's counter-based determinism).
    Execution-path switches (:attr:`mfg_seeds`, :attr:`sampler`,
    :attr:`eval_inference`) change *how* numbers are computed, not the model
    or loss definitions; see each field's note for its exactness guarantee.
    """

    num_epochs: int = 100
    lr: float = 0.01
    weight_decay: float = 0.0
    lr_schedule: str = "cosine"  # "cosine" | "step" | "none"
    lr_step_size: int = 30
    lr_gamma: float = 0.5
    label_augmentation: bool = False
    label_augment_fraction: float = 0.5
    correct_and_smooth: bool = False
    cs_params: CorrectAndSmooth = field(default_factory=CorrectAndSmooth)
    eval_every: int = 0  # 0 = evaluate only after the final epoch
    seed: int = 0
    verbose: bool = False
    #: Seed node ids for MFG-restricted training (paper Appendix B).  When
    #: set, each training epoch only computes the rows inside the seed set's
    #: receptive field — the loss is evaluated over these seeds — while
    #: evaluation still runs over the full graph.  ``None`` disables the
    #: restriction.  Note that batch normalization computes its statistics
    #: over whichever rows a layer produces, so restricted and full training
    #: only match exactly for models without batch norm.
    mfg_seeds: Optional[Sequence[int]] = None
    #: Mini-batch neighbour-sampled training
    #: (:class:`~repro.sample.loader.NeighborSamplingConfig`).  When set, each
    #: epoch shuffles the training seeds, samples per-layer neighbourhoods per
    #: batch, and takes one optimizer step per batch; evaluation still scores
    #: the full graph.  Mutually exclusive with :attr:`mfg_seeds`.  The
    #: sampler seed defaults to :attr:`seed`, so single-machine and
    #: distributed runs with the same config train the same batch sequence.
    sampler: Optional[NeighborSamplingConfig] = None
    #: How evaluation computes its logits: ``"full"`` runs one full-graph
    #: forward pass; ``"layerwise"`` runs the layer-wise full-neighbourhood
    #: inference engine (:mod:`repro.sample.inference`) — bit-identical
    #: logits on a single machine, with peak memory bounded by two full-width
    #: layer matrices plus one batch instead of the whole multi-layer forward.
    eval_inference: str = "full"
    #: Destination nodes per layer-wise inference batch (``eval_inference=
    #: "layerwise"``); identical on every worker in distributed runs.
    eval_batch_size: int = 1024
    #: Feature backend.  Single-machine: a :class:`~repro.store.FeatureStore`
    #: instance (or a plain matrix) replacing ``dataset.features`` — a
    #: read-only store is gathered per batch, a *trainable* store
    #: (:class:`~repro.store.SparseEmbeddingStore`) is gathered through
    #: autograd and updated by a sparse optimizer stepping alongside the
    #: model's (featureless-graph training).  Distributed: the string
    #: ``"kv"`` makes every worker wrap its shard's rows in a
    #: :class:`~repro.store.PartitionedKVStore` and attach it to the graph
    #: handle, so layer-0 halo fetches route through the hot-row cache.
    #: Mutually exclusive with :attr:`label_augmentation` (which rewrites the
    #: feature matrix every epoch) and :attr:`mfg_seeds`.
    feature_store: Optional[Any] = None
    #: Hot-row cache budget for the distributed ``"kv"`` store.
    feature_store_cache_bytes: Optional[int] = 1 << 22
    #: Optimizer family for a *trainable* feature store: ``"adam"``
    #: (:class:`~repro.tensor.optim.SparseAdam`) or ``"sgd"``.
    feature_store_optimizer: str = "adam"
    #: Learning rate for the trainable store (``None`` = :attr:`lr`).
    feature_store_lr: Optional[float] = None

    def resolved_sampler_seed(self) -> int:
        """The seed the neighbour sampler actually draws under."""
        if self.sampler is not None and self.sampler.seed is not None:
            return int(self.sampler.seed)
        return int(self.seed)

    def build_scheduler(self, optimizer) -> Optional[LRScheduler]:
        if self.lr_schedule == "cosine":
            return CosineDecay(optimizer, total_epochs=self.num_epochs)
        if self.lr_schedule == "step":
            return StepDecay(optimizer, step_size=self.lr_step_size, gamma=self.lr_gamma)
        if self.lr_schedule == "none":
            return None
        raise ValueError(f"Unknown lr_schedule {self.lr_schedule!r}")


@dataclass
class EpochRecord:
    """Per-epoch measurements (identical on every worker in distributed runs)."""

    epoch: int
    loss: float
    lr: float
    train_time_s: float
    train_accuracy: float = float("nan")
    val_accuracy: float = float("nan")
    test_accuracy: float = float("nan")


@dataclass
class TrainingResult:
    """Training curve plus final / best accuracies."""

    records: List[EpochRecord]
    final_accuracies: Dict[str, float]
    cs_accuracies: Optional[Dict[str, float]] = None

    @property
    def final_test_accuracy(self) -> float:
        return self.final_accuracies.get("test", float("nan"))

    @property
    def final_val_accuracy(self) -> float:
        return self.final_accuracies.get("val", float("nan"))

    @property
    def num_epochs(self) -> int:
        return len(self.records)

    @property
    def mean_epoch_time_s(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.train_time_s for r in self.records]))

    def accuracy_curve(self) -> List[tuple[int, float]]:
        """(epoch, test accuracy) pairs for epochs where evaluation ran."""
        return [(r.epoch, r.test_accuracy) for r in self.records
                if not np.isnan(r.test_accuracy)]

    def losses(self) -> List[float]:
        return [r.loss for r in self.records]


@dataclass
class DistributedTrainingResult:
    """Result of a distributed run: the training curve plus cluster measurements."""

    training: TrainingResult
    cluster: ClusterRunResult
    world_size: int
    sar_config: SARConfig


# --------------------------------------------------------------------------- #
# shared epoch helpers
# --------------------------------------------------------------------------- #
def _make_augmenter(config: TrainingConfig, num_classes: int):
    if config.label_augmentation:
        return LabelAugmenter(num_classes, augment_fraction=config.label_augment_fraction)
    return NoLabelAugmenter(num_classes)


def _sampled_num_layers(config: TrainingConfig, model_num_layers: Optional[int]) -> int:
    """Validate the sampler config against the model's conv-layer count."""
    assert config.sampler is not None
    if config.mfg_seeds is not None:
        raise ValueError("sampler and mfg_seeds are mutually exclusive")
    if model_num_layers is None:
        raise ValueError(
            "sampler requires a model exposing num_layers (one fanout per conv layer)"
        )
    if len(config.sampler.fanouts) != model_num_layers:
        raise ValueError(
            f"sampler.fanouts names {len(config.sampler.fanouts)} layers but the "
            f"model has {model_num_layers} conv layers"
        )
    return model_num_layers


def _check_store_config(config: TrainingConfig) -> None:
    """The combinations a feature store cannot coexist with."""
    if config.label_augmentation:
        raise ValueError(
            "feature_store and label_augmentation are mutually exclusive "
            "(augmentation rewrites the feature matrix every epoch)"
        )
    if config.mfg_seeds is not None:
        raise ValueError("feature_store and mfg_seeds are not supported together")


def _build_sparse_optimizer(config: TrainingConfig, store):
    """The sparse optimizer a trainable feature store trains under."""
    lr = config.feature_store_lr if config.feature_store_lr is not None else config.lr
    if config.feature_store_optimizer == "adam":
        return SparseAdam(store, lr=lr)
    if config.feature_store_optimizer == "sgd":
        return SparseSGD(store, lr=lr, weight_decay=config.weight_decay)
    raise ValueError(
        f"feature_store_optimizer must be 'adam' or 'sgd', got "
        f"{config.feature_store_optimizer!r}"
    )


def _local_loss(logits: Tensor, labels: np.ndarray, predict_mask: np.ndarray) -> Tensor:
    """Summed cross-entropy over the masked rows.

    When a worker's partition contains no loss nodes this epoch, a zero loss
    that still depends on the logits is returned so the backward pass (and
    therefore the collective gradient exchange) runs on every worker.
    """
    predict_mask = np.asarray(predict_mask, dtype=bool)
    if predict_mask.any():
        return F.cross_entropy(logits[predict_mask], labels[predict_mask], reduction="sum")
    return logits.sum() * 0.0


# --------------------------------------------------------------------------- #
# single-machine trainer
# --------------------------------------------------------------------------- #
class FullBatchTrainer:
    """Full-batch training of a model on a single (non-partitioned) graph."""

    def __init__(self, model: Module, dataset: NodeClassificationDataset,
                 config: Optional[TrainingConfig] = None,
                 graph: Optional[Any] = None):
        self.model = model
        self.dataset = dataset
        self.config = config or TrainingConfig()
        if graph is not None:
            self.graph = graph
        elif isinstance(dataset, HeteroNodeClassificationDataset) and dataset.hetero_graph is not None:
            self.graph = dataset.hetero_graph
        else:
            self.graph = dataset.graph
        self.augmenter = _make_augmenter(self.config, dataset.num_classes)
        self.feature_store: Optional[FeatureStore] = None
        self.sparse_optimizer = None
        self.sparse_scheduler: Optional[LRScheduler] = None
        if self.config.feature_store is not None:
            if isinstance(self.config.feature_store, str):
                raise ValueError(
                    "string feature_store modes (e.g. 'kv') are distributed-"
                    "only; single-machine training takes a FeatureStore "
                    "instance (or a feature matrix)"
                )
            _check_store_config(self.config)
            if isinstance(self.graph, HeteroGraph):
                raise ValueError("feature_store supports homogeneous graphs only")
            store = as_feature_store(self.config.feature_store)
            if store.num_rows != self.graph.num_nodes:
                raise ValueError(
                    f"feature_store has {store.num_rows} rows but the graph "
                    f"has {self.graph.num_nodes} nodes"
                )
            self.feature_store = store
            if store.trainable:
                self.sparse_optimizer = _build_sparse_optimizer(self.config, store)
        self.optimizer = Adam(model.parameters(), lr=self.config.lr,
                              weight_decay=self.config.weight_decay)
        self.scheduler = self.config.build_scheduler(self.optimizer)
        if self.sparse_optimizer is not None:
            self.sparse_scheduler = self.config.build_scheduler(self.sparse_optimizer)
        self._rng = np.random.default_rng(self.config.seed)
        self._inference_engine: Optional[LayerWiseInference] = None
        self.sample_loader: Optional[MiniBatchDataLoader] = None
        if self.config.sampler is not None:
            scfg = self.config.sampler
            _sampled_num_layers(self.config, getattr(model, "num_layers", None))
            sampler = NeighborSampler(
                self.graph, scfg.fanouts, replace=scfg.replace,
                seed=self.config.resolved_sampler_seed(),
            )
            self.sample_loader = MiniBatchDataLoader(
                sampler, dataset.train_indices(), batch_size=scfg.batch_size,
                shuffle=scfg.shuffle, drop_last=scfg.drop_last,
                num_workers=scfg.num_workers,
                max_resident=scfg.max_resident_batches,
            )
        self.mfg_pipeline = None
        if self.config.mfg_seeds is not None:
            num_layers = getattr(model, "num_layers", None)
            if num_layers is None:
                raise ValueError(
                    "mfg_seeds requires a model exposing num_layers (one compacted "
                    "block is built per conv layer)"
                )
            if isinstance(self.graph, HeteroGraph):
                self.mfg_pipeline = build_hetero_mfg_pipeline(
                    self.graph, self.config.mfg_seeds, num_layers
                )
            else:
                self.mfg_pipeline = build_mfg_pipeline(
                    self.graph, self.config.mfg_seeds, num_layers
                )

    # ------------------------------------------------------------------ #
    def train(self) -> TrainingResult:
        config, dataset = self.config, self.dataset
        records: List[EpochRecord] = []
        for epoch in range(1, config.num_epochs + 1):
            timer = Timer().start()
            self.model.train()
            if self.feature_store is not None:
                # The store replaces the dataset features outright (label
                # augmentation is rejected at construction, so the loss mask
                # is simply the training mask).
                features: Any = self.feature_store
                predict_mask = np.asarray(dataset.train_mask, dtype=bool)
            else:
                features, predict_mask = self.augmenter.training_batch(
                    dataset.features, dataset.labels, dataset.train_mask, self._rng
                )
            if self.sample_loader is not None:
                mean_loss = self._sampled_epoch(features, predict_mask, epoch)
            else:
                if self.mfg_pipeline is not None:
                    # Restricted epoch: only the receptive field of the seed set
                    # is computed; the logits rows are exactly the (sorted) seeds.
                    out_nodes = self.mfg_pipeline.output_nodes
                    logits = self.model(self.mfg_pipeline,
                                        Tensor(self.mfg_pipeline.gather_inputs(features)))
                    labels = dataset.labels[out_nodes]
                    predict_mask = np.asarray(predict_mask)[out_nodes]
                else:
                    logits = self.model(self.graph, self._full_inputs(features))
                    labels = dataset.labels
                loss = _local_loss(logits, labels, predict_mask)
                count = max(int(np.asarray(predict_mask).sum()), 1)
                self._optimize_step(loss, count)
                mean_loss = float(loss.data) / count
            lr = self.scheduler.step() if self.scheduler else self.optimizer.lr
            if self.sparse_scheduler is not None:
                self.sparse_scheduler.step()
            elapsed = timer.stop()

            record = EpochRecord(epoch=epoch, loss=mean_loss, lr=lr,
                                 train_time_s=elapsed)
            if config.eval_every and (epoch % config.eval_every == 0 or epoch == config.num_epochs):
                accs, _ = self.evaluate()
                record.train_accuracy = accs["train"]
                record.val_accuracy = accs["val"]
                record.test_accuracy = accs["test"]
                if config.verbose:
                    logger.info("epoch %d loss %.4f val %.4f test %.4f",
                                epoch, record.loss, record.val_accuracy, record.test_accuracy)
            records.append(record)

        final_accs, logits = self.evaluate()
        cs_accs = None
        if config.correct_and_smooth:
            refined = config.cs_params(dataset.graph, logits, dataset.labels, dataset.train_mask)
            cs_accs = {
                name: masked_accuracy(refined, dataset.labels, mask)
                for name, mask in (("train", dataset.train_mask), ("val", dataset.val_mask),
                                   ("test", dataset.test_mask))
            }
        return TrainingResult(records=records, final_accuracies=final_accs,
                              cs_accuracies=cs_accs)

    # ------------------------------------------------------------------ #
    def _full_inputs(self, features) -> Tensor:
        """Layer-0 inputs for a full-graph forward pass.

        A trainable store is gathered through autograd (so backward scatters
        per-row gradients into it); everything else yields a plain Tensor.
        """
        store = self.feature_store
        if store is None:
            return Tensor(features)
        if store.trainable:
            return store.gather_tensor(None)
        return Tensor(store.gather(None))

    def _optimize_step(self, loss: Tensor, count: int) -> None:
        """Backward + mean-scaled gradients + one optimizer step."""
        self.model.zero_grad()
        if self.sparse_optimizer is not None:
            self.sparse_optimizer.zero_grad()
        loss.backward()
        for param in self.model.parameters():
            if param.grad is not None:
                param.grad /= count
        self.optimizer.step()
        if self.sparse_optimizer is not None:
            # The same mean-loss scaling the dense parameters got above.
            self.sparse_optimizer.step(grad_scale=1.0 / count)

    def _sampled_epoch(self, features, predict_mask: np.ndarray,
                       epoch: int) -> float:
        """One neighbour-sampled epoch: a step per mini-batch; returns mean loss."""
        dataset = self.dataset
        predict_mask = np.asarray(predict_mask, dtype=bool)
        total_loss = 0.0
        total_count = 0
        store = self.feature_store
        trainable = store is not None and store.trainable
        # Hand the epoch's features (matrix or store) to the loader so its
        # feature-fetch stage pre-gathers each batch's input rows off the
        # training thread.  Trainable stores are exempt from prefetch (the
        # loader skips them): their gather must record autograd state on the
        # training thread, right here.
        self.sample_loader.set_features(features)
        for batch in self.sample_loader.iter_epoch(epoch):
            if trainable:
                x = store.gather_tensor(batch.pipeline.input_nodes)
            else:
                x = Tensor(batch.input_features(features))
            logits = self.model(batch.pipeline, x)
            mask = predict_mask[batch.seeds]
            loss = _local_loss(logits, dataset.labels[batch.seeds], mask)
            count = int(mask.sum())
            self._optimize_step(loss, max(count, 1))
            total_loss += float(loss.data)
            total_count += count
        return total_loss / max(total_count, 1)

    # ------------------------------------------------------------------ #
    def _layerwise_engine(self, batch_size: int) -> LayerWiseInference:
        """The cached layer-wise inference engine (rebuilt when sizes change).

        Caching keeps the sampler, loader, and — through the structural plan
        cache — the per-batch edge plans alive across evaluation calls, so
        repeated evaluations never re-derive sparsity.
        """
        engine = self._inference_engine
        if engine is None or engine.batch_size != batch_size:
            engine = LayerWiseInference(self.model, self.graph, batch_size=batch_size)
            self._inference_engine = engine
        return engine

    def evaluate(self, inference: Optional[str] = None,
                 batch_size: Optional[int] = None) -> tuple[Dict[str, float], np.ndarray]:
        """Accuracies on train/val/test plus the raw ``(num_nodes, C)`` logits.

        Parameters
        ----------
        inference:
            ``"full"`` (one full-graph forward pass) or ``"layerwise"`` (the
            layer-wise full-neighbourhood engine of
            :mod:`repro.sample.inference`: layer ``l`` is computed for all
            nodes batch-by-batch before layer ``l + 1``, so no full-graph
            forward is ever materialized).  Both produce bit-identical
            logits; ``None`` falls back to
            :attr:`TrainingConfig.eval_inference`.
        batch_size:
            Layer-wise batch size override (default
            :attr:`TrainingConfig.eval_batch_size`).
        """
        mode = inference if inference is not None else self.config.eval_inference
        if mode not in ("full", "layerwise"):
            raise ValueError(f"inference must be 'full' or 'layerwise', got {mode!r}")
        dataset = self.dataset
        self.model.eval()
        with no_grad():
            if self.feature_store is not None:
                # A trainable store's gather(None) is its current table; a
                # read-only store's is the backing matrix — either way the
                # store *is* the feature source at evaluation time too.
                features = self.feature_store.gather(None)
            else:
                features = self.augmenter.inference_batch(
                    dataset.features, dataset.labels, dataset.train_mask
                )
            if mode == "layerwise":
                engine = self._layerwise_engine(
                    batch_size if batch_size is not None else self.config.eval_batch_size
                )
                logits = engine.run(features)
            else:
                logits = self.model(self.graph, Tensor(features)).data
        masks = {"train": dataset.train_mask, "val": dataset.val_mask,
                 "test": dataset.test_mask}
        report = evaluation_report(logits, dataset.labels, masks)
        self.model.train()
        return report, logits


# --------------------------------------------------------------------------- #
# distributed trainer
# --------------------------------------------------------------------------- #
def _build_distributed_graph(shard, comm: Communicator, sar_config: SARConfig):
    if hasattr(shard, "relation_blocks"):
        return DistributedHeteroGraph(shard, comm, sar_config)
    return DistributedGraph(shard, comm, sar_config)


def _distributed_evaluate(dist_graph, model: Module, augmenter, features: np.ndarray,
                          labels: np.ndarray, masks: Dict[str, np.ndarray],
                          comm: Communicator, inference: str = "full",
                          eval_batch_size: int = 1024
                          ) -> tuple[Dict[str, float], np.ndarray]:
    """Evaluate every local row (collective call).

    ``inference="full"`` runs one unrestricted full-graph forward pass;
    ``"layerwise"`` computes each layer for all nodes batch-by-batch with
    per-batch halo fetches (:func:`repro.sample.inference.
    distributed_layerwise_logits`), so no worker ever materializes a
    full-graph forward.  Either way any installed MFG/sampling restriction is
    suspended for the duration.  Heterogeneous handles always run the full
    pass (the restriction machinery is homogeneous-only).
    """
    if inference not in ("full", "layerwise"):
        raise ValueError(f"inference must be 'full' or 'layerwise', got {inference!r}")
    model.eval()
    with no_grad():
        augmented = augmenter.inference_batch(features, labels, masks["train"])
    if inference == "layerwise" and isinstance(dist_graph, DistributedGraph):
        logits_data = distributed_layerwise_logits(
            dist_graph, model, augmented, batch_size=eval_batch_size
        )
    else:
        # Evaluation scores every row, so any MFG restriction is lifted for
        # the duration of the inference pass.
        restricted = getattr(dist_graph, "mfg_active", False)
        if restricted:
            dist_graph.set_mfg_active(False)
        try:
            dist_graph.begin_step()
            with no_grad():
                logits_data = model(dist_graph, Tensor(augmented)).data
        finally:
            if restricted:
                dist_graph.set_mfg_active(True)
    report = evaluation_report(logits_data, labels, masks, comm)
    model.train()
    return report, logits_data


def _distributed_sampled_epoch(dist_graph, sampler: DistributedNeighborSampler,
                               plan: DistributedSamplingPlan, model: Module,
                               optimizer, augmented: np.ndarray,
                               labels: np.ndarray, predict_mask: np.ndarray,
                               epoch: int, comm: Communicator) -> float:
    """One cooperative sampled epoch on one worker; returns the global mean loss.

    Every batch is a collective: all workers derive the identical global
    batch (same shuffle stream), sample their owned share of each layer,
    install the sampled per-layer block grids (shrunken halo exchanges), and
    take one gradient-synchronized optimizer step.

    With ``plan.overlap`` (the default), batch b+1's cooperative sampling —
    the per-layer ``sample_frontier`` allgathers included — runs on a
    background thread while batch b computes, so its wire time hides behind
    the forward/backward pass (the cost model accounts this under
    ``SAMPLING_OVERLAP_TAGS``).  The keyed, barrier-free frontier collectives
    (:meth:`Communicator.allgather_keyed`) make this safe: the sampling
    thread never touches the barrier or the collective counters the main
    thread's halo exchanges and allreduces rely on.  Block *installation*
    (which builds barrier-based halo exchanges) stays on the main thread.
    Overlap never changes what is sampled — only when the sampling happens.
    """
    order = epoch_seed_order(plan.seed, plan.train_seed_ids, epoch, plan.shuffle)
    predict_mask = np.asarray(predict_mask, dtype=bool)
    batch_mask = np.zeros(dist_graph.num_total_nodes, dtype=bool)
    total_loss = 0.0
    total_count = 0

    def _sample(index: int):
        batch_ids = order[index * plan.batch_size:(index + 1) * plan.batch_size]
        return batch_ids, sampler.sample_blocks(batch_ids, epoch, index)

    overlap = plan.overlap and plan.num_batches > 1
    executor = None
    ahead = None
    if overlap:
        executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="sample-ahead")
        ahead = executor.submit(_sample, 0)
    try:
        for index in range(plan.num_batches):
            if overlap:
                batch_ids, blocks = ahead.result()
                if index + 1 < plan.num_batches:
                    ahead = executor.submit(_sample, index + 1)
            else:
                batch_ids, blocks = _sample(index)
            dist_graph.begin_step()
            dist_graph.install_restricted_layers(blocks, name="smp",
                                                 recompute_in_degrees=True)
            batch_mask[:] = False
            batch_mask[batch_ids] = True
            mask = predict_mask & batch_mask[dist_graph.global_node_ids]
            logits = model(dist_graph, Tensor(augmented))
            loss = _local_loss(logits, labels, mask)
            local_count = int(mask.sum())
            model.zero_grad()
            loss.backward()
            global_count = comm.allreduce_scalar(float(local_count))
            sync_gradients(model.parameters(), comm, scale=1.0 / max(global_count, 1.0))
            optimizer.step()
            total_loss += float(loss.data)
            total_count += local_count
    finally:
        # Every submitted future was consumed on the success path, so this
        # never waits there; on failure it abandons the in-flight sample
        # rather than blocking on a possibly-stuck collective.
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
    dist_graph.clear_restriction()
    totals = comm.allreduce(np.asarray([total_loss, float(total_count)], dtype=np.float64))
    # The allreduce above is a barrier: every rank has finished the epoch's
    # sampling, so the last stream payload is provably consumed everywhere.
    sampler.release()
    return float(totals[0]) / max(float(totals[1]), 1.0)


def distributed_train_worker(rank: int, comm: Communicator, shard, *,
                             model_factory: ModelFactory, feature_dim: int,
                             num_classes: int, config: TrainingConfig,
                             sar_config: SARConfig,
                             mfg_masks: Optional[Sequence[np.ndarray]] = None,
                             sampling: Optional[DistributedSamplingPlan] = None
                             ) -> Dict[str, Any]:
    """Per-worker training loop (executed by the simulated cluster).

    ``mfg_masks`` are the global per-layer required-node masks computed by the
    driver (:class:`DistributedTrainer`) when ``config.mfg_seeds`` is set:
    training epochs run with per-layer restricted blocks (smaller halo
    fetches), evaluation temporarily lifts the restriction so every row's
    logits exist.

    ``sampling`` (from ``config.sampler``) switches the worker to cooperative
    neighbour-sampled mini-batch training: per batch, the workers sample
    their owned share of the per-layer neighbourhoods, install the sampled
    block grids, and step the optimizer once — the halo exchange each batch
    covers only sampled sources.  Evaluation always runs unrestricted.
    """
    dist_graph = _build_distributed_graph(shard, comm, sar_config)
    if mfg_masks is not None:
        if not isinstance(dist_graph, DistributedGraph):
            raise ValueError("MFG-restricted training supports homogeneous graphs only")
        dist_graph.enable_mfg(mfg_masks)
    sampler: Optional[DistributedNeighborSampler] = None
    if sampling is not None:
        if mfg_masks is not None:
            raise ValueError("sampler and mfg_seeds are mutually exclusive")
        if not isinstance(dist_graph, DistributedGraph):
            raise ValueError("sampled distributed training supports homogeneous graphs only")
        sampler = DistributedNeighborSampler(sampling, shard.book, comm)
    feature_store = None
    if config.feature_store is not None:
        if config.feature_store != "kv":
            raise ValueError(
                "distributed training takes feature_store='kv' (each worker "
                f"wraps its shard's rows) or None, got {config.feature_store!r}"
            )
        _check_store_config(config)
        if not isinstance(dist_graph, DistributedGraph):
            raise ValueError("feature_store='kv' supports homogeneous graphs only")
        # Every worker constructs (and publishes) its store here — same
        # program point on every rank, the collective setup discipline the
        # store requires.  Attaching it routes layer-0 halo fetches through
        # the hot-row cache (the published payload is the shard's feature
        # matrix, which the store covers()).
        feature_store = shard.feature_store(
            comm, cache_bytes=config.feature_store_cache_bytes
        )
        dist_graph.attach_feature_store(feature_store)
    augmenter = _make_augmenter(config, num_classes)
    model = model_factory(augmenter.augmented_dim(feature_dim))
    if hasattr(model, "set_comm"):
        model.set_comm(comm)
    broadcast_parameters(model.parameters(), comm)
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    scheduler = config.build_scheduler(optimizer)

    features = shard.node_data["feat"]
    labels = shard.node_data["label"]
    masks = {
        "train": shard.node_data["train_mask"],
        "val": shard.node_data["val_mask"],
        "test": shard.node_data["test_mask"],
    }
    seed_mask_local = None
    if mfg_masks is not None:
        # Under MFG restriction only the seed rows carry trustworthy logits;
        # the per-epoch loss mask is clipped to them.
        seed_mask_local = np.asarray(mfg_masks[-1], dtype=bool)[shard.global_node_ids]
    rng = np.random.default_rng(config.seed * 100_003 + rank)
    records: List[EpochRecord] = []

    for epoch in range(1, config.num_epochs + 1):
        timer = WorkerTimer().start()
        model.train()
        augmented, predict_mask = augmenter.training_batch(
            features, labels, masks["train"], rng
        )
        if sampler is not None:
            mean_loss = _distributed_sampled_epoch(
                dist_graph, sampler, sampling, model, optimizer, augmented,
                labels, predict_mask, epoch, comm,
            )
        else:
            dist_graph.begin_step()
            if seed_mask_local is not None:
                predict_mask = np.asarray(predict_mask, dtype=bool) & seed_mask_local
            logits = model(dist_graph, Tensor(augmented))
            loss = _local_loss(logits, labels, predict_mask)
            local_count = int(np.asarray(predict_mask).sum())
            model.zero_grad()
            loss.backward()
            global_count = comm.allreduce_scalar(float(local_count))
            sync_gradients(model.parameters(), comm, scale=1.0 / max(global_count, 1.0))
            optimizer.step()
            mean_loss = distributed_mean_loss(float(loss.data), local_count, comm)
        lr = scheduler.step() if scheduler else optimizer.lr
        elapsed = timer.stop()

        record = EpochRecord(epoch=epoch, loss=mean_loss, lr=lr, train_time_s=elapsed)
        if config.eval_every and (epoch % config.eval_every == 0 or epoch == config.num_epochs):
            accs, _ = _distributed_evaluate(dist_graph, model, augmenter, features,
                                            labels, masks, comm,
                                            inference=config.eval_inference,
                                            eval_batch_size=config.eval_batch_size)
            record.train_accuracy = accs["train"]
            record.val_accuracy = accs["val"]
            record.test_accuracy = accs["test"]
            if config.verbose and rank == 0:
                logger.info("epoch %d loss %.4f val %.4f test %.4f",
                            epoch, mean_loss, accs["val"], accs["test"])
        records.append(record)

    final_accs, logits = _distributed_evaluate(dist_graph, model, augmenter, features,
                                               labels, masks, comm,
                                               inference=config.eval_inference,
                                               eval_batch_size=config.eval_batch_size)
    cs_accs: Optional[Dict[str, float]] = None
    if config.correct_and_smooth:
        refined = config.cs_params(dist_graph, logits, labels, masks["train"])
        cs_accs = evaluation_report(refined, labels, masks, comm)
    result: Dict[str, Any] = {
        "records": records,
        "final_accuracies": final_accs,
        "cs_accuracies": cs_accs,
        "local_logits": logits,
        "global_node_ids": dist_graph.global_node_ids,
    }
    if feature_store is not None:
        result["feature_store_stats"] = feature_store.stats()
        # The evaluation collectives above are barriers: every peer has
        # finished fetching, so unpublishing the rows is safe.
        dist_graph.attach_feature_store(None)
        feature_store.release()
    return result


class DistributedTrainer:
    """Partition a dataset, launch a simulated cluster, train a model with SAR/DP."""

    def __init__(self, dataset: NodeClassificationDataset, model_factory: ModelFactory,
                 num_workers: int, sar_config: SARConfig = SAR,
                 config: Optional[TrainingConfig] = None,
                 partition_method: str = "metis", partition_seed: int = 0,
                 timeout_s: float = 600.0):
        self.dataset = dataset
        self.model_factory = model_factory
        self.num_workers = num_workers
        self.sar_config = sar_config
        self.config = config or TrainingConfig()
        self.partition_method = partition_method
        self.partition_seed = partition_seed
        self.timeout_s = timeout_s
        dataset.attach_to_graph()
        self.book, self.shards = self._prepare_shards()

    # ------------------------------------------------------------------ #
    def _prepare_shards(self):
        dataset = self.dataset
        assignment = partition_graph(dataset.graph, self.num_workers,
                                     method=self.partition_method, seed=self.partition_seed)
        book = PartitionBook(assignment, self.num_workers)
        if isinstance(dataset, HeteroNodeClassificationDataset) and dataset.hetero_graph is not None:
            shards = create_hetero_shards(dataset.hetero_graph, book)
        else:
            shards = create_shards(dataset.graph, book)
        return book, shards

    def _mfg_masks(self) -> Optional[List[np.ndarray]]:
        """Global per-layer required-node masks when MFG restriction is on."""
        if self.config.mfg_seeds is None:
            return None
        if isinstance(self.dataset, HeteroNodeClassificationDataset) and \
                self.dataset.hetero_graph is not None:
            raise ValueError("MFG-restricted training supports homogeneous graphs only")
        num_layers = self._probe_num_layers()
        if num_layers is None:
            raise ValueError(
                "mfg_seeds requires a model exposing num_layers (one restricted "
                "block grid is built per conv layer)"
            )
        return message_flow_masks(self.dataset.graph, self.config.mfg_seeds, num_layers)

    def _probe_num_layers(self) -> Optional[int]:
        """Read ``num_layers`` off a throwaway model replica.

        The probe exists only to read the attribute; its parameter draws are
        isolated so enabling MFG or sampling does not shift the workers'
        initial weights.
        """
        with temp_seed(0):
            probe = self.model_factory(self.dataset.feature_dim)
        return getattr(probe, "num_layers", None)

    def _sampling_plan(self) -> Optional[DistributedSamplingPlan]:
        """Per-worker sampling metadata when neighbour-sampled training is on."""
        if self.config.sampler is None:
            return None
        if isinstance(self.dataset, HeteroNodeClassificationDataset) and \
                self.dataset.hetero_graph is not None:
            raise ValueError("sampled distributed training supports homogeneous graphs only")
        _sampled_num_layers(self.config, self._probe_num_layers())
        return build_sampling_plan(
            self.dataset.graph, self.book, self.config.sampler,
            self.dataset.train_indices(), self.config.resolved_sampler_seed(),
        )

    def run(self) -> DistributedTrainingResult:
        cluster = SimulatedCluster(self.num_workers, timeout_s=self.timeout_s)
        result = cluster.run(
            distributed_train_worker,
            worker_args=self.shards,
            model_factory=self.model_factory,
            feature_dim=self.dataset.feature_dim,
            num_classes=self.dataset.num_classes,
            config=self.config,
            sar_config=self.sar_config,
            mfg_masks=self._mfg_masks(),
            sampling=self._sampling_plan(),
        )
        rank0 = result.results[0]
        training = TrainingResult(
            records=rank0["records"],
            final_accuracies=rank0["final_accuracies"],
            cs_accuracies=rank0["cs_accuracies"],
        )
        return DistributedTrainingResult(
            training=training,
            cluster=result,
            world_size=self.num_workers,
            sar_config=self.sar_config,
        )

    def assemble_global_predictions(self, result: DistributedTrainingResult) -> np.ndarray:
        """Stitch per-worker logits back into global node order."""
        per_partition = [r["local_logits"] for r in result.cluster.results]
        return self.book.scatter_to_global(per_partition)
