"""NumPy-backed tensor library with reverse-mode autodiff.

This package is the repository's substitute for PyTorch: it provides the
:class:`~repro.tensor.tensor.Tensor` type, differentiable operations,
parameter initializers, optimizers, and the per-worker memory tracker the
benchmarks use to reproduce the paper's peak-memory measurements.
"""

from repro.tensor.tensor import (
    Tensor,
    Function,
    no_grad,
    enable_grad,
    grad_enabled,
    tensor,
    zeros,
    ones,
    zeros_like,
    ones_like,
    DEFAULT_DTYPE,
)
from repro.tensor.memory import MemoryTracker, track_memory, active_tracker, no_tracking
from repro.tensor import edge_plan
from repro.tensor.edge_plan import EdgePlan
from repro.tensor import ops
from repro.tensor import functional
from repro.tensor import sparse
from repro.tensor import init
from repro.tensor import optim
from repro.tensor.gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "enable_grad",
    "grad_enabled",
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "DEFAULT_DTYPE",
    "MemoryTracker",
    "track_memory",
    "active_tracker",
    "no_tracking",
    "edge_plan",
    "EdgePlan",
    "ops",
    "functional",
    "sparse",
    "init",
    "optim",
    "check_gradients",
    "numerical_gradient",
]
