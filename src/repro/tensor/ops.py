"""Primitive differentiable operations on :class:`~repro.tensor.tensor.Tensor`.

Every operation is implemented as a :class:`~repro.tensor.tensor.Function`
subclass plus a thin functional wrapper.  Operations follow NumPy
broadcasting semantics; gradients are "un-broadcast" (summed over broadcast
axes) on the way back.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.tensor import Function, Tensor

ArrayLike = Union[Tensor, np.ndarray, float, int]


def _wrap(value: ArrayLike, like: Optional[Tensor] = None) -> Tensor:
    if isinstance(value, Tensor):
        return value
    dtype = like.data.dtype if like is not None else None
    return Tensor(np.asarray(value, dtype=dtype))


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes that were broadcast to reach ``grad.shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# --------------------------------------------------------------------------- #
# elementwise binary ops
# --------------------------------------------------------------------------- #
class Add(Function):
    def forward(self, a: Tensor, b: Tensor) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a.data + b.data

    def backward(self, grad_out):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad_out, a_shape), _unbroadcast(grad_out, b_shape)


class Sub(Function):
    def forward(self, a: Tensor, b: Tensor) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a.data - b.data

    def backward(self, grad_out):
        a_shape, b_shape = self.saved
        return _unbroadcast(grad_out, a_shape), _unbroadcast(-grad_out, b_shape)


class Mul(Function):
    def forward(self, a: Tensor, b: Tensor) -> np.ndarray:
        self.save_for_backward(a.data, b.data)
        return a.data * b.data

    def backward(self, grad_out):
        a_data, b_data = self.saved
        return (
            _unbroadcast(grad_out * b_data, a_data.shape),
            _unbroadcast(grad_out * a_data, b_data.shape),
        )


class Div(Function):
    def forward(self, a: Tensor, b: Tensor) -> np.ndarray:
        self.save_for_backward(a.data, b.data)
        return a.data / b.data

    def backward(self, grad_out):
        a_data, b_data = self.saved
        grad_a = grad_out / b_data
        grad_b = -grad_out * a_data / (b_data * b_data)
        return _unbroadcast(grad_a, a_data.shape), _unbroadcast(grad_b, b_data.shape)


class Pow(Function):
    def forward(self, a: Tensor, exponent: float) -> np.ndarray:
        out = a.data ** exponent
        self.save_for_backward(a.data, exponent)
        return out

    def backward(self, grad_out):
        a_data, exponent = self.saved
        return (grad_out * exponent * a_data ** (exponent - 1),)


class Neg(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        return -a.data

    def backward(self, grad_out):
        return (-grad_out,)


# --------------------------------------------------------------------------- #
# elementwise unary ops
# --------------------------------------------------------------------------- #
class Exp(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        out = np.exp(a.data)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * out,)


class Log(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        self.save_for_backward(a.data)
        return np.log(a.data)

    def backward(self, grad_out):
        (a_data,) = self.saved
        return (grad_out / a_data,)


class Sqrt(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        out = np.sqrt(a.data)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * 0.5 / out,)


class Cast(Function):
    def forward(self, a: Tensor, dtype) -> np.ndarray:
        self.save_for_backward(a.data.dtype)
        return a.data.astype(dtype)

    def backward(self, grad_out):
        (dtype,) = self.saved
        return (grad_out.astype(dtype),)


# --------------------------------------------------------------------------- #
# matmul
# --------------------------------------------------------------------------- #
class MatMul(Function):
    """Matrix product supporting ``(…, M, K) @ (K, N)`` and ``(M, K) @ (K, N)``."""

    def forward(self, a: Tensor, b: Tensor) -> np.ndarray:
        if b.data.ndim != 2:
            raise ValueError(
                f"matmul expects a 2-D right operand, got shape {b.data.shape}"
            )
        if a.data.ndim < 2:
            raise ValueError(
                f"matmul expects a >=2-D left operand, got shape {a.data.shape}"
            )
        self.save_for_backward(a.data, b.data)
        if a.data.ndim == 2 and a.data.shape[0] == 1:
            # BLAS routes single-row products to gemv, whose accumulation
            # order differs from gemm's — so a 1-row batch would produce a
            # row bitwise different from the same row inside a larger batch,
            # breaking the library's restricted-forward bit-parity contract
            # (MFG pipelines and the serving path run arbitrary batch
            # sizes, including 1).  Pad to two rows to stay on gemm.
            return (np.concatenate([a.data, a.data], axis=0) @ b.data)[:1]
        return a.data @ b.data

    def backward(self, grad_out):
        a_data, b_data = self.saved
        grad_a = grad_out @ b_data.T
        # Collapse any leading batch dimensions of ``a`` for the weight grad.
        a_2d = a_data.reshape(-1, a_data.shape[-1])
        g_2d = grad_out.reshape(-1, grad_out.shape[-1])
        grad_b = a_2d.T @ g_2d
        return grad_a, grad_b.astype(b_data.dtype)


# --------------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------------- #
def _normalize_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    def forward(self, a: Tensor, axis=None, keepdims: bool = False) -> np.ndarray:
        self.save_for_backward(a.shape, _normalize_axis(axis, a.ndim), keepdims)
        return a.data.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad_out):
        shape, axis, keepdims = self.saved
        grad = np.asarray(grad_out)
        if axis is not None and not keepdims:
            for ax in sorted(axis):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).astype(grad.dtype, copy=False).copy(),)


class Mean(Function):
    def forward(self, a: Tensor, axis=None, keepdims: bool = False) -> np.ndarray:
        norm_axis = _normalize_axis(axis, a.ndim)
        if norm_axis is None:
            count = a.data.size
        else:
            count = int(np.prod([a.shape[ax] for ax in norm_axis]))
        self.save_for_backward(a.shape, norm_axis, keepdims, count)
        return a.data.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad_out):
        shape, axis, keepdims, count = self.saved
        grad = np.asarray(grad_out) / count
        if axis is not None and not keepdims:
            for ax in sorted(axis):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).astype(grad.dtype, copy=False).copy(),)


class _MinMax(Function):
    _np_fn = None  # set by subclasses

    def forward(self, a: Tensor, axis=None, keepdims: bool = False) -> np.ndarray:
        out = self._np_fn(a.data, axis=axis, keepdims=keepdims)
        self.save_for_backward(a.data, out, _normalize_axis(axis, a.ndim), keepdims)
        return out

    def backward(self, grad_out):
        a_data, out, axis, keepdims = self.saved
        out_b = np.asarray(out)
        grad = np.asarray(grad_out)
        if axis is not None and not keepdims:
            for ax in sorted(axis):
                out_b = np.expand_dims(out_b, ax)
                grad = np.expand_dims(grad, ax)
        mask = (a_data == out_b)
        # Split gradient equally between ties (matches PyTorch amax behaviour
        # closely enough for our use cases).
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return ((mask * grad) / counts,)


class Max(_MinMax):
    _np_fn = staticmethod(np.max)


class Min(_MinMax):
    _np_fn = staticmethod(np.min)


# --------------------------------------------------------------------------- #
# shape ops
# --------------------------------------------------------------------------- #
class Reshape(Function):
    def forward(self, a: Tensor, shape: Tuple[int, ...]) -> np.ndarray:
        self.save_for_backward(a.shape)
        return a.data.reshape(shape)

    def backward(self, grad_out):
        (shape,) = self.saved
        return (grad_out.reshape(shape),)


class Transpose(Function):
    def forward(self, a: Tensor, axes=None) -> np.ndarray:
        self.save_for_backward(axes, a.ndim)
        return np.transpose(a.data, axes)

    def backward(self, grad_out):
        axes, ndim = self.saved
        if axes is None:
            return (np.transpose(grad_out),)
        inverse = np.argsort(axes)
        return (np.transpose(grad_out, inverse),)


class Concat(Function):
    def forward(self, *tensors: Tensor, axis: int = 0) -> np.ndarray:
        self.save_for_backward(axis, [t.shape[axis] for t in tensors])
        return np.concatenate([t.data for t in tensors], axis=axis)

    def backward(self, grad_out):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad_out, splits, axis=axis))


class Slice(Function):
    """Basic (non-advanced) indexing: slices, ints, ellipsis, None."""

    def forward(self, a: Tensor, key) -> np.ndarray:
        self.save_for_backward(a.shape, key)
        return a.data[key]

    def backward(self, grad_out):
        shape, key = self.saved
        grad = np.zeros(shape, dtype=grad_out.dtype)
        grad[key] = grad_out
        return (grad,)


class Gather(Function):
    """Row gather along axis 0 with an integer index array (may repeat)."""

    def forward(self, a: Tensor, index: np.ndarray) -> np.ndarray:
        index = np.asarray(index, dtype=np.int64)
        self.save_for_backward(a.shape, index)
        return a.data[index]

    def backward(self, grad_out):
        shape, index = self.saved
        grad = np.zeros(shape, dtype=grad_out.dtype)
        np.add.at(grad, index, grad_out)
        return (grad,)


# --------------------------------------------------------------------------- #
# functional wrappers
# --------------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    a = _wrap(a)
    return Add.apply(a, _wrap(b, a))


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    a = _wrap(a)
    return Sub.apply(a, _wrap(b, a))


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    a = _wrap(a)
    return Mul.apply(a, _wrap(b, a))


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    a = _wrap(a)
    return Div.apply(a, _wrap(b, a))


def neg(a: Tensor) -> Tensor:
    return Neg.apply(_wrap(a))


def pow(a: Tensor, exponent: float) -> Tensor:  # noqa: A001 - mirrors torch.pow
    return Pow.apply(_wrap(a), float(exponent))


def exp(a: Tensor) -> Tensor:
    return Exp.apply(_wrap(a))


def log(a: Tensor) -> Tensor:
    return Log.apply(_wrap(a))


def sqrt(a: Tensor) -> Tensor:
    return Sqrt.apply(_wrap(a))


def cast(a: Tensor, dtype) -> Tensor:
    return Cast.apply(_wrap(a), dtype)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return MatMul.apply(_wrap(a), _wrap(b))


def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return Sum.apply(_wrap(a), axis, keepdims)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Mean.apply(_wrap(a), axis, keepdims)


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return Max.apply(_wrap(a), axis, keepdims)


def min(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return Min.apply(_wrap(a), axis, keepdims)


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    return Reshape.apply(_wrap(a), tuple(shape))


def transpose(a: Tensor, axes=None) -> Tensor:
    return Transpose.apply(_wrap(a), axes)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    return Concat.apply(*tensors, axis=axis)


def slice_(a: Tensor, key) -> Tensor:
    return Slice.apply(_wrap(a), key)


def gather(a: Tensor, index: np.ndarray) -> Tensor:
    return Gather.apply(_wrap(a), index)
