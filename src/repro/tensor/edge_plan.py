"""Edge plans: sort-once / reduce-many message-passing kernels.

Every message-passing op in this library reduces per-edge (or per-source)
values into per-destination buckets, or scatters per-destination gradients
back to sources.  The sparsity pattern of those reductions — which edges feed
which node — is fixed for the lifetime of an edge set, yet the naive kernels
re-derive it on every call: ``scipy.csr_matrix((data, (dst, src)))`` pays a
COO→CSR sort per call (and per attention head), and ``np.ufunc.at`` falls
back to a slow scalar loop.

An :class:`EdgePlan` is built **once** per ``(src, dst, num_dst, num_src)``
edge set and caches, per orientation (destination-major and source-major):

* the destination-sorted edge order and the segment ``indptr`` (the CSR
  sparsity structure),
* the unweighted aggregation matrix (``out[d] = Σ_{e:(s→d)} x[s]``),
* a selection matrix summing per-*edge* values into segments,
* a weighted-CSR *template* whose data buffer is re-filled in place, so
  edge-weighted aggregation (the attention hot path) performs **zero** sparse
  constructions per call, and
* the ``reduceat`` bookkeeping (non-empty segment starts) for max/min.

The per-op kernel strategy is chosen from measurements, not aesthetics
(E=200k, N=5k, H=8, D=32, float32, one core):

=====================  ======================  =====================  ========
op                     naive                   plan                   speedup
=====================  ======================  =====================  ========
``u_mul_e_sum`` fwd    fresh CSR per head      template matvec/head   ~3.5×
``segment_sum (E,H)``  fresh CSR               cached selection CSR   ~3×
``segment_max (E,H)``  ``np.maximum.at``       ``maximum.reduceat``   ~3.5×
``aggregate_sum``      fresh CSR               cached CSR matvec      »
=====================  ======================  =====================  ========

(``np.add.reduceat`` over a wide ``(E, H·D)`` message block was also
measured and is ~7× *slower* than a CSR matvec — reduceat does not vectorize
across the row — which is why weighted aggregation uses the template matvec
rather than a literal gather→multiply→reduceat pipeline.)

The module-level :data:`build_counter` increments once per constructed plan;
tests and benchmarks assert it stays flat across training iterations after
warm-up, proving the hot path performs no per-call sparsity construction.
:func:`plans_disabled` switches every plan provider (``Graph.plan()``,
``EdgeBlock.plan()``, …) to return ``None`` so benchmarks can time the naive
path with identical call sites.

Plans are not thread-safe across concurrent calls on the *same* plan (the
weighted template's data buffer is reused); each worker owns its own blocks
and plans, so this never happens in practice.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np
import scipy.sparse as sp

#: number of EdgePlan constructions since import (or the last
#: :func:`reset_build_counter`).  A training loop must keep this flat after
#: its first iteration.
build_counter: int = 0

_enabled: bool = True
_counter_lock = threading.Lock()


def plans_enabled() -> bool:
    """Whether plan providers (``Graph.plan()`` etc.) hand out plans."""
    return _enabled


def set_plans_enabled(flag: bool) -> bool:
    """Globally enable/disable plan usage; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def plans_disabled() -> Iterator[None]:
    """Run a block with every plan provider returning ``None`` (naive path)."""
    previous = set_plans_enabled(False)
    try:
        yield
    finally:
        set_plans_enabled(previous)


def reset_build_counter() -> None:
    global build_counter
    build_counter = 0


class _Orientation:
    """Cached CSR layout of one direction of an edge set.

    ``rows``/``cols`` are the per-edge row and column ids of the aggregation
    matrix for this orientation (destination-major: rows = dst, cols = src;
    source-major: the transpose).  Everything derived from the one-time
    lexsort is cached here; the three lazily-built sparse matrices never pay
    a sort.
    """

    __slots__ = ("num_rows", "num_cols", "order", "indices", "indptr", "counts",
                 "nonempty", "starts", "all_nonempty",
                 "_agg", "_sel", "_weighted_template")

    def __init__(self, rows: np.ndarray, cols: np.ndarray,
                 num_rows: int, num_cols: int):
        self.num_rows = int(num_rows)
        self.num_cols = int(num_cols)
        # Sort by (row, col) with ties in input order.  A single stable
        # argsort over the composite key `row * num_cols + col` produces the
        # identical permutation to `np.lexsort((cols, rows))` at about half
        # the cost; the lexsort remains as the (never hit in practice)
        # overflow fallback.
        if self.num_rows * self.num_cols < (1 << 62):
            composite = rows * np.int64(max(self.num_cols, 1)) + cols
            order = np.argsort(composite, kind="stable")
        else:
            order = np.lexsort((cols, rows))
        self.order = order
        self.indices = cols[order]
        indptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=self.num_rows), out=indptr[1:])
        self.indptr = indptr
        self.counts = np.diff(indptr)
        self.nonempty = self.counts > 0
        self.starts = indptr[:-1][self.nonempty]
        self.all_nonempty = bool(self.nonempty.all()) if self.num_rows else True
        self._agg: Optional[sp.csr_matrix] = None
        self._sel: Optional[sp.csr_matrix] = None
        self._weighted_template: Optional[sp.csr_matrix] = None

    # -- cached sparse operators ----------------------------------------- #
    def agg_matrix(self) -> sp.csr_matrix:
        """Unweighted ``(num_rows × num_cols)`` sum-aggregation matrix."""
        if self._agg is None:
            self._agg = sp.csr_matrix(
                (np.ones(len(self.indices), dtype=np.float32), self.indices,
                 self.indptr),
                shape=(self.num_rows, self.num_cols),
            )
        return self._agg

    def sel_matrix(self) -> sp.csr_matrix:
        """``(num_rows × E)`` matrix summing per-edge values into segments."""
        if self._sel is None:
            self._sel = sp.csr_matrix(
                (np.ones(len(self.order), dtype=np.float32), self.order,
                 self.indptr),
                shape=(self.num_rows, len(self.order)),
            )
        return self._sel

    def weighted_matrix(self, weights: np.ndarray) -> sp.csr_matrix:
        """Edge-weighted aggregation matrix over the cached structure.

        The returned matrix is a shared template whose data buffer is
        overwritten in place — consume it immediately (one matvec) and never
        store it.
        """
        template = self._weighted_template
        if template is None:
            template = sp.csr_matrix(
                (np.empty(len(self.order), dtype=np.float32), self.indices,
                 self.indptr),
                shape=(self.num_rows, self.num_cols),
            )
            self._weighted_template = template
        np.take(weights.astype(np.float32, copy=False), self.order,
                out=template.data)
        return template

    # -- segment reductions over the sorted order ------------------------- #
    def reduce_sorted(self, ufunc, sorted_vals: np.ndarray, fill: float) -> np.ndarray:
        """``ufunc``-reduce already-sorted per-edge rows into segments."""
        out_shape = (self.num_rows,) + sorted_vals.shape[1:]
        if len(sorted_vals) == 0 or not len(self.starts):
            return np.full(out_shape, fill, dtype=sorted_vals.dtype)
        if self.all_nonempty:
            return ufunc.reduceat(sorted_vals, self.indptr[:-1], axis=0)
        out = np.full(out_shape, fill, dtype=sorted_vals.dtype)
        out[self.nonempty] = ufunc.reduceat(sorted_vals, self.starts, axis=0)
        return out

    def matvec(self, mat: sp.spmatrix, values: np.ndarray) -> np.ndarray:
        """``mat @ values`` with arbitrary trailing dimensions."""
        if values.ndim == 2:
            flat = values
        else:
            trailing = int(np.prod(values.shape[1:], dtype=np.int64))
            flat = values.reshape(len(values), trailing)
        out = mat @ flat
        return np.asarray(out).reshape((mat.shape[0],) + values.shape[1:])


class EdgePlan:
    """One-time sparsity analysis of an edge set, reused by every kernel.

    Parameters
    ----------
    src, dst:
        ``(num_edges,)`` integer endpoint arrays (messages flow
        ``src → dst``); the input order is the *reduction* order.
    num_dst:
        Number of destination rows (aggregation output height).
    num_src:
        Number of source rows (feature matrix height).

    Notes
    -----
    A plan is a pure function of its ``(src, dst, num_dst, num_src)``
    arguments — it draws no randomness and keeps no mutable state visible to
    callers — so kernel outputs through a plan are deterministic: per
    destination, reductions run over edges in the stable destination-sorted
    order derived from the input edge order.  Two plans built from identical
    arguments are interchangeable, which is what makes the structural
    :class:`PlanCache` safe.  Plans are **not** safe under concurrent kernel
    calls on the same plan (the weighted-CSR template's data buffer is reused
    in place).
    """

    def __init__(self, src, dst, num_dst: int, num_src: int):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1 or len(src) != len(dst):
            raise ValueError(
                f"src and dst must be equal-length 1-D arrays, got {src.shape} and {dst.shape}"
            )
        self.src = src
        self.dst = dst
        self.num_edges = len(src)
        self.num_dst = int(num_dst)
        self.num_src = int(num_src)
        self._forward: Optional[_Orientation] = None
        self._transpose: Optional[_Orientation] = None
        global build_counter
        with _counter_lock:  # workers build block plans concurrently
            build_counter += 1

    def __repr__(self) -> str:
        return (
            f"EdgePlan(num_edges={self.num_edges}, num_dst={self.num_dst}, "
            f"num_src={self.num_src})"
        )

    # -- orientations ----------------------------------------------------- #
    def _o(self, transpose: bool = False) -> _Orientation:
        if transpose:
            if self._transpose is None:
                self._transpose = _Orientation(self.src, self.dst,
                                               self.num_src, self.num_dst)
            return self._transpose
        if self._forward is None:
            self._forward = _Orientation(self.dst, self.src,
                                         self.num_dst, self.num_src)
        return self._forward

    def _check_edge_rows(self, values: np.ndarray, what: str) -> np.ndarray:
        values = np.asarray(values)
        if len(values) != self.num_edges:
            raise ValueError(
                f"{what} must have {self.num_edges} rows (one per edge), "
                f"got {values.shape}"
            )
        return values

    @property
    def in_degrees(self) -> np.ndarray:
        """Number of in-edges per destination node."""
        return self._o(False).counts

    def clamped_in_degrees(self, dtype) -> np.ndarray:
        """In-degrees clamped to ≥ 1 (the mean-aggregation denominator)."""
        return np.maximum(self._o(False).counts, 1).astype(dtype)

    # -- per-edge → per-segment reductions -------------------------------- #
    def segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum per-edge rows into destination buckets."""
        values = self._check_edge_rows(values, "values")
        o = self._o(False)
        return o.matvec(o.sel_matrix(), values)

    def segment_mean(self, values: np.ndarray) -> np.ndarray:
        """Mean-reduce per-edge rows per destination (empty segments → 0)."""
        sums = self.segment_sum(values)
        counts = self.clamped_in_degrees(sums.dtype)
        return sums / counts.reshape((self.num_dst,) + (1,) * (sums.ndim - 1))

    def segment_max(self, values: np.ndarray, initial: float = -np.inf) -> np.ndarray:
        """Max-reduce per-edge rows per destination (empty segments → ``initial``)."""
        values = self._check_edge_rows(values, "values")
        o = self._o(False)
        return o.reduce_sorted(np.maximum, values[o.order], initial)

    def segment_min(self, values: np.ndarray, initial: float = np.inf) -> np.ndarray:
        """Min-reduce per-edge rows per destination (empty segments → ``initial``)."""
        values = self._check_edge_rows(values, "values")
        o = self._o(False)
        return o.reduce_sorted(np.minimum, values[o.order], initial)

    def segment_sum_src(self, values: np.ndarray) -> np.ndarray:
        """Sum per-edge rows into *source* buckets (the transpose reduction)."""
        values = self._check_edge_rows(values, "values")
        o = self._o(True)
        return o.matvec(o.sel_matrix(), values)

    # -- per-source features → per-destination aggregates ------------------ #
    def aggregate_sum(self, x: np.ndarray) -> np.ndarray:
        """``out[d] = Σ_{e:(s→d)} x[s]`` (sum over in-neighbours)."""
        o = self._o(False)
        return o.matvec(o.agg_matrix(), x)

    def aggregate_mean(self, x: np.ndarray) -> np.ndarray:
        """In-neighbour mean (in-degree clamped to ≥ 1)."""
        out = self.aggregate_sum(x)
        counts = self.clamped_in_degrees(out.dtype)
        return out / counts.reshape((self.num_dst,) + (1,) * (out.ndim - 1))

    def aggregate_sum_t(self, grad: np.ndarray) -> np.ndarray:
        """``out[s] = Σ_{e:(s→d)} grad[d]`` (the backward of :meth:`aggregate_sum`)."""
        o = self._o(True)
        return o.matvec(o.agg_matrix(), grad)

    def aggregate_max(self, x: np.ndarray, initial: float = -np.inf) -> np.ndarray:
        """Element-wise max over in-neighbours (empty → ``initial``)."""
        o = self._o(False)
        return o.reduce_sorted(np.maximum, x[o.indices], initial)

    def aggregate_min(self, x: np.ndarray, initial: float = np.inf) -> np.ndarray:
        """Element-wise min over in-neighbours (empty → ``initial``)."""
        o = self._o(False)
        return o.reduce_sorted(np.minimum, x[o.indices], initial)

    # -- weighted multi-head aggregation (the attention hot path) ---------- #
    def u_mul_e_sum(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``out[d, h] = Σ_{e:(s→d)} w[e, h] · x[s, h]`` for all heads at once.

        ``x`` has shape ``(num_src, H, D)``, ``weights`` ``(E, H)``; each head
        is one matvec over the shared weighted-CSR template (no sparse
        construction, no sort).
        """
        weights = self._check_edge_rows(weights, "weights")
        o = self._o(False)
        heads, dim = x.shape[1], x.shape[2]
        out = np.empty((self.num_dst, heads, dim), dtype=x.dtype)
        for h in range(heads):
            out[:, h, :] = o.weighted_matrix(weights[:, h]) @ x[:, h, :]
        return out

    def u_mul_e_sum_t(self, grad: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``out[s, h] = Σ_{e:(s→d)} w[e, h] · grad[d, h]`` (transpose of
        :meth:`u_mul_e_sum`, used by its backward pass)."""
        weights = self._check_edge_rows(weights, "weights")
        o = self._o(True)
        heads, dim = grad.shape[1], grad.shape[2]
        out = np.empty((self.num_src, heads, dim), dtype=grad.dtype)
        for h in range(heads):
            out[:, h, :] = o.weighted_matrix(weights[:, h]) @ grad[:, h, :]
        return out

    # -- fused edge softmax ------------------------------------------------ #
    def edge_softmax(self, scores: np.ndarray) -> np.ndarray:
        """Numerically-stable per-destination softmax of per-edge scores.

        One sort is shared between the max, sum, and normalize stages: the
        scores are gathered into destination order once, the running
        statistics are computed with ``reduceat``/the cached selection
        matrix, and the result is scattered back to the original edge order.
        """
        scores = self._check_edge_rows(scores, "scores")
        o = self._o(False)
        s = scores[o.order]
        maxes = o.reduce_sorted(np.maximum, s, -np.inf)
        maxes = np.where(np.isfinite(maxes), maxes, 0.0).astype(s.dtype, copy=False)
        shifted = s - np.repeat(maxes, o.counts, axis=0)
        np.exp(shifted, out=shifted)
        denom = o.reduce_sorted(np.add, shifted, 0.0)
        denom = np.maximum(denom, np.finfo(shifted.dtype).tiny)
        alpha_sorted = shifted / np.repeat(denom, o.counts, axis=0)
        out = np.empty_like(alpha_sorted)
        out[o.order] = alpha_sorted
        return out


# --------------------------------------------------------------------------- #
# structural plan cache (plan reuse across mini-batches)
# --------------------------------------------------------------------------- #
class PlanCache:
    """LRU cache of :class:`EdgePlan` objects keyed by edge-set *structure*.

    Mini-batch training builds a fresh block chain per batch, and every block
    would pay its own lexsorts even when its edge set is structurally
    identical to one seen before — which happens systematically for
    deterministic samples (``fanout=-1``), repeated batch compositions
    (``shuffle=False``), and evaluation loops.  Hashing the ``(src, dst,
    num_dst, num_src)`` tuple (a linear pass) is far cheaper than the sorts a
    plan performs, so identical structures share one plan.

    The cache must only be consulted for plans used *sequentially* on one
    thread: plans reuse an internal weighted-template buffer and are not safe
    under concurrent kernel calls.  Block chains satisfy this — batches are
    consumed one at a time — while worker-owned shard blocks keep building
    their plans directly.
    """

    def __init__(self, capacity: int = 32):
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._plans: "OrderedDict[bytes, EdgePlan]" = OrderedDict()

    @staticmethod
    def _digest(src: np.ndarray, dst: np.ndarray, num_dst: int, num_src: int) -> bytes:
        h = hashlib.blake2b(digest_size=16)
        h.update(np.int64(num_dst).tobytes())
        h.update(np.int64(num_src).tobytes())
        h.update(np.ascontiguousarray(src, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(dst, dtype=np.int64).tobytes())
        return h.digest()

    def get(self, src, dst, num_dst: int, num_src: int) -> EdgePlan:
        """Return a cached plan for the edge set, building one on a miss."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        key = self._digest(src, dst, num_dst, num_src)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan
            self.misses += 1
        # Build outside the lock (plan construction does the expensive sorts);
        # a racing duplicate build is harmless and the second insert wins.
        plan = EdgePlan(src, dst, num_dst, num_src)
        with self._lock:
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """Hit/miss/eviction counters and occupancy, as a plain dict.

        Surfaced (alongside the embedding-cache counters) in the serving
        telemetry — ``InferenceServer.stats()["plan_cache"]`` — so a running
        service can prove its repeated request topologies pay zero plan
        builds.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._plans),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: process-wide cache used by the compacted block chains (MFG / sampled).
_shared_cache = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide structural plan cache."""
    return _shared_cache


def cached_plan(src, dst, num_dst: int, num_src: int) -> EdgePlan:
    """Fetch (or build) a plan for the edge set through the shared cache.

    Parameters
    ----------
    src, dst:
        ``(num_edges,)`` integer endpoint arrays in reduction order.
    num_dst, num_src:
        Destination / source row-space heights.

    Returns
    -------
    EdgePlan
        A plan whose kernels behave identically to ``EdgePlan(src, dst,
        num_dst, num_src)`` — structurally identical edge sets (same arrays,
        same heights) share one plan, so re-sampled deterministic batches
        (``fanout=-1``, unshuffled loaders, the layer-wise inference sweep)
        never re-pay the construction sorts.  Lookup hashes the arguments in
        one linear pass; see :class:`PlanCache` for the (single-consumer)
        thread-safety contract.
    """
    return _shared_cache.get(src, dst, num_dst, num_src)
