"""Differentiable sparse / segment operations used for message passing.

These are the library's equivalents of DGL's SpMM / SDDMM / edge-softmax
kernels.  Graph structure (edge endpoints, sparse adjacency) is always
treated as non-differentiable; gradients only flow through dense feature and
edge-weight tensors.

Every op accepts an optional ``plan`` — an
:class:`~repro.tensor.edge_plan.EdgePlan` built once for the edge set — and
then runs on the plan's cached sort/CSR structures instead of re-deriving
sparsity per call.  The contract is that ``plan`` was constructed from the
*same* ``(src, dst, num_dst, num_src)`` the op is called with; callers obtain
it from the owning graph (``Graph.plan()``, ``EdgeBlock.plan()``, …).  With
``plan=None`` the ops fall back to the naive scipy/``ufunc.at`` reference
path, which the tests gradcheck the plan path against.

Plain NumPy helpers (suffixed ``_np``) are exposed as well because SAR's
sequential aggregation (Algorithm 1) runs the same math *outside* the
autograd graph and rematerializes it manually in the backward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.tensor.edge_plan import EdgePlan
from repro.tensor.tensor import Function, Tensor
from repro.utils.validation import check_1d_int_array

# --------------------------------------------------------------------------- #
# non-differentiable NumPy helpers
# --------------------------------------------------------------------------- #


def build_csr(src: np.ndarray, dst: np.ndarray, num_dst: int, num_src: int,
              weights: Optional[np.ndarray] = None) -> sp.csr_matrix:
    """Build the (num_dst × num_src) aggregation matrix ``A[d, s] = w_e``.

    Multiplying ``A @ X`` aggregates source-node features into destination
    nodes (sum aggregation).  Parallel edges accumulate.
    """
    if weights is None:
        weights = np.ones(len(src), dtype=np.float32)
    mat = sp.csr_matrix(
        (weights.astype(np.float32, copy=False), (dst, src)),
        shape=(num_dst, num_src),
    )
    return mat


def segment_sum_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets given by ``segment_ids``.

    With a ``plan`` (whose ``dst`` must equal ``segment_ids``) the reduction
    runs over the cached selection matrix — no per-call CSR build.
    """
    values = np.asarray(values)
    if plan is not None:
        return plan.segment_sum(values)
    if values.ndim > 1:
        flat = values.reshape(len(values), int(np.prod(values.shape[1:], dtype=np.int64)))
    else:
        flat = values[:, None]
    mat = sp.csr_matrix(
        (np.ones(len(segment_ids), dtype=flat.dtype),
         (segment_ids, np.arange(len(segment_ids)))),
        shape=(num_segments, len(segment_ids)),
    )
    out = mat @ flat
    return out.reshape((num_segments,) + values.shape[1:])


def segment_mean_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                    plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Mean-reduce ``values`` per segment (empty segments yield zeros)."""
    if plan is not None:
        return plan.segment_mean(np.asarray(values))
    sums = segment_sum_np(values, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(sums.dtype)
    counts = np.maximum(counts, 1.0)
    return sums / counts.reshape((num_segments,) + (1,) * (values.ndim - 1))


def segment_max_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   initial: float = -np.inf,
                   plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Max-reduce ``values`` per segment (``initial`` fills empty segments and
    clamps every result from below, matching the ``np.maximum.at`` path)."""
    values = np.asarray(values)
    if plan is not None:
        out = plan.segment_max(values, initial=initial)
        # The plan kernel applies ``initial`` to empty segments only; the
        # reference path also clamps non-empty segments at ``initial``.
        return np.maximum(out, initial) if np.isfinite(initial) else out
    out = np.full((num_segments,) + values.shape[1:], initial, dtype=values.dtype)
    np.maximum.at(out, segment_ids, values)
    return out


def segment_min_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   initial: float = np.inf,
                   plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Min-reduce ``values`` per segment (``initial`` fills empty segments and
    clamps every result from above, matching the ``np.minimum.at`` path)."""
    values = np.asarray(values)
    if plan is not None:
        out = plan.segment_min(values, initial=initial)
        return np.minimum(out, initial) if np.isfinite(initial) else out
    out = np.full((num_segments,) + values.shape[1:], initial, dtype=values.dtype)
    np.minimum.at(out, segment_ids, values)
    return out


def segment_count_np(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of entries per segment."""
    return np.bincount(segment_ids, minlength=num_segments).astype(np.int64)


def edge_softmax_np(scores: np.ndarray, dst: np.ndarray, num_dst: int,
                    plan: Optional[EdgePlan] = None) -> np.ndarray:
    """Numerically-stable softmax of per-edge scores grouped by destination."""
    if plan is not None:
        return plan.edge_softmax(np.asarray(scores))
    maxes = segment_max_np(scores, dst, num_dst, initial=-np.inf)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0)
    shifted = scores - maxes[dst]
    exp = np.exp(shifted)
    denom = segment_sum_np(exp, dst, num_dst)
    denom = np.maximum(denom, np.finfo(exp.dtype).tiny)
    return exp / denom[dst]


# --------------------------------------------------------------------------- #
# differentiable ops
# --------------------------------------------------------------------------- #
class SpMM(Function):
    """``adj @ x`` with a fixed sparse adjacency (gradient only w.r.t. ``x``)."""

    def forward(self, x: Tensor, adj: sp.spmatrix, adj_t: Optional[sp.spmatrix] = None) -> np.ndarray:
        if adj.shape[1] != x.shape[0]:
            raise ValueError(
                f"adjacency has {adj.shape[1]} columns but x has {x.shape[0]} rows"
            )
        x2d = x.data.reshape(x.shape[0], -1)
        out = adj @ x2d
        self.save_for_backward(adj_t if adj_t is not None else adj.T.tocsr(), x.shape)
        return np.asarray(out).reshape((adj.shape[0],) + x.shape[1:])

    def backward(self, grad_out):
        adj_t, x_shape = self.saved
        g2d = grad_out.reshape(grad_out.shape[0], -1)
        grad_x = adj_t @ g2d
        return (np.asarray(grad_x).reshape(x_shape),)


class NeighborAggregate(Function):
    """Plan-backed sum/mean aggregation of source features into destinations.

    The plan-native equivalent of :class:`SpMM` with the (cached) ``"none"``
    or ``"mean"``-normalized adjacency: forward aggregates over the plan's
    cached CSR, backward scatters through the cached transpose — zero sparse
    constructions either way.
    """

    def forward(self, x: Tensor, plan: EdgePlan, op: str) -> np.ndarray:
        if op not in ("sum", "mean"):
            raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
        if x.shape[0] != plan.num_src:
            raise ValueError(
                f"x has {x.shape[0]} rows but plan expects {plan.num_src} sources"
            )
        out = plan.aggregate_mean(x.data) if op == "mean" else plan.aggregate_sum(x.data)
        self.save_for_backward(plan, op, x.data.ndim)
        return out

    def backward(self, grad_out):
        plan, op, ndim = self.saved
        grad = grad_out
        if op == "mean":
            counts = plan.clamped_in_degrees(grad_out.dtype)
            grad = grad_out / counts.reshape((plan.num_dst,) + (1,) * (ndim - 1))
        return (plan.aggregate_sum_t(grad),)


class EdgeScoreSum(Function):
    """Per-edge sum of destination- and source-node scores (DGL ``u_add_v``).

    ``out[e] = score_dst[dst_e] + score_src[src_e]`` — the first step of
    GAT's attention logits.  The backward pass segment-sums the per-edge
    gradient to both endpoints through the plan's cached selection matrices
    instead of two ``np.add.at`` scatter loops.
    """

    def forward(self, score_dst: Tensor, score_src: Tensor, plan: EdgePlan) -> np.ndarray:
        self.save_for_backward(plan)
        return score_dst.data[plan.dst] + score_src.data[plan.src]

    def backward(self, grad_out):
        (plan,) = self.saved
        return plan.segment_sum(grad_out), plan.segment_sum_src(grad_out)


class SegmentSum(Function):
    """Differentiable :func:`segment_sum_np`."""

    def forward(self, values: Tensor, segment_ids: np.ndarray, num_segments: int,
                plan: Optional[EdgePlan] = None) -> np.ndarray:
        segment_ids = check_1d_int_array(segment_ids, "segment_ids", max_value=None)
        self.save_for_backward(segment_ids)
        return segment_sum_np(values.data, segment_ids, num_segments, plan=plan)

    def backward(self, grad_out):
        (segment_ids,) = self.saved
        return (grad_out[segment_ids],)


class SegmentMean(Function):
    """Differentiable per-segment mean (empty segments produce zeros)."""

    def forward(self, values: Tensor, segment_ids: np.ndarray, num_segments: int,
                plan: Optional[EdgePlan] = None) -> np.ndarray:
        segment_ids = check_1d_int_array(segment_ids, "segment_ids", max_value=None)
        counts = np.maximum(
            np.bincount(segment_ids, minlength=num_segments), 1
        ).astype(values.data.dtype)
        self.save_for_backward(segment_ids, counts, values.data.ndim)
        return segment_sum_np(values.data, segment_ids, num_segments, plan=plan) / counts.reshape(
            (num_segments,) + (1,) * (values.data.ndim - 1)
        )

    def backward(self, grad_out):
        segment_ids, counts, ndim = self.saved
        scaled = grad_out / counts.reshape((len(counts),) + (1,) * (ndim - 1))
        return (scaled[segment_ids],)


class UMulESum(Function):
    """Weighted aggregation: ``out[d] = Σ_{e:(s→d)} w_e * x[s]``.

    ``x`` has shape ``(num_src, H, D)`` (or ``(num_src, D)``) and ``w`` has
    shape ``(E, H)`` (or ``(E,)``); gradients flow to both.  This is the core
    kernel of attention-based aggregation.  With a ``plan`` the forward and
    backward passes run all heads through the plan's weighted-CSR template
    (one cached structure, zero per-call sparse builds) instead of
    constructing one fresh CSR matrix per head per pass.
    """

    def forward(self, x: Tensor, w: Tensor, src: np.ndarray, dst: np.ndarray,
                num_dst: int, plan: Optional[EdgePlan] = None) -> np.ndarray:
        x_data, w_data = x.data, w.data
        squeeze = False
        if x_data.ndim == 2:
            x_data = x_data[:, None, :]
            squeeze = True
        if w_data.ndim == 1:
            w_data = w_data[:, None]
        num_src, heads, dim = x_data.shape
        if plan is not None:
            out = plan.u_mul_e_sum(x_data, w_data)
        else:
            out = np.empty((num_dst, heads, dim), dtype=x_data.dtype)
            for h in range(heads):
                adj = sp.csr_matrix((w_data[:, h], (dst, src)), shape=(num_dst, num_src))
                out[:, h, :] = adj @ x_data[:, h, :]
        self.save_for_backward(x_data, w_data, src, dst, num_dst, squeeze,
                               x.shape, w.shape, plan)
        return out[:, 0, :] if squeeze else out

    def backward(self, grad_out):
        x_data, w_data, src, dst, num_dst, squeeze, x_shape, w_shape, plan = self.saved
        grad = grad_out[:, None, :] if squeeze else grad_out
        num_src, heads, dim = x_data.shape
        if plan is not None:
            grad_x = plan.u_mul_e_sum_t(grad, w_data)
        else:
            grad_x = np.empty_like(x_data)
            for h in range(heads):
                adj_t = sp.csr_matrix((w_data[:, h], (src, dst)), shape=(num_src, num_dst))
                grad_x[:, h, :] = adj_t @ grad[:, h, :]
        # grad_w[e, h] = <x[src_e, h], grad_out[dst_e, h]>  (an SDDMM)
        grad_w = np.einsum("ehd,ehd->eh", x_data[src], grad[dst])
        return grad_x.reshape(x_shape), grad_w.reshape(w_shape).astype(w_data.dtype)


class PoolAggregation(Function):
    """Element-wise max/min pooling over incoming edges.

    ``out[d] = op_{e:(s→d)} x[s]`` per feature dimension; destinations with
    no incoming edges yield ``0``.  The backward pass routes each output
    gradient to *every* source value attaining the extremum (the same
    subgradient convention as the distributed
    :class:`~repro.core.sage_dist.PoolingKernel`, so single-machine and SAR
    training stay bit-for-bit comparable).
    """

    def forward(self, x: Tensor, src: np.ndarray, dst: np.ndarray, num_dst: int,
                op: str, plan: Optional[EdgePlan] = None) -> np.ndarray:
        if op not in ("max", "min"):
            raise ValueError(f"op must be 'max' or 'min', got {op!r}")
        data = x.data
        if plan is not None:
            reduced = plan.aggregate_max(data) if op == "max" else plan.aggregate_min(data)
        else:
            gathered = data[src]
            if op == "max":
                reduced = segment_max_np(gathered, dst, num_dst)
            else:
                reduced = segment_min_np(gathered, dst, num_dst)
        out = np.where(np.isfinite(reduced), reduced, 0.0).astype(data.dtype, copy=False)
        self.save_for_backward(data, src, dst, out, x.shape, plan)
        return out

    def backward(self, grad_out):
        data, src, dst, out, x_shape, plan = self.saved
        mask = data[src] == out[dst]
        contrib = np.where(mask, grad_out[dst], 0.0)
        if plan is not None:
            return (plan.segment_sum_src(contrib).astype(grad_out.dtype, copy=False),)
        grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
        np.add.at(grad_x, src, contrib)
        return (grad_x,)


class EdgeSoftmax(Function):
    """Softmax over incoming edges of each destination node (DGL ``edge_softmax``)."""

    def forward(self, scores: Tensor, dst: np.ndarray, num_dst: int,
                plan: Optional[EdgePlan] = None) -> np.ndarray:
        alpha = edge_softmax_np(scores.data, dst, num_dst, plan=plan)
        self.save_for_backward(alpha, dst, num_dst, plan)
        return alpha

    def backward(self, grad_out):
        alpha, dst, num_dst, plan = self.saved
        weighted = segment_sum_np(alpha * grad_out, dst, num_dst, plan=plan)
        return (alpha * (grad_out - weighted[dst]),)


# --------------------------------------------------------------------------- #
# functional wrappers
# --------------------------------------------------------------------------- #
def spmm(x: Tensor, adj: sp.spmatrix, adj_t: Optional[sp.spmatrix] = None) -> Tensor:
    return SpMM.apply(x, adj, adj_t)


def neighbor_aggregate(x: Tensor, plan: EdgePlan, op: str = "sum") -> Tensor:
    """Plan-backed sum/mean aggregation of source features into destinations."""
    return NeighborAggregate.apply(x, plan, op)


def u_add_v(score_dst: Tensor, score_src: Tensor, plan: EdgePlan) -> Tensor:
    """Per-edge ``score_dst[dst_e] + score_src[src_e]`` with plan-backed backward."""
    return EdgeScoreSum.apply(score_dst, score_src, plan)


def segment_sum(values: Tensor, segment_ids, num_segments: int,
                plan: Optional[EdgePlan] = None) -> Tensor:
    return SegmentSum.apply(values, np.asarray(segment_ids), num_segments, plan)


def segment_mean(values: Tensor, segment_ids, num_segments: int,
                 plan: Optional[EdgePlan] = None) -> Tensor:
    return SegmentMean.apply(values, np.asarray(segment_ids), num_segments, plan)


def u_mul_e_sum(x: Tensor, w: Tensor, src, dst, num_dst: int,
                plan: Optional[EdgePlan] = None) -> Tensor:
    return UMulESum.apply(x, w, np.asarray(src), np.asarray(dst), num_dst, plan)


def pool_aggregate(x: Tensor, src, dst, num_dst: int, op: str = "max",
                   plan: Optional[EdgePlan] = None) -> Tensor:
    """Max/min pooling of source features into destination nodes."""
    return PoolAggregation.apply(x, np.asarray(src), np.asarray(dst), num_dst, op, plan)


def edge_softmax(scores: Tensor, dst, num_dst: int,
                 plan: Optional[EdgePlan] = None) -> Tensor:
    return EdgeSoftmax.apply(scores, np.asarray(dst), num_dst, plan)
