"""Differentiable sparse / segment operations used for message passing.

These are the library's equivalents of DGL's SpMM / SDDMM / edge-softmax
kernels.  Graph structure (edge endpoints, sparse adjacency) is always
treated as non-differentiable; gradients only flow through dense feature and
edge-weight tensors.

Plain NumPy helpers (suffixed ``_np``) are exposed as well because SAR's
sequential aggregation (Algorithm 1) runs the same math *outside* the
autograd graph and rematerializes it manually in the backward pass.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import Function, Tensor
from repro.utils.validation import check_1d_int_array

# --------------------------------------------------------------------------- #
# non-differentiable NumPy helpers
# --------------------------------------------------------------------------- #


def build_csr(src: np.ndarray, dst: np.ndarray, num_dst: int, num_src: int,
              weights: Optional[np.ndarray] = None) -> sp.csr_matrix:
    """Build the (num_dst × num_src) aggregation matrix ``A[d, s] = w_e``.

    Multiplying ``A @ X`` aggregates source-node features into destination
    nodes (sum aggregation).  Parallel edges accumulate.
    """
    if weights is None:
        weights = np.ones(len(src), dtype=np.float32)
    mat = sp.csr_matrix(
        (weights.astype(np.float32, copy=False), (dst, src)),
        shape=(num_dst, num_src),
    )
    return mat


def segment_sum_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets given by ``segment_ids``."""
    values = np.asarray(values)
    flat = values.reshape(len(values), -1) if values.ndim > 1 else values[:, None]
    mat = sp.csr_matrix(
        (np.ones(len(segment_ids), dtype=flat.dtype),
         (segment_ids, np.arange(len(segment_ids)))),
        shape=(num_segments, len(segment_ids)),
    )
    out = mat @ flat
    return out.reshape((num_segments,) + values.shape[1:])


def segment_mean_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Mean-reduce ``values`` per segment (empty segments yield zeros)."""
    sums = segment_sum_np(values, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(sums.dtype)
    counts = np.maximum(counts, 1.0)
    return sums / counts.reshape((num_segments,) + (1,) * (values.ndim - 1))


def segment_max_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   initial: float = -np.inf) -> np.ndarray:
    """Max-reduce ``values`` per segment (empty segments yield ``initial``)."""
    values = np.asarray(values)
    out = np.full((num_segments,) + values.shape[1:], initial, dtype=values.dtype)
    np.maximum.at(out, segment_ids, values)
    return out


def segment_min_np(values: np.ndarray, segment_ids: np.ndarray, num_segments: int,
                   initial: float = np.inf) -> np.ndarray:
    """Min-reduce ``values`` per segment (empty segments yield ``initial``)."""
    values = np.asarray(values)
    out = np.full((num_segments,) + values.shape[1:], initial, dtype=values.dtype)
    np.minimum.at(out, segment_ids, values)
    return out


def segment_count_np(segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of entries per segment."""
    return np.bincount(segment_ids, minlength=num_segments).astype(np.int64)


def edge_softmax_np(scores: np.ndarray, dst: np.ndarray, num_dst: int) -> np.ndarray:
    """Numerically-stable softmax of per-edge scores grouped by destination."""
    maxes = segment_max_np(scores, dst, num_dst, initial=-np.inf)
    maxes = np.where(np.isfinite(maxes), maxes, 0.0)
    shifted = scores - maxes[dst]
    exp = np.exp(shifted)
    denom = segment_sum_np(exp, dst, num_dst)
    denom = np.maximum(denom, np.finfo(exp.dtype).tiny)
    return exp / denom[dst]


# --------------------------------------------------------------------------- #
# differentiable ops
# --------------------------------------------------------------------------- #
class SpMM(Function):
    """``adj @ x`` with a fixed sparse adjacency (gradient only w.r.t. ``x``)."""

    def forward(self, x: Tensor, adj: sp.spmatrix, adj_t: Optional[sp.spmatrix] = None) -> np.ndarray:
        if adj.shape[1] != x.shape[0]:
            raise ValueError(
                f"adjacency has {adj.shape[1]} columns but x has {x.shape[0]} rows"
            )
        x2d = x.data.reshape(x.shape[0], -1)
        out = adj @ x2d
        self.save_for_backward(adj_t if adj_t is not None else adj.T.tocsr(), x.shape)
        return np.asarray(out).reshape((adj.shape[0],) + x.shape[1:])

    def backward(self, grad_out):
        adj_t, x_shape = self.saved
        g2d = grad_out.reshape(grad_out.shape[0], -1)
        grad_x = adj_t @ g2d
        return (np.asarray(grad_x).reshape(x_shape),)


class SegmentSum(Function):
    """Differentiable :func:`segment_sum_np`."""

    def forward(self, values: Tensor, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
        segment_ids = check_1d_int_array(segment_ids, "segment_ids", max_value=None)
        self.save_for_backward(segment_ids)
        return segment_sum_np(values.data, segment_ids, num_segments)

    def backward(self, grad_out):
        (segment_ids,) = self.saved
        return (grad_out[segment_ids],)


class SegmentMean(Function):
    """Differentiable per-segment mean (empty segments produce zeros)."""

    def forward(self, values: Tensor, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
        segment_ids = check_1d_int_array(segment_ids, "segment_ids", max_value=None)
        counts = np.maximum(
            np.bincount(segment_ids, minlength=num_segments), 1
        ).astype(values.data.dtype)
        self.save_for_backward(segment_ids, counts, values.data.ndim)
        return segment_sum_np(values.data, segment_ids, num_segments) / counts.reshape(
            (num_segments,) + (1,) * (values.data.ndim - 1)
        )

    def backward(self, grad_out):
        segment_ids, counts, ndim = self.saved
        scaled = grad_out / counts.reshape((len(counts),) + (1,) * (ndim - 1))
        return (scaled[segment_ids],)


class UMulESum(Function):
    """Weighted aggregation: ``out[d] = Σ_{e:(s→d)} w_e * x[s]``.

    ``x`` has shape ``(num_src, H, D)`` (or ``(num_src, D)``) and ``w`` has
    shape ``(E, H)`` (or ``(E,)``); gradients flow to both.  This is the core
    kernel of attention-based aggregation.
    """

    def forward(self, x: Tensor, w: Tensor, src: np.ndarray, dst: np.ndarray,
                num_dst: int) -> np.ndarray:
        x_data, w_data = x.data, w.data
        squeeze = False
        if x_data.ndim == 2:
            x_data = x_data[:, None, :]
            squeeze = True
        if w_data.ndim == 1:
            w_data = w_data[:, None]
        num_src, heads, dim = x_data.shape
        out = np.empty((num_dst, heads, dim), dtype=x_data.dtype)
        for h in range(heads):
            adj = sp.csr_matrix((w_data[:, h], (dst, src)), shape=(num_dst, num_src))
            out[:, h, :] = adj @ x_data[:, h, :]
        self.save_for_backward(x_data, w_data, src, dst, num_dst, squeeze,
                               x.shape, w.shape)
        return out[:, 0, :] if squeeze else out

    def backward(self, grad_out):
        x_data, w_data, src, dst, num_dst, squeeze, x_shape, w_shape = self.saved
        grad = grad_out[:, None, :] if squeeze else grad_out
        num_src, heads, dim = x_data.shape
        grad_x = np.empty_like(x_data)
        for h in range(heads):
            adj_t = sp.csr_matrix((w_data[:, h], (src, dst)), shape=(num_src, num_dst))
            grad_x[:, h, :] = adj_t @ grad[:, h, :]
        # grad_w[e, h] = <x[src_e, h], grad_out[dst_e, h]>  (an SDDMM)
        grad_w = np.einsum("ehd,ehd->eh", x_data[src], grad[dst])
        return grad_x.reshape(x_shape), grad_w.reshape(w_shape).astype(w_data.dtype)


class PoolAggregation(Function):
    """Element-wise max/min pooling over incoming edges.

    ``out[d] = op_{e:(s→d)} x[s]`` per feature dimension; destinations with
    no incoming edges yield ``0``.  The backward pass routes each output
    gradient to *every* source value attaining the extremum (the same
    subgradient convention as the distributed
    :class:`~repro.core.sage_dist.PoolingKernel`, so single-machine and SAR
    training stay bit-for-bit comparable).
    """

    def forward(self, x: Tensor, src: np.ndarray, dst: np.ndarray, num_dst: int,
                op: str) -> np.ndarray:
        if op not in ("max", "min"):
            raise ValueError(f"op must be 'max' or 'min', got {op!r}")
        data = x.data
        gathered = data[src]
        if op == "max":
            reduced = segment_max_np(gathered, dst, num_dst)
        else:
            reduced = segment_min_np(gathered, dst, num_dst)
        out = np.where(np.isfinite(reduced), reduced, 0.0).astype(data.dtype, copy=False)
        self.save_for_backward(data, src, dst, out, x.shape)
        return out

    def backward(self, grad_out):
        data, src, dst, out, x_shape = self.saved
        mask = data[src] == out[dst]
        contrib = np.where(mask, grad_out[dst], 0.0)
        grad_x = np.zeros(x_shape, dtype=grad_out.dtype)
        np.add.at(grad_x, src, contrib)
        return (grad_x,)


class EdgeSoftmax(Function):
    """Softmax over incoming edges of each destination node (DGL ``edge_softmax``)."""

    def forward(self, scores: Tensor, dst: np.ndarray, num_dst: int) -> np.ndarray:
        alpha = edge_softmax_np(scores.data, dst, num_dst)
        self.save_for_backward(alpha, dst, num_dst)
        return alpha

    def backward(self, grad_out):
        alpha, dst, num_dst = self.saved
        weighted = segment_sum_np(alpha * grad_out, dst, num_dst)
        return (alpha * (grad_out - weighted[dst]),)


# --------------------------------------------------------------------------- #
# functional wrappers
# --------------------------------------------------------------------------- #
def spmm(x: Tensor, adj: sp.spmatrix, adj_t: Optional[sp.spmatrix] = None) -> Tensor:
    return SpMM.apply(x, adj, adj_t)


def segment_sum(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    return SegmentSum.apply(values, np.asarray(segment_ids), num_segments)


def segment_mean(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    return SegmentMean.apply(values, np.asarray(segment_ids), num_segments)


def u_mul_e_sum(x: Tensor, w: Tensor, src, dst, num_dst: int) -> Tensor:
    return UMulESum.apply(x, w, np.asarray(src), np.asarray(dst), num_dst)


def pool_aggregate(x: Tensor, src, dst, num_dst: int, op: str = "max") -> Tensor:
    """Max/min pooling of source features into destination nodes."""
    return PoolAggregation.apply(x, np.asarray(src), np.asarray(dst), num_dst, op)


def edge_softmax(scores: Tensor, dst, num_dst: int) -> Tensor:
    return EdgeSoftmax.apply(scores, np.asarray(dst), num_dst)
