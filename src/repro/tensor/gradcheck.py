"""Numerical gradient checking.

Used heavily by the test suite to validate every autograd op, every GNN
layer, and — most importantly — that SAR's manual rematerialized backward
pass produces exactly the gradients of the mathematical loss.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], wrt: Tensor, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of the scalar ``fn()`` w.r.t. ``wrt``.

    ``fn`` must be a closure that re-evaluates the computation from the
    current value of ``wrt.data`` and returns a scalar tensor.
    """
    grad = np.zeros_like(wrt.data, dtype=np.float64)
    flat = wrt.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn().data)
        flat[i] = original - eps
        minus = float(fn().data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], tensors: Sequence[Tensor], eps: float = 1e-3,
                    atol: float = 1e-2, rtol: float = 1e-2) -> None:
    """Assert that autograd gradients match central differences.

    Parameters
    ----------
    fn:
        Closure returning a scalar :class:`Tensor`; called repeatedly.
    tensors:
        Tensors (with ``requires_grad=True``) whose gradients are checked.
    """
    for t in tensors:
        t.grad = None
    out = fn()
    out.backward()
    for t in tensors:
        if t.grad is None:
            raise AssertionError(f"No gradient was accumulated for tensor {t!r}")
        numeric = numerical_gradient(fn, t, eps=eps)
        analytic = t.grad.astype(np.float64)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"Gradient mismatch for {t!r}: max abs error {max_err:.3e}\n"
                f"analytic: {analytic.reshape(-1)[:8]}\nnumeric:  {numeric.reshape(-1)[:8]}"
            )
