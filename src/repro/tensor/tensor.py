"""A NumPy-backed reverse-mode automatic-differentiation engine.

This module is the library's substitute for PyTorch's tensor + Autograd
stack.  It provides:

* :class:`Tensor` — a dense array with an optional gradient and a pointer to
  the :class:`Function` that produced it,
* :class:`Function` — the base class for differentiable operations,
* :func:`no_grad` / :func:`grad_enabled` — the mechanism SAR's Algorithm 1
  relies on to *skip* recording the message-passing/aggregation part of the
  computational graph during the forward pass,
* a topological-order backward engine with optional graph freeing.

The design deliberately mirrors the PyTorch concepts the paper talks about
(saved tensors, the Autograd "gap" SAR introduces around the aggregation op,
re-injecting errors with ``tensor.backward(error)``), so the SAR algorithms
in :mod:`repro.core` read very close to the paper's pseudocode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.memory import active_tracker

DEFAULT_DTYPE = np.float32

_grad_state = threading.local()


def grad_enabled() -> bool:
    """Return whether operations record the autograd graph on this thread."""
    return getattr(_grad_state, "enabled", True)


def _set_grad_enabled(value: bool) -> None:
    _grad_state.enabled = value


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables autograd recording.

    SAR's forward pass (Algorithm 1) wraps the sequential aggregation loop in
    this context so that fetched remote features and per-partition messages
    never become part of the computational graph.
    """
    prev = grad_enabled()
    _set_grad_enabled(False)
    try:
        yield
    finally:
        _set_grad_enabled(prev)


@contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables autograd recording inside ``no_grad``."""
    prev = grad_enabled()
    _set_grad_enabled(True)
    try:
        yield
    finally:
        _set_grad_enabled(prev)


def _as_array(value: Any, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if dtype is not None:
        arr = arr.astype(dtype, copy=False)
    elif arr.dtype == np.float64:
        arr = arr.astype(DEFAULT_DTYPE)
    return arr


class Tensor:
    """A dense array node in the autograd graph.

    Parameters
    ----------
    data:
        Array-like.  Floating point data defaults to ``float32``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in error messages and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_ctx", "_tracked_bytes",
                 "_tracker", "__weakref__")

    def __init__(self, data: Any, requires_grad: bool = False, name: Optional[str] = None,
                 dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif arr.dtype == np.float64:
            arr = arr.astype(DEFAULT_DTYPE, copy=False)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self.name = name
        self._ctx: Optional["Function"] = None

        # Memory accounting: only count buffers this tensor owns.
        self._tracked_bytes = 0
        self._tracker = None
        tracker = active_tracker()
        if tracker is not None and arr.base is None and arr.size:
            self._tracked_bytes = int(arr.nbytes)
            self._tracker = tracker
            tracker.allocate(self._tracked_bytes)

    # ------------------------------------------------------------------ #
    # lifecycle / memory
    # ------------------------------------------------------------------ #
    def __del__(self):  # pragma: no cover - exercised indirectly
        try:
            if self._tracker is not None and self._tracked_bytes:
                self._tracker.release(self._tracked_bytes)
                self._tracker = None
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        name = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag}{name})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out.name = self.name
        out._ctx = None
        out._tracked_bytes = 0
        out._tracker = None
        return out

    def copy(self) -> "Tensor":
        """Return a detached deep copy (registered with the active tracker)."""
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def astype(self, dtype) -> "Tensor":
        from repro.tensor import ops

        return ops.cast(self, dtype)

    # ------------------------------------------------------------------ #
    # gradient handling
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into :attr:`grad`, allocating it if needed."""
        if grad.shape != self.data.shape:
            raise ValueError(
                f"Gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                + (f" for tensor {self.name!r}" if self.name else "")
            )
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[Union[np.ndarray, "Tensor"]] = None,
                 free_graph: bool = True) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the loss w.r.t. this tensor.  Defaults to ``1`` for
            scalar tensors (the usual ``loss.backward()`` call).
        free_graph:
            If ``True`` (default), the traversed graph is dismantled after
            the backward pass so saved activations can be freed immediately —
            this is what makes the end-of-forward peak the memory high-water
            mark, as in the paper's measurements.
        """
        if not self.requires_grad:
            raise RuntimeError("Called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        elif isinstance(grad, Tensor):
            grad = grad.data
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        tensor_by_id = {id(t): t for t in topo}

        for tensor in topo:
            ctx = tensor._ctx
            out_grad = grads.pop(id(tensor), None)
            if out_grad is None:
                continue
            if ctx is None or tensor.is_leaf():
                tensor.accumulate_grad(out_grad)
                continue
            parent_grads = ctx.backward(out_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            if len(parent_grads) != len(ctx.parents):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(parent_grads)} gradients "
                    f"for {len(ctx.parents)} parents"
                )
            for parent, pgrad in zip(ctx.parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad, dtype=parent.data.dtype)
                if pgrad.shape != parent.data.shape:
                    raise RuntimeError(
                        f"{type(ctx).__name__}.backward produced gradient of shape "
                        f"{pgrad.shape} for parent of shape {parent.data.shape}"
                    )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
            if free_graph:
                ctx.release()
                tensor._ctx = None

        # Any remaining grads belong to leaves reached multiple times.
        for key, remaining in grads.items():
            tensor = tensor_by_id.get(key)
            if tensor is not None and tensor.requires_grad:
                tensor.accumulate_grad(remaining)

    def is_leaf(self) -> bool:
        """Return True when this tensor was not produced by a Function."""
        return self._ctx is None

    # ------------------------------------------------------------------ #
    # operator overloads (implemented in repro.tensor.ops)
    # ------------------------------------------------------------------ #
    def _ops(self):
        from repro.tensor import ops

        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._ops().sub(self, other)

    def __rsub__(self, other):
        return self._ops().sub(other, self)

    def __mul__(self, other):
        return self._ops().mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._ops().div(self, other)

    def __rtruediv__(self, other):
        return self._ops().div(other, self)

    def __neg__(self):
        return self._ops().neg(self)

    def __pow__(self, exponent):
        return self._ops().pow(self, exponent)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __getitem__(self, key):
        ops = self._ops()
        if isinstance(key, (list, np.ndarray)) and np.asarray(key).dtype != bool:
            return ops.gather(self, np.asarray(key))
        return ops.slice_(self, key)

    # reductions / shape helpers --------------------------------------- #
    def sum(self, axis=None, keepdims: bool = False):
        return self._ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        return self._ops().mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        return self._ops().max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False):
        return self._ops().min(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._ops().reshape(self, shape)

    def transpose(self, axes=None):
        return self._ops().transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def exp(self):
        return self._ops().exp(self)

    def log(self):
        return self._ops().log(self)

    def sqrt(self):
        return self._ops().sqrt(self)


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (returning a raw ``np.ndarray``) and
    :meth:`backward` (returning one gradient array — or ``None`` — per parent
    tensor, in the order the parents were passed to :meth:`apply`).
    """

    def __init__(self):
        self.parents: Tuple[Tensor, ...] = ()
        self.saved: Tuple[Any, ...] = ()
        self.needs_grad: bool = False

    # -- construction --------------------------------------------------- #
    @classmethod
    def apply(cls, *args, **kwargs) -> Tensor:
        fn = cls()
        tensor_args = tuple(a for a in args if isinstance(a, Tensor))
        fn.needs_grad = grad_enabled() and any(t.requires_grad for t in tensor_args)
        out_data = fn.forward(*args, **kwargs)
        out = Tensor(out_data, requires_grad=fn.needs_grad)
        if fn.needs_grad:
            fn.parents = tensor_args
            out._ctx = fn
        else:
            fn.saved = ()
        return out

    def save_for_backward(self, *items: Any) -> None:
        """Store arbitrary objects needed by :meth:`backward`.

        Saving is skipped entirely when the output does not require grad, so
        a ``no_grad`` forward (as in SAR's Algorithm 1) holds no references.
        """
        if self.needs_grad:
            self.saved = items

    def release(self) -> None:
        """Drop saved state and parent references (frees activations)."""
        self.saved = ()
        self.parents = ()

    # -- to be implemented by subclasses -------------------------------- #
    def forward(self, *args, **kwargs) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray):  # pragma: no cover - abstract
        raise NotImplementedError


def _topological_order(root: Tensor) -> List[Tensor]:
    """Return tensors reachable from ``root`` in reverse-topological order."""
    order: List[Tensor] = []
    visited: set[int] = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        if tensor._ctx is not None:
            for parent in tensor._ctx.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
    order.reverse()
    return order


# --------------------------------------------------------------------------- #
# convenience constructors
# --------------------------------------------------------------------------- #
def tensor(data: Any, requires_grad: bool = False, name: Optional[str] = None,
           dtype=None) -> Tensor:
    """Create a :class:`Tensor` (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad, name=name, dtype=dtype)


def zeros(shape: Sequence[int] | int, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape: Sequence[int] | int, requires_grad: bool = False, dtype=DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(t.data), requires_grad=requires_grad)


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones_like(t.data), requires_grad=requires_grad)
