"""Parameter initializers (Glorot / Kaiming / constant).

Initializers return plain NumPy arrays; :class:`repro.nn.module.Parameter`
wraps them into gradient-tracking tensors.  All randomness comes from the
library-wide generator (see :mod:`repro.utils.seed`).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.tensor.tensor import DEFAULT_DTYPE
from repro.utils.seed import get_rng


def _fan_in_fan_out(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("Initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: Sequence[int], gain: float = 1.0, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return get_rng().uniform(-limit, limit, size=shape).astype(dtype)


def xavier_normal(shape: Sequence[int], gain: float = 1.0, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (get_rng().normal(0.0, std, size=shape)).astype(dtype)


def kaiming_uniform(shape: Sequence[int], a: float = math.sqrt(5), dtype=DEFAULT_DTYPE) -> np.ndarray:
    """He/Kaiming uniform initialization (PyTorch ``Linear`` default)."""
    fan_in, _ = _fan_in_fan_out(shape)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return get_rng().uniform(-bound, bound, size=shape).astype(dtype)


def uniform(shape: Sequence[int], low: float = -0.1, high: float = 0.1,
            dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return get_rng().uniform(low, high, size=shape).astype(dtype)


def normal(shape: Sequence[int], mean: float = 0.0, std: float = 0.01,
           dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Gaussian initialization."""
    return get_rng().normal(mean, std, size=shape).astype(dtype)


def zeros(shape: Sequence[int], dtype=DEFAULT_DTYPE) -> np.ndarray:
    """All-zeros initialization (biases, BatchNorm shift)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape: Sequence[int], dtype=DEFAULT_DTYPE) -> np.ndarray:
    """All-ones initialization (BatchNorm scale)."""
    return np.ones(shape, dtype=dtype)
