"""Optimizers and learning-rate schedules.

The paper trains for 100 epochs with Adam and a decaying learning rate; the
trainer in :mod:`repro.training.trainer` combines :class:`Adam` with
:class:`StepDecay` or :class:`CosineDecay`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("Optimizer received an empty parameter list")
        for p in self.params:
            if not isinstance(p, Tensor) or not p.requires_grad:
                raise TypeError("Optimizer parameters must be Tensors with requires_grad=True")
        if lr <= 0:
            raise ValueError(f"Learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.initial_lr = float(lr)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> Dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]


# --------------------------------------------------------------------------- #
# sparse optimizers (trainable feature stores)
# --------------------------------------------------------------------------- #
class SparseOptimizer:
    """Base optimizer over a *trainable feature store* instead of Tensors.

    A trainable store (``repro.store.SparseEmbeddingStore``) accumulates
    per-row gradients during backward; :meth:`step` pulls them **coalesced**
    (duplicate rows pre-summed), updates only the touched rows and their
    per-row optimizer state, and lets the store bump its version so
    downstream caches invalidate.  Cost per step is ``O(touched_rows)``
    regardless of table height — the whole point versus putting the table
    into a dense optimizer.

    The store is duck-typed (``pending_gradients`` / ``clear_pending`` /
    ``apply_row_update`` / ``trainable``), keeping the tensor layer free of a
    dependency on :mod:`repro.store`.  The ``lr`` attribute and
    ``initial_lr`` match :class:`Optimizer`, so the :class:`LRScheduler`
    family drives sparse optimizers unchanged.
    """

    _REQUIRED = ("pending_gradients", "clear_pending", "apply_row_update")

    def __init__(self, store, lr: float):
        if not getattr(store, "trainable", False):
            raise TypeError(
                f"{type(store).__name__} is not a trainable feature store"
            )
        for attr in self._REQUIRED:
            if not callable(getattr(store, attr, None)):
                raise TypeError(
                    f"trainable store must provide {attr}(); "
                    f"{type(store).__name__} does not"
                )
        if lr <= 0:
            raise ValueError(f"Learning rate must be positive, got {lr}")
        self.store = store
        self.lr = float(lr)
        self.initial_lr = float(lr)
        self.steps_taken = 0
        self.rows_updated = 0

    def zero_grad(self) -> None:
        """Drop the store's pending gradients."""
        self.store.clear_pending()

    def step(self, grad_scale: float = 1.0) -> int:
        """Apply one update; returns the number of rows touched.

        ``grad_scale`` multiplies the pending gradients before the update —
        the trainers pass ``1 / batch_count`` so the sparse rows see the same
        mean-loss scaling the dense parameters get via ``param.grad /=
        count``.
        """
        ids, grads = self.store.pending_gradients()
        if len(ids):
            if grad_scale != 1.0:
                grads = grads * grads.dtype.type(grad_scale)
            delta = self._delta(ids, grads)
            self.store.apply_row_update(ids, delta)
            self.steps_taken += 1
            self.rows_updated += len(ids)
        self.store.clear_pending()
        return len(ids)

    def _delta(self, ids: np.ndarray, grads: np.ndarray) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def state_dict(self) -> Dict:
        return {"lr": self.lr, "steps_taken": self.steps_taken}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.steps_taken = int(state.get("steps_taken", 0))


class SparseSGD(SparseOptimizer):
    """Row-sparse SGD: only rows with pending gradients move.

    With ``momentum``, velocity is kept per row and decayed *only when the
    row is touched* — the standard sparse-momentum semantics (a row's
    velocity is frozen, not decayed, while the row sits out a batch).
    ``weight_decay`` likewise applies only to touched rows.
    """

    def __init__(self, store, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(store, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = (
            np.zeros((store.num_rows, store.dim), dtype=store.dtype)
            if momentum else None
        )

    def _delta(self, ids: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            grads = grads + self.weight_decay * self.store.gather(ids)
        if self._velocity is not None:
            vel = self.momentum * self._velocity[ids] + grads
            self._velocity[ids] = vel
            grads = vel
        return (-self.lr * grads).astype(self.store.dtype, copy=False)


class SparseAdam(SparseOptimizer):
    """Row-sparse Adam with **per-row** step counts and bias correction.

    Each row keeps its own ``t`` (number of times it has been updated), so
    the bias correction ``1 - beta^t`` is exact for rows that are touched
    rarely — a global step count would under-correct cold rows' moments and
    make early updates on them too small.  Moments of untouched rows are
    left untouched (no decay while absent), matching ``torch.optim.
    SparseAdam``.
    """

    def __init__(self, store, lr: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(store, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self._m = np.zeros((store.num_rows, store.dim), dtype=np.float32)
        self._v = np.zeros((store.num_rows, store.dim), dtype=np.float32)
        self._t = np.zeros(store.num_rows, dtype=np.int64)

    def _delta(self, ids: np.ndarray, grads: np.ndarray) -> np.ndarray:
        grads = grads.astype(np.float32, copy=False)
        self._t[ids] += 1
        t = self._t[ids]
        m = self.beta1 * self._m[ids] + (1.0 - self.beta1) * grads
        v = self.beta2 * self._v[ids] + (1.0 - self.beta2) * grads * grads
        self._m[ids] = m
        self._v[ids] = v
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        m_hat = m / bias1[:, None]
        v_hat = v / bias2[:, None]
        delta = -self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return delta.astype(self.store.dtype, copy=False)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "steps_taken": self.steps_taken,
            "m": self._m.copy(),
            "v": self._v.copy(),
            "t": self._t.copy(),
        }

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self._m = np.asarray(state["m"], dtype=np.float32).copy()
        self._v = np.asarray(state["v"], dtype=np.float32).copy()
        self._t = np.asarray(state["t"], dtype=np.int64).copy()


# --------------------------------------------------------------------------- #
# learning-rate schedules
# --------------------------------------------------------------------------- #
class LRScheduler:
    """Base class: call :meth:`step` once per epoch *after* ``optimizer.step``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.initial_lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 30, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.98):
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)


class CosineDecay(LRScheduler):
    """Cosine annealing from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
