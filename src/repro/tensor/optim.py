"""Optimizers and learning-rate schedules.

The paper trains for 100 epochs with Adam and a decaying learning rate; the
trainer in :mod:`repro.training.trainer` combines :class:`Adam` with
:class:`StepDecay` or :class:`CosineDecay`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimizer holding a flat list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("Optimizer received an empty parameter list")
        for p in self.params:
            if not isinstance(p, Tensor) or not p.requires_grad:
                raise TypeError("Optimizer parameters must be Tensors with requires_grad=True")
        if lr <= 0:
            raise ValueError(f"Learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.initial_lr = float(lr)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> Dict:
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: Sequence[float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "step_count": self._step_count,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]


# --------------------------------------------------------------------------- #
# learning-rate schedules
# --------------------------------------------------------------------------- #
class LRScheduler:
    """Base class: call :meth:`step` once per epoch *after* ``optimizer.step``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.initial_lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 30, gamma: float = 0.5):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.98):
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** epoch)


class CosineDecay(LRScheduler):
    """Cosine annealing from the base learning rate to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
