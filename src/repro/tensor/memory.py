"""Per-worker memory accounting.

The paper's headline result is a *memory* scaling property: with SAR the peak
memory per worker scales as ``2/N`` (``3/N`` with prefetching) in the number
of workers ``N``, while vanilla domain-parallel training keeps the entire
fetched halo plus every per-edge intermediate alive until the backward pass.

The original system measures process peak RSS on each machine.  Here every
worker runs inside the same process (as a thread of the simulated cluster),
so instead we measure **live tensor bytes** exactly:

* every :class:`~repro.tensor.tensor.Tensor` that owns its buffer registers
  its ``nbytes`` with the *active* :class:`MemoryTracker` when it is created,
* and releases the same amount when it is garbage collected.

Each worker installs its own tracker (the active tracker is thread-local), so
a worker's peak only reflects tensors allocated by that worker — exactly the
per-machine quantity the paper reports.  Views (reshape/transpose/slices)
share their parent's buffer and are not double counted.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

_local = threading.local()


def _tracker_stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@dataclass
class MemoryTracker:
    """Tracks live bytes and peak live bytes of tensors allocated under it.

    Attributes
    ----------
    label:
        Human-readable label (e.g. ``"worker-3"``); used in reports.
    current_bytes:
        Bytes of currently live tracked tensors.
    peak_bytes:
        High-water mark of ``current_bytes`` since the last
        :meth:`reset_peak`.
    """

    label: str = "default"
    current_bytes: int = 0
    peak_bytes: int = 0
    total_allocated_bytes: int = 0
    num_allocations: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def allocate(self, nbytes: int) -> None:
        with self._lock:
            self.current_bytes += int(nbytes)
            self.total_allocated_bytes += int(nbytes)
            self.num_allocations += 1
            if self.current_bytes > self.peak_bytes:
                self.peak_bytes = self.current_bytes

    def release(self, nbytes: int) -> None:
        with self._lock:
            self.current_bytes -= int(nbytes)

    def reset_peak(self) -> None:
        """Reset the high-water mark to the current live size."""
        with self._lock:
            self.peak_bytes = self.current_bytes

    def reset(self) -> None:
        """Fully reset counters (live tensors are forgotten, use with care)."""
        with self._lock:
            self.current_bytes = 0
            self.peak_bytes = 0
            self.total_allocated_bytes = 0
            self.num_allocations = 0

    @property
    def peak_mb(self) -> float:
        """Peak live tensor memory in megabytes."""
        return self.peak_bytes / (1024.0 * 1024.0)

    @property
    def current_mb(self) -> float:
        """Current live tensor memory in megabytes."""
        return self.current_bytes / (1024.0 * 1024.0)

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict snapshot useful for benchmark reports."""
        return {
            "label": self.label,
            "current_bytes": self.current_bytes,
            "peak_bytes": self.peak_bytes,
            "peak_mb": self.peak_mb,
            "total_allocated_bytes": self.total_allocated_bytes,
            "num_allocations": self.num_allocations,
        }


def active_tracker() -> Optional[MemoryTracker]:
    """Return the tracker active on the calling thread, or ``None``."""
    stack = _tracker_stack()
    return stack[-1] if stack else None


@contextmanager
def track_memory(tracker: MemoryTracker) -> Iterator[MemoryTracker]:
    """Make ``tracker`` the active tracker for the calling thread.

    Trackers nest; only the innermost tracker receives allocations.
    """
    stack = _tracker_stack()
    stack.append(tracker)
    try:
        yield tracker
    finally:
        stack.pop()


@contextmanager
def no_tracking() -> Iterator[None]:
    """Temporarily disable memory tracking on the calling thread.

    Used for bookkeeping buffers (e.g. the communicator's staging copies on
    the *receiving* side are counted, but the sender's published buffer is
    attributed to the sender, not to whoever reads it).
    """
    stack = _tracker_stack()
    saved = list(stack)
    stack.clear()
    try:
        yield
    finally:
        stack.extend(saved)
