"""Neural-network functional operations (activations, losses, dropout).

These complement the primitive ops in :mod:`repro.tensor.ops` with the fused
operations GNN layers need: numerically stable softmax / log-softmax /
cross-entropy, dropout with an explicit training flag, and the activation
functions used by GraphSage, GAT and R-GCN.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Function, Tensor
from repro.utils.seed import get_rng
from repro.utils.validation import check_probability


# --------------------------------------------------------------------------- #
# activations
# --------------------------------------------------------------------------- #
class ReLU(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        mask = a.data > 0
        self.save_for_backward(mask)
        return a.data * mask

    def backward(self, grad_out):
        (mask,) = self.saved
        return (grad_out * mask,)


class LeakyReLU(Function):
    def forward(self, a: Tensor, negative_slope: float = 0.2) -> np.ndarray:
        mask = a.data > 0
        self.save_for_backward(mask, negative_slope)
        return np.where(mask, a.data, negative_slope * a.data)

    def backward(self, grad_out):
        mask, slope = self.saved
        return (np.where(mask, grad_out, slope * grad_out),)


class Sigmoid(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a.data))
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * out * (1.0 - out),)


class Tanh(Function):
    def forward(self, a: Tensor) -> np.ndarray:
        out = np.tanh(a.data)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * (1.0 - out * out),)


class ELU(Function):
    def forward(self, a: Tensor, alpha: float = 1.0) -> np.ndarray:
        mask = a.data > 0
        neg = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
        out = np.where(mask, a.data, neg)
        self.save_for_backward(mask, neg, alpha)
        return out

    def backward(self, grad_out):
        mask, neg, alpha = self.saved
        return (np.where(mask, grad_out, grad_out * (neg + alpha)),)


def relu(a: Tensor) -> Tensor:
    return ReLU.apply(a)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    return LeakyReLU.apply(a, negative_slope)


def sigmoid(a: Tensor) -> Tensor:
    return Sigmoid.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def elu(a: Tensor, alpha: float = 1.0) -> Tensor:
    return ELU.apply(a, alpha)


# --------------------------------------------------------------------------- #
# softmax family
# --------------------------------------------------------------------------- #
class Softmax(Function):
    def forward(self, a: Tensor, axis: int = -1) -> np.ndarray:
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad_out):
        out, axis = self.saved
        dot = (grad_out * out).sum(axis=axis, keepdims=True)
        return (out * (grad_out - dot),)


class LogSoftmax(Function):
    def forward(self, a: Tensor, axis: int = -1) -> np.ndarray:
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - logsumexp
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad_out):
        out, axis = self.saved
        softmax = np.exp(out)
        return (grad_out - softmax * grad_out.sum(axis=axis, keepdims=True),)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return Softmax.apply(a, axis)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return LogSoftmax.apply(a, axis)


# --------------------------------------------------------------------------- #
# dropout
# --------------------------------------------------------------------------- #
class Dropout(Function):
    def forward(self, a: Tensor, p: float, training: bool) -> np.ndarray:
        p = check_probability(p, "dropout probability")
        if not training or p == 0.0:
            self.save_for_backward(None)
            return a.data
        keep = 1.0 - p
        mask = (get_rng().random(a.shape) < keep).astype(a.data.dtype) / keep
        self.save_for_backward(mask)
        return a.data * mask

    def backward(self, grad_out):
        (mask,) = self.saved
        if mask is None:
            return (grad_out,)
        return (grad_out * mask,)


def dropout(a: Tensor, p: float = 0.5, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept units by ``1 / (1 - p)`` during training."""
    return Dropout.apply(a, p, training)


# --------------------------------------------------------------------------- #
# losses
# --------------------------------------------------------------------------- #
class CrossEntropy(Function):
    """Softmax cross-entropy over integer class labels.

    ``reduction`` may be ``"mean"``, ``"sum"`` or ``"none"``.  The SAR
    distributed trainer uses ``reduction="sum"`` locally and divides by the
    *global* number of labelled nodes after the parameter-gradient allreduce,
    so the distributed loss matches single-machine training exactly.
    """

    def forward(self, logits: Tensor, labels: np.ndarray, reduction: str = "mean") -> np.ndarray:
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"labels must be 1-D with length {logits.shape[0]}, got shape {labels.shape}"
            )
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"Unknown reduction {reduction!r}")
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - logsumexp
        n = logits.shape[0]
        losses = -log_probs[np.arange(n), labels]
        self.save_for_backward(log_probs, labels, reduction)
        if reduction == "mean":
            return np.asarray(losses.mean(), dtype=logits.dtype)
        if reduction == "sum":
            return np.asarray(losses.sum(), dtype=logits.dtype)
        return losses.astype(logits.dtype)

    def backward(self, grad_out):
        log_probs, labels, reduction = self.saved
        n = log_probs.shape[0]
        grad = np.exp(log_probs)
        grad[np.arange(n), labels] -= 1.0
        if reduction == "mean":
            grad *= np.asarray(grad_out) / n
        elif reduction == "sum":
            grad *= np.asarray(grad_out)
        else:
            grad *= np.asarray(grad_out)[:, None]
        return (grad,)


def cross_entropy(logits: Tensor, labels, reduction: str = "mean") -> Tensor:
    return CrossEntropy.apply(logits, np.asarray(labels), reduction)


def nll_loss(log_probs: Tensor, labels, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood over precomputed log-probabilities.

    Implemented with a one-hot mask so it reuses the primitive ops; prefer
    :func:`cross_entropy` (a fused op) in performance-sensitive paths.
    """
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.shape[0]
    onehot = np.zeros(log_probs.shape, dtype=log_probs.dtype)
    onehot[np.arange(n), labels] = 1.0
    per_node = -(log_probs * Tensor(onehot)).sum(axis=1)
    if reduction == "mean":
        return per_node.mean()
    if reduction == "sum":
        return per_node.sum()
    return per_node


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches ``labels`` (not differentiable)."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    labels = np.asarray(labels)
    if data.shape[0] == 0:
        return float("nan")
    return float((data.argmax(axis=1) == labels).mean())
