"""Graph data structure.

A :class:`Graph` stores a directed edge list in COO form (``src``/``dst``
arrays) together with named node-data arrays, and lazily caches the CSR
aggregation matrices used by the message-passing kernels.  Messages flow
from ``src`` to ``dst`` — i.e. node ``i`` aggregates over its *in*-edges,
matching the paper's formulation ``h_i = f(Agg({m_{j→i} : j ∈ N(i)}))``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor import edge_plan as edge_plan_mod
from repro.tensor.edge_plan import EdgePlan
from repro.utils.validation import check_1d_int_array, check_positive_int


class Graph:
    """A directed graph with node data.

    Parameters
    ----------
    num_nodes:
        Number of nodes (node ids are ``0 … num_nodes-1``).
    src, dst:
        Edge endpoint arrays of equal length; edge ``e`` carries messages
        from ``src[e]`` to ``dst[e]``.
    ndata:
        Optional mapping of named per-node arrays (features, labels, masks);
        every array's first dimension must equal ``num_nodes``.
    """

    def __init__(self, num_nodes: int, src, dst,
                 ndata: Optional[Dict[str, np.ndarray]] = None):
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.src = check_1d_int_array(src, "src", max_value=self.num_nodes)
        self.dst = check_1d_int_array(dst, "dst", max_value=self.num_nodes)
        if len(self.src) != len(self.dst):
            raise ValueError(
                f"src and dst must have equal length, got {len(self.src)} and {len(self.dst)}"
            )
        self.ndata: Dict[str, np.ndarray] = {}
        if ndata:
            for key, value in ndata.items():
                self.set_ndata(key, value)
        self._adj_cache: Dict[Tuple[bool, str], sp.csr_matrix] = {}
        self._plan: Optional[EdgePlan] = None

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        return len(self.src)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"

    def set_ndata(self, key: str, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.shape[0] != self.num_nodes:
            raise ValueError(
                f"ndata[{key!r}] first dimension must be {self.num_nodes}, got {value.shape[0]}"
            )
        self.ndata[key] = value

    # ------------------------------------------------------------------ #
    # the edge plan (sort-once/reduce-many kernel layer)
    # ------------------------------------------------------------------ #
    def plan(self) -> Optional[EdgePlan]:
        """The graph's :class:`~repro.tensor.edge_plan.EdgePlan`, built lazily.

        The plan caches the destination-sorted edge order and CSR structures
        that every message-passing kernel executes through; after the first
        call no training iteration derives sparsity again.  Returns ``None``
        while plans are globally disabled
        (:func:`repro.tensor.edge_plan.plans_disabled`), which switches the
        layers to their naive reference kernels.
        """
        if not edge_plan_mod.plans_enabled():
            return None
        if self._plan is None:
            self._plan = EdgePlan(self.src, self.dst, self.num_nodes, self.num_nodes)
        return self._plan

    # ------------------------------------------------------------------ #
    # degrees and adjacency
    # ------------------------------------------------------------------ #
    def in_degrees(self) -> np.ndarray:
        """Number of in-edges per node."""
        return np.bincount(self.dst, minlength=self.num_nodes).astype(np.int64)

    def out_degrees(self) -> np.ndarray:
        """Number of out-edges per node."""
        return np.bincount(self.src, minlength=self.num_nodes).astype(np.int64)

    def adjacency(self, transpose: bool = False, normalization: str = "none") -> sp.csr_matrix:
        """Return the (num_nodes × num_nodes) aggregation matrix.

        ``A[d, s] = 1`` for every edge ``s → d`` (parallel edges accumulate),
        so ``A @ X`` computes sum aggregation over in-neighbours.

        Parameters
        ----------
        transpose:
            Return :math:`A^T` (used for the backward pass of SpMM).
        normalization:
            ``"none"`` (sum), ``"mean"`` (rows divided by in-degree) or
            ``"sym"`` (:math:`D^{-1/2} A D^{-1/2}`, used by C&S propagation).
        """
        if normalization not in ("none", "mean", "sym"):
            raise ValueError(f"Unknown normalization {normalization!r}")
        key = (transpose, normalization)
        if key not in self._adj_cache:
            data = np.ones(self.num_edges, dtype=np.float32)
            adj = sp.csr_matrix(
                (data, (self.dst, self.src)), shape=(self.num_nodes, self.num_nodes)
            )
            if normalization == "mean":
                deg = np.maximum(self.in_degrees().astype(np.float32), 1.0)
                adj = sp.diags(1.0 / deg) @ adj
            elif normalization == "sym":
                deg_in = np.maximum(self.in_degrees().astype(np.float32), 1.0)
                deg_out = np.maximum(self.out_degrees().astype(np.float32), 1.0)
                adj = sp.diags(deg_in ** -0.5) @ adj @ sp.diags(deg_out ** -0.5)
            adj = adj.tocsr()
            self._adj_cache[(False, normalization)] = adj
            self._adj_cache[(True, normalization)] = adj.T.tocsr()
        return self._adj_cache[key]

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def add_self_loops(self) -> "Graph":
        """Return a new graph with one ``i → i`` edge added for every node."""
        loop = np.arange(self.num_nodes, dtype=np.int64)
        return Graph(
            self.num_nodes,
            np.concatenate([self.src, loop]),
            np.concatenate([self.dst, loop]),
            ndata=dict(self.ndata),
        )

    def remove_self_loops(self) -> "Graph":
        """Return a new graph without ``i → i`` edges."""
        keep = self.src != self.dst
        return Graph(self.num_nodes, self.src[keep], self.dst[keep], ndata=dict(self.ndata))

    def reverse(self) -> "Graph":
        """Return the graph with every edge direction flipped."""
        return Graph(self.num_nodes, self.dst.copy(), self.src.copy(), ndata=dict(self.ndata))

    def to_bidirected(self) -> "Graph":
        """Return a graph containing both directions of every edge (deduplicated)."""
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        return Graph(self.num_nodes, src, dst, ndata=dict(self.ndata)).coalesce()

    def coalesce(self) -> "Graph":
        """Return a copy with duplicate edges removed."""
        if self.num_edges == 0:
            return Graph(self.num_nodes, self.src, self.dst, ndata=dict(self.ndata))
        keys = self.src.astype(np.int64) * self.num_nodes + self.dst
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        return Graph(
            self.num_nodes, self.src[unique_idx], self.dst[unique_idx], ndata=dict(self.ndata)
        )

    def is_bidirected(self) -> bool:
        """Check whether every edge has a reverse counterpart."""
        fwd = set(zip(self.src.tolist(), self.dst.tolist()))
        return all((d, s) in fwd for s, d in fwd)

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source endpoints of the in-edges of ``node``."""
        return self.src[self.dst == node]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Destination endpoints of the out-edges of ``node``."""
        return self.dst[self.src == node]

    # ------------------------------------------------------------------ #
    # subgraphs
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes) -> Tuple["Graph", np.ndarray]:
        """Node-induced subgraph.

        Returns the subgraph (with nodes relabelled ``0 … len(nodes)-1`` in
        the order given) and the array of original node ids, so callers can
        map features and results back and forth.
        """
        nodes = check_1d_int_array(nodes, "nodes", max_value=self.num_nodes)
        lookup = np.full(self.num_nodes, -1, dtype=np.int64)
        lookup[nodes] = np.arange(len(nodes))
        mask = (lookup[self.src] >= 0) & (lookup[self.dst] >= 0)
        sub_ndata = {k: v[nodes] for k, v in self.ndata.items()}
        sub = Graph(
            max(len(nodes), 1),
            lookup[self.src[mask]],
            lookup[self.dst[mask]],
            ndata=sub_ndata if len(nodes) else None,
        )
        return sub, nodes

    def edge_subgraph_arrays(self, edge_mask: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (src, dst) arrays of the edges selected by ``edge_mask``."""
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != (self.num_edges,):
            raise ValueError(
                f"edge_mask must have shape ({self.num_edges},), got {edge_mask.shape}"
            )
        return self.src[edge_mask], self.dst[edge_mask]

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scipy(cls, adj: sp.spmatrix, ndata: Optional[Dict[str, np.ndarray]] = None) -> "Graph":
        """Build a graph from a sparse adjacency where ``adj[d, s] != 0`` is an edge."""
        coo = adj.tocoo()
        return cls(adj.shape[0], coo.col.astype(np.int64), coo.row.astype(np.int64), ndata=ndata)

    @classmethod
    def from_edge_list(cls, num_nodes: int, edges: Iterable[Tuple[int, int]],
                       ndata: Optional[Dict[str, np.ndarray]] = None) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        edges = list(edges)
        if edges:
            src, dst = zip(*edges)
        else:
            src, dst = [], []
        return cls(num_nodes, np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64),
                   ndata=ndata)
