"""Random graph generators.

The synthetic datasets (``repro.datasets``) are built on the stochastic
block model (SBM): graph communities correspond to class labels, which gives
the homophily that GraphSage/GAT, label augmentation, and Correct & Smooth
all rely on — mirroring the structure of the OGB node-classification graphs
used in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.utils.seed import temp_seed
from repro.utils.validation import check_positive_int, check_probability


def _sample_block_edges(rng: np.random.Generator, rows: np.ndarray, cols: np.ndarray,
                        prob: float, same_block: bool) -> tuple[np.ndarray, np.ndarray]:
    """Sample edges between two node sets without materializing all pairs."""
    possible = len(rows) * len(cols)
    if possible == 0 or prob <= 0.0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    count = rng.binomial(possible, prob)
    if count == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    src = rows[rng.integers(0, len(rows), size=count)]
    dst = cols[rng.integers(0, len(cols), size=count)]
    if same_block:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    return src, dst


def stochastic_block_model(block_sizes: Sequence[int], p_in: float, p_out: float,
                           seed: Optional[int] = None,
                           bidirected: bool = True) -> tuple[Graph, np.ndarray]:
    """Generate an SBM graph.

    Parameters
    ----------
    block_sizes:
        Number of nodes in each block (community).
    p_in, p_out:
        Within-block and between-block edge probabilities.
    bidirected:
        If True (default) every sampled edge is added in both directions.

    Returns
    -------
    (graph, block_assignment):
        The generated graph and the block index of every node.
    """
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    block_sizes = [check_positive_int(s, "block size") for s in block_sizes]
    num_nodes = int(sum(block_sizes))
    blocks = np.repeat(np.arange(len(block_sizes)), block_sizes)
    offsets = np.concatenate([[0], np.cumsum(block_sizes)])

    srcs, dsts = [], []
    with temp_seed(seed) as rng:
        for i in range(len(block_sizes)):
            rows = np.arange(offsets[i], offsets[i + 1])
            for j in range(i, len(block_sizes)):
                cols = np.arange(offsets[j], offsets[j + 1])
                prob = p_in if i == j else p_out
                s, d = _sample_block_edges(rng, rows, cols, prob, same_block=(i == j))
                srcs.append(s)
                dsts.append(d)
    src = np.concatenate(srcs) if srcs else np.array([], dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.array([], dtype=np.int64)
    graph = Graph(num_nodes, src, dst)
    graph = graph.to_bidirected() if bidirected else graph.coalesce()
    return graph, blocks


def erdos_renyi(num_nodes: int, avg_degree: float, seed: Optional[int] = None,
                bidirected: bool = True) -> Graph:
    """Erdős–Rényi style random graph with a target average degree."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    num_edges = int(num_nodes * avg_degree / (2 if bidirected else 1))
    with temp_seed(seed) as rng:
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    graph = Graph(num_nodes, src[keep], dst[keep])
    return graph.to_bidirected() if bidirected else graph.coalesce()


def barabasi_albert(num_nodes: int, attach: int = 3, seed: Optional[int] = None) -> Graph:
    """Preferential-attachment graph (power-law degree distribution).

    Each new node attaches to ``attach`` existing nodes chosen with
    probability proportional to their current degree; the result is returned
    bidirected.  Used by robustness tests for skewed partitions.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    attach = check_positive_int(attach, "attach")
    if num_nodes <= attach:
        raise ValueError("num_nodes must exceed attach")
    with temp_seed(seed) as rng:
        # ``attachment_pool`` holds each node id once per incident edge, so
        # uniform sampling from it is degree-proportional sampling.
        attachment_pool: list[int] = list(range(attach))
        src_list, dst_list = [], []
        for new_node in range(attach, num_nodes):
            chosen = rng.choice(attachment_pool, size=attach, replace=True)
            for target in np.unique(chosen):
                src_list.append(new_node)
                dst_list.append(int(target))
                attachment_pool.append(int(target))
                attachment_pool.append(new_node)
    graph = Graph(num_nodes, np.asarray(src_list), np.asarray(dst_list))
    return graph.to_bidirected()


def ring_graph(num_nodes: int) -> Graph:
    """Deterministic bidirected ring — handy for exactness unit tests."""
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    nodes = np.arange(num_nodes, dtype=np.int64)
    nxt = (nodes + 1) % num_nodes
    return Graph(num_nodes, np.concatenate([nodes, nxt]), np.concatenate([nxt, nodes]))


def star_graph(num_leaves: int) -> Graph:
    """Deterministic star (hub = node 0) — a worst case for partition balance."""
    num_leaves = check_positive_int(num_leaves, "num_leaves")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    return Graph(num_leaves + 1, np.concatenate([leaves, hub]), np.concatenate([hub, leaves]))
