"""Graph substrate: data structures, generators, and MFG utilities."""

from repro.graph.graph import Graph
from repro.graph.hetero import HeteroGraph
from repro.graph.generators import (
    stochastic_block_model,
    erdos_renyi,
    barabasi_albert,
    ring_graph,
    star_graph,
)
from repro.graph.mfg import message_flow_masks, required_node_counts, mfg_savings

__all__ = [
    "Graph",
    "HeteroGraph",
    "stochastic_block_model",
    "erdos_renyi",
    "barabasi_albert",
    "ring_graph",
    "star_graph",
    "message_flow_masks",
    "required_node_counts",
    "mfg_savings",
]
