"""Graph substrate: data structures, generators, and MFG utilities."""

from repro.graph.graph import Graph
from repro.graph.hetero import HeteroGraph
from repro.graph.generators import (
    stochastic_block_model,
    erdos_renyi,
    barabasi_albert,
    ring_graph,
    star_graph,
)
from repro.graph.mfg import (
    MFGBlock,
    MFGHeteroBlock,
    MFGPipeline,
    build_hetero_mfg_pipeline,
    build_mfg_pipeline,
    hetero_message_flow_masks,
    message_flow_masks,
    mfg_savings,
    required_node_counts,
)

__all__ = [
    "Graph",
    "HeteroGraph",
    "stochastic_block_model",
    "erdos_renyi",
    "barabasi_albert",
    "ring_graph",
    "star_graph",
    "message_flow_masks",
    "hetero_message_flow_masks",
    "required_node_counts",
    "mfg_savings",
    "MFGBlock",
    "MFGHeteroBlock",
    "MFGPipeline",
    "build_mfg_pipeline",
    "build_hetero_mfg_pipeline",
]
