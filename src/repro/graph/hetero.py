"""Heterogeneous graphs: one shared node-id space with typed (relational) edges.

This is the substrate for the R-GCN experiments of Appendix A.  The paper's
ogbn-mag graph has typed nodes as well; the R-GCN layer equation (Eq. 4 in
the paper) only requires relation-typed edges, so — as documented in
DESIGN.md — we keep a single node-id space and attach an optional node-type
array for bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.tensor import edge_plan as edge_plan_mod
from repro.tensor.edge_plan import EdgePlan
from repro.utils.validation import check_1d_int_array, check_positive_int


class HeteroGraph:
    """A graph whose edges are grouped into named relations.

    Parameters
    ----------
    num_nodes:
        Number of nodes shared by every relation.
    relations:
        Mapping ``relation name -> (src, dst)`` edge arrays.
    ndata:
        Optional named per-node arrays.
    node_types:
        Optional integer node-type array of length ``num_nodes``.
    """

    def __init__(self, num_nodes: int, relations: Dict[str, Tuple[np.ndarray, np.ndarray]],
                 ndata: Optional[Dict[str, np.ndarray]] = None,
                 node_types: Optional[np.ndarray] = None):
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        if not relations:
            raise ValueError("HeteroGraph requires at least one relation")
        self.relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name, (src, dst) in relations.items():
            src = check_1d_int_array(src, f"relations[{name!r}].src", max_value=self.num_nodes)
            dst = check_1d_int_array(dst, f"relations[{name!r}].dst", max_value=self.num_nodes)
            if len(src) != len(dst):
                raise ValueError(f"Relation {name!r}: src and dst lengths differ")
            self.relations[name] = (src, dst)
        self.ndata: Dict[str, np.ndarray] = {}
        if ndata:
            for key, value in ndata.items():
                self.set_ndata(key, value)
        self.node_types = None
        if node_types is not None:
            self.node_types = check_1d_int_array(node_types, "node_types")
            if len(self.node_types) != self.num_nodes:
                raise ValueError("node_types must have length num_nodes")
        self._plan_cache: Dict[str, EdgePlan] = {}

    # ------------------------------------------------------------------ #
    @property
    def relation_names(self) -> List[str]:
        return list(self.relations.keys())

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_edges(self) -> int:
        return sum(len(src) for src, _ in self.relations.values())

    def num_edges_of(self, relation: str) -> int:
        self._check_relation(relation)
        return len(self.relations[relation][0])

    def __repr__(self) -> str:
        rels = ", ".join(f"{r}={self.num_edges_of(r)}" for r in self.relation_names)
        return f"HeteroGraph(num_nodes={self.num_nodes}, relations=[{rels}])"

    def set_ndata(self, key: str, value: np.ndarray) -> None:
        value = np.asarray(value)
        if value.shape[0] != self.num_nodes:
            raise ValueError(
                f"ndata[{key!r}] first dimension must be {self.num_nodes}, got {value.shape[0]}"
            )
        self.ndata[key] = value

    def _check_relation(self, relation: str) -> None:
        if relation not in self.relations:
            raise KeyError(
                f"Unknown relation {relation!r}; available: {self.relation_names}"
            )

    # ------------------------------------------------------------------ #
    def relation_plan(self, relation: str) -> Optional[EdgePlan]:
        """One relation's :class:`~repro.tensor.edge_plan.EdgePlan` (lazy, cached).

        ``None`` while plans are globally disabled, in which case the R-GCN
        layer falls back to the cached-adjacency SpMM path.
        """
        self._check_relation(relation)
        if not edge_plan_mod.plans_enabled():
            return None
        plan = self._plan_cache.get(relation)
        if plan is None:
            src, dst = self.relations[relation]
            plan = EdgePlan(src, dst, self.num_nodes, self.num_nodes)
            self._plan_cache[relation] = plan
        return plan

    # ------------------------------------------------------------------ #
    def relation_adjacency(self, relation: str, transpose: bool = False,
                           normalization: str = "none"):
        """Sparse aggregation matrix of one relation (cached).

        Same semantics as :meth:`repro.graph.graph.Graph.adjacency`, restricted
        to the edges of ``relation``; the ``"mean"`` normalization divides by
        the per-relation in-degree ``|N_r(i)|`` as in the R-GCN equation.
        """
        cache = getattr(self, "_adj_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_adj_cache", cache)
        key = (relation, transpose, normalization)
        if key not in cache:
            graph = self.relation_graph(relation)
            cache[(relation, False, normalization)] = graph.adjacency(
                transpose=False, normalization=normalization
            )
            cache[(relation, True, normalization)] = graph.adjacency(
                transpose=True, normalization=normalization
            )
        return cache[key]

    def relation_graph(self, relation: str) -> Graph:
        """Return a homogeneous :class:`Graph` containing only one relation's edges."""
        self._check_relation(relation)
        src, dst = self.relations[relation]
        return Graph(self.num_nodes, src, dst, ndata=dict(self.ndata))

    def to_homogeneous(self) -> Tuple[Graph, np.ndarray]:
        """Merge every relation into one graph.

        Returns the merged graph and an integer edge-type array aligned with
        its edge list (relation index in :attr:`relation_names` order).
        """
        srcs, dsts, types = [], [], []
        for idx, name in enumerate(self.relation_names):
            src, dst = self.relations[name]
            srcs.append(src)
            dsts.append(dst)
            types.append(np.full(len(src), idx, dtype=np.int64))
        graph = Graph(
            self.num_nodes,
            np.concatenate(srcs) if srcs else np.array([], dtype=np.int64),
            np.concatenate(dsts) if dsts else np.array([], dtype=np.int64),
            ndata=dict(self.ndata),
        )
        return graph, np.concatenate(types) if types else np.array([], dtype=np.int64)

    def in_degrees(self, relation: Optional[str] = None) -> np.ndarray:
        """Per-node in-degree, for one relation or summed over all of them."""
        if relation is not None:
            self._check_relation(relation)
            _, dst = self.relations[relation]
            return np.bincount(dst, minlength=self.num_nodes).astype(np.int64)
        total = np.zeros(self.num_nodes, dtype=np.int64)
        for _, dst in self.relations.values():
            total += np.bincount(dst, minlength=self.num_nodes)
        return total

    def relation_subset(self, names: Iterable[str]) -> "HeteroGraph":
        """Return a HeteroGraph restricted to the given relations."""
        names = list(names)
        for name in names:
            self._check_relation(name)
        return HeteroGraph(
            self.num_nodes,
            {name: self.relations[name] for name in names},
            ndata=dict(self.ndata),
            node_types=self.node_types,
        )
