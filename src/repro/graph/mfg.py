"""Message-Flow-Graph (MFG) computation restriction (paper Appendix B).

In node-classification tasks the loss only touches a (possibly small) set of
labelled *seed* nodes.  Working backwards from the seeds, layer ``l`` of an
``L``-layer GNN only has to produce output features for the nodes that are at
most ``L - l`` hops away from a seed (following in-edges).  The paper uses
DGL's MFGs to skip the remaining rows; here :func:`message_flow_masks`
computes the same per-layer "required node" masks, and Figure 9 / the
Appendix-B epoch-time numbers are reproduced from them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.graph import Graph
from repro.utils.validation import check_1d_int_array, check_positive_int


def message_flow_masks(graph: Graph, seed_nodes, num_layers: int) -> List[np.ndarray]:
    """Per-layer boolean masks of nodes whose features must be computed.

    Returns a list of ``num_layers + 1`` masks: entry ``l`` marks the nodes
    whose layer-``l`` activations are required (entry ``0`` is the input
    layer, entry ``num_layers`` the output layer and equals the seed set).
    """
    num_layers = check_positive_int(num_layers, "num_layers")
    seeds = check_1d_int_array(seed_nodes, "seed_nodes", max_value=graph.num_nodes)
    masks: List[np.ndarray] = [None] * (num_layers + 1)  # type: ignore[list-item]
    current = np.zeros(graph.num_nodes, dtype=bool)
    current[seeds] = True
    masks[num_layers] = current.copy()
    # To expand "needed outputs" into "needed inputs" we walk edges backwards:
    # a destination needs all of its in-neighbours, i.e. a source is reached
    # when any of its out-edges points at a needed destination.  The graph's
    # edge plan provides exactly that transpose reduction from its cached
    # source-major structure; without a plan we fall back to A^T @ mask.
    plan = graph.plan()
    adj_t = graph.adjacency(transpose=True) if plan is None else None
    for layer in range(num_layers - 1, -1, -1):
        needed = current.astype(np.float32)
        if plan is not None:
            reached = plan.aggregate_sum_t(needed) > 0
        else:
            reached = (adj_t @ needed) > 0
        current = current | reached
        masks[layer] = current.copy()
    return masks


def required_node_counts(graph: Graph, seed_nodes, num_layers: int) -> List[int]:
    """Number of nodes whose features must be computed at each layer."""
    return [int(mask.sum()) for mask in message_flow_masks(graph, seed_nodes, num_layers)]


def mfg_savings(graph: Graph, seed_nodes, num_layers: int) -> float:
    """Fraction of node-feature computations avoided thanks to the MFG restriction.

    ``0.0`` means no savings (every node needed at every layer), values close
    to ``1.0`` mean almost all per-layer updates can be skipped.
    """
    counts = required_node_counts(graph, seed_nodes, num_layers)
    # Layers 1..L perform aggregation; the input layer (index 0) is free.
    needed = sum(counts[1:])
    full = graph.num_nodes * num_layers
    return 1.0 - needed / full if full else 0.0
