"""Message-Flow-Graph (MFG) computation restriction (paper Appendix B).

In node-classification tasks the loss only touches a (possibly small) set of
labelled *seed* nodes.  Working backwards from the seeds, layer ``l`` of an
``L``-layer GNN only has to produce output features for the nodes that are at
most ``L - l`` hops away from a seed (following in-edges).  The paper uses
DGL's MFGs to skip the remaining rows; :func:`message_flow_masks` computes
the same per-layer "required node" masks.

The masks alone only *count* skippable rows.  Executing the restriction is
the job of :func:`build_mfg_pipeline`: each conv layer becomes a compacted
bipartite :class:`MFGBlock` — the layer's edges relabelled into the compact
row spaces of its required source and destination nodes, owning a lazily
built :class:`~repro.tensor.edge_plan.EdgePlan` — and consecutive blocks
chain exactly (layer ``l``'s destination nodes are layer ``l+1``'s source
nodes), so a model forwards layer by layer over shrinking feature matrices.
This is the same per-layer sampled-block execution model as DGL's MFGs,
restricted to the deterministic full-neighbourhood case.

Because a destination is only required when *all* of its in-neighbours are
required one layer earlier, every block contains a destination's complete
in-neighbourhood, in the original edge order.  Kernels over the block
therefore reduce exactly the same values in exactly the same order as the
full graph, making seed-node outputs bit-identical — not merely close.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph.hetero import HeteroGraph
from repro.tensor import edge_plan as edge_plan_mod
from repro.tensor.edge_plan import EdgePlan
from repro.utils.validation import check_1d_int_array, check_positive_int


def _masks_walk(graph: Graph, seed_nodes, num_layers: int,
                stop_at=None) -> Tuple[List[np.ndarray], int]:
    """Backward required-node walk shared by the mask and pipeline builders.

    Returns ``(masks, input_layer)``: ``masks[l]`` is the required-node mask
    at layer ``l`` for ``input_layer <= l <= num_layers`` (entries below
    ``input_layer`` stay ``None``).  Without ``stop_at`` the walk always
    reaches layer ``0``; with it, the walk stops at the deepest layer ``l >=
    1`` whose required set the callback accepts (see
    :func:`build_mfg_pipeline`).
    """
    num_layers = check_positive_int(num_layers, "num_layers")
    seeds = check_1d_int_array(seed_nodes, "seed_nodes", max_value=graph.num_nodes)
    masks: List[np.ndarray] = [None] * (num_layers + 1)  # type: ignore[list-item]
    current = np.zeros(graph.num_nodes, dtype=bool)
    current[seeds] = True
    masks[num_layers] = current.copy()
    # To expand "needed outputs" into "needed inputs" we walk edges backwards:
    # a destination needs all of its in-neighbours, i.e. a source is reached
    # when any of its out-edges points at a needed destination.  The graph's
    # edge plan provides exactly that transpose reduction from its cached
    # source-major structure; without a plan we fall back to A^T @ mask.
    plan = graph.plan()
    adj_t = graph.adjacency(transpose=True) if plan is None else None
    for layer in range(num_layers - 1, -1, -1):
        needed = current.astype(np.float32)
        if plan is not None:
            reached = plan.aggregate_sum_t(needed) > 0
        else:
            reached = (adj_t @ needed) > 0
        current = current | reached
        masks[layer] = current.copy()
        if layer >= 1 and stop_at is not None and stop_at(layer, np.flatnonzero(current)):
            return masks, layer
    return masks, 0


def message_flow_masks(graph: Graph, seed_nodes, num_layers: int) -> List[np.ndarray]:
    """Per-layer boolean masks of nodes whose features must be computed.

    Returns a list of ``num_layers + 1`` masks: entry ``l`` marks the nodes
    whose layer-``l`` activations are required (entry ``0`` is the input
    layer, entry ``num_layers`` the output layer and equals the seed set).
    """
    masks, _ = _masks_walk(graph, seed_nodes, num_layers)
    return masks


def required_node_counts(graph: Graph, seed_nodes, num_layers: int) -> List[int]:
    """Number of nodes whose features must be computed at each layer."""
    return [int(mask.sum()) for mask in message_flow_masks(graph, seed_nodes, num_layers)]


def mfg_savings(graph: Graph, seed_nodes, num_layers: int) -> float:
    """Fraction of node-feature computations avoided thanks to the MFG restriction.

    ``0.0`` means no savings (every node needed at every layer), values close
    to ``1.0`` mean almost all per-layer updates can be skipped.
    """
    counts = required_node_counts(graph, seed_nodes, num_layers)
    # Layers 1..L perform aggregation; the input layer (index 0) is free.
    needed = sum(counts[1:])
    full = graph.num_nodes * num_layers
    return 1.0 - needed / full if full else 0.0


def hetero_message_flow_masks(hgraph: HeteroGraph, seed_nodes,
                              num_layers: int) -> List[np.ndarray]:
    """Per-layer required-node masks over the union of a hetero graph's relations.

    A node is required at layer ``l`` when any relation carries one of its
    out-edges to a node required at layer ``l+1`` (or it is itself required
    there); R-GCN layers aggregate over every relation, so the receptive
    field expands along all of them at once.
    """
    num_layers = check_positive_int(num_layers, "num_layers")
    seeds = check_1d_int_array(seed_nodes, "seed_nodes", max_value=hgraph.num_nodes)
    masks: List[np.ndarray] = [None] * (num_layers + 1)  # type: ignore[list-item]
    current = np.zeros(hgraph.num_nodes, dtype=bool)
    current[seeds] = True
    masks[num_layers] = current.copy()
    for layer in range(num_layers - 1, -1, -1):
        reached = np.zeros(hgraph.num_nodes, dtype=bool)
        for src, dst in hgraph.relations.values():
            reached[src[current[dst]]] = True
        current = current | reached
        masks[layer] = current.copy()
    return masks


# --------------------------------------------------------------------------- #
# compacted per-layer blocks (the MFG execution pipeline)
# --------------------------------------------------------------------------- #
def _lookup_table(nodes: np.ndarray, num_nodes: int) -> np.ndarray:
    table = np.full(num_nodes, -1, dtype=np.int64)
    table[nodes] = np.arange(len(nodes), dtype=np.int64)
    return table


class _CompactBlockBase:
    """Row-space bookkeeping shared by the homogeneous and relational blocks.

    ``src_nodes``/``dst_nodes`` are the original (global) ids of the block's
    required source and destination nodes, in ascending order.  The masks the
    blocks are derived from are cumulative, so ``dst_nodes ⊆ src_nodes`` and
    :attr:`dst_in_src` maps each destination row to its row in the source
    space — the row gather every layer's self/residual term runs through.
    """

    def __init__(self, src_nodes: np.ndarray, dst_nodes: np.ndarray,
                 dst_in_src: np.ndarray):
        self.src_nodes = src_nodes
        self.dst_nodes = dst_nodes
        self.dst_in_src = dst_in_src

    @property
    def num_src_nodes(self) -> int:
        return len(self.src_nodes)

    @property
    def num_dst_nodes(self) -> int:
        return len(self.dst_nodes)

    @property
    def num_nodes(self) -> int:
        """Rows of the block's *input* feature matrix (the nn layers' shape check)."""
        return self.num_src_nodes

    def gather_dst(self, x):
        """Destination rows of a source-space per-node tensor (differentiable)."""
        from repro.tensor import ops

        return ops.gather(x, self.dst_in_src)


def _rectangular_adjacency(src: np.ndarray, dst: np.ndarray, num_dst: int,
                           num_src: int, transpose: bool,
                           normalization: str,
                           cache: Dict[Tuple[bool, str], sp.csr_matrix]) -> sp.csr_matrix:
    """(num_dst × num_src) aggregation matrix with the same semantics as
    :meth:`Graph.adjacency`, restricted to the block's edges (``"sym"`` is not
    meaningful on a bipartite block)."""
    if normalization not in ("none", "mean"):
        raise ValueError(
            f"MFG blocks support 'none' or 'mean' normalization, got {normalization!r}"
        )
    key = (transpose, normalization)
    if key not in cache:
        data = np.ones(len(src), dtype=np.float32)
        adj = sp.csr_matrix((data, (dst, src)), shape=(num_dst, num_src))
        if normalization == "mean":
            deg = np.maximum(np.bincount(dst, minlength=num_dst).astype(np.float32), 1.0)
            adj = sp.diags(1.0 / deg) @ adj
        adj = adj.tocsr()
        cache[(False, normalization)] = adj
        cache[(True, normalization)] = adj.T.tocsr()
    return cache[key]


class MFGBlock(_CompactBlockBase):
    """One conv layer's compacted bipartite edge set.

    ``src``/``dst`` are the graph edges feeding a required destination,
    relabelled into the compact source/destination row spaces; the original
    edge order is preserved.  The nn layers accept an ``MFGBlock`` wherever
    they accept a :class:`~repro.graph.graph.Graph`: the aggregation output
    then has :attr:`num_dst_nodes` rows and the self/residual term reads its
    input rows through :meth:`gather_dst`.
    """

    def __init__(self, src_nodes: np.ndarray, dst_nodes: np.ndarray,
                 src: np.ndarray, dst: np.ndarray, dst_in_src: np.ndarray):
        super().__init__(src_nodes, dst_nodes, dst_in_src)
        self.src = src
        self.dst = dst
        self._plan: Optional[EdgePlan] = None
        self._adj_cache: Dict[Tuple[bool, str], sp.csr_matrix] = {}

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def __repr__(self) -> str:
        return (
            f"MFGBlock(src_nodes={self.num_src_nodes}, dst_nodes={self.num_dst_nodes}, "
            f"num_edges={self.num_edges})"
        )

    def plan(self) -> Optional[EdgePlan]:
        """The block's lazily built edge plan (``None`` while plans are disabled).

        Plans are resolved through the shared structural cache
        (:func:`repro.tensor.edge_plan.cached_plan`): two blocks with the same
        relabelled edge set — e.g. the same deterministic ``fanout=-1`` batch
        re-sampled next epoch — share one plan instead of re-sorting.
        """
        if not edge_plan_mod.plans_enabled():
            return None
        if self._plan is None:
            self._plan = edge_plan_mod.cached_plan(
                self.src, self.dst, self.num_dst_nodes, self.num_src_nodes
            )
        return self._plan

    def in_degrees(self) -> np.ndarray:
        """In-degrees of the destination rows (equal to their full-graph in-degrees)."""
        return np.bincount(self.dst, minlength=self.num_dst_nodes).astype(np.int64)

    def adjacency(self, transpose: bool = False,
                  normalization: str = "none") -> sp.csr_matrix:
        return _rectangular_adjacency(self.src, self.dst, self.num_dst_nodes,
                                      self.num_src_nodes, transpose, normalization,
                                      self._adj_cache)


class MFGHeteroBlock(_CompactBlockBase):
    """One R-GCN layer's compacted per-relation edge sets (hetero counterpart)."""

    def __init__(self, src_nodes: np.ndarray, dst_nodes: np.ndarray,
                 relation_edges: Dict[str, Tuple[np.ndarray, np.ndarray]],
                 dst_in_src: np.ndarray):
        super().__init__(src_nodes, dst_nodes, dst_in_src)
        self.relation_edges = relation_edges
        self._plans: Dict[str, EdgePlan] = {}
        self._adj_caches: Dict[str, Dict[Tuple[bool, str], sp.csr_matrix]] = {}

    @property
    def relation_names(self) -> List[str]:
        return list(self.relation_edges.keys())

    def __repr__(self) -> str:
        return (
            f"MFGHeteroBlock(src_nodes={self.num_src_nodes}, "
            f"dst_nodes={self.num_dst_nodes}, relations={self.relation_names})"
        )

    def _check_relation(self, relation: str) -> None:
        if relation not in self.relation_edges:
            raise KeyError(
                f"Unknown relation {relation!r}; available: {self.relation_names}"
            )

    def relation_plan(self, relation: str) -> Optional[EdgePlan]:
        self._check_relation(relation)
        if not edge_plan_mod.plans_enabled():
            return None
        plan = self._plans.get(relation)
        if plan is None:
            src, dst = self.relation_edges[relation]
            plan = edge_plan_mod.cached_plan(
                src, dst, self.num_dst_nodes, self.num_src_nodes
            )
            self._plans[relation] = plan
        return plan

    def relation_adjacency(self, relation: str, transpose: bool = False,
                           normalization: str = "none") -> sp.csr_matrix:
        self._check_relation(relation)
        src, dst = self.relation_edges[relation]
        cache = self._adj_caches.setdefault(relation, {})
        return _rectangular_adjacency(src, dst, self.num_dst_nodes,
                                      self.num_src_nodes, transpose, normalization,
                                      cache)


class MFGPipeline:
    """Per-layer compacted blocks for an ``L``-layer model over a seed set.

    Passed to a model in place of the graph, the model dispatches conv layer
    ``l`` onto :meth:`layer_block` ``(l)``; the input feature matrix holds the
    rows of :attr:`input_nodes` and the output rows are exactly
    :attr:`output_nodes` (the seed set, in ascending id order).

    A *partial-depth* pipeline (``input_layer > 0``, produced by
    :func:`build_mfg_pipeline` with a ``stop_at`` callback) covers only the
    model's conv layers ``input_layer .. input_layer + num_layers - 1``: its
    input feature matrix holds the layer-``input_layer`` **activations** of
    :attr:`input_nodes` instead of raw features — the contract the serving
    subsystem's historical-embedding cache builds on.  Block index ``i``
    corresponds to conv layer ``input_layer + i``.
    """

    def __init__(self, blocks: List[_CompactBlockBase],
                 masks: Optional[List[np.ndarray]] = None,
                 input_layer: int = 0):
        #: per-layer global required-node masks; ``None`` when the pipeline was
        #: built without materializing O(num_nodes) arrays (the sampler path —
        #: the node lists on the blocks carry the same information compactly).
        self.blocks = blocks
        self.masks = masks
        #: conv-layer index the pipeline's first block executes; ``0`` for the
        #: classic full-depth pipeline, ``> 0`` when the receptive-field walk
        #: was truncated at a cached activation frontier.
        self.input_layer = int(input_layer)

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose input features the restricted forward pass reads."""
        return self.blocks[0].src_nodes

    @property
    def output_nodes(self) -> np.ndarray:
        """Global ids of the output rows (the seed set, ascending)."""
        return self.blocks[-1].dst_nodes

    def layer_block(self, index: int) -> _CompactBlockBase:
        if not 0 <= index < len(self.blocks):
            raise IndexError(
                f"MFG pipeline has {len(self.blocks)} layer blocks, asked for {index}"
            )
        return self.blocks[index]

    def gather_inputs(self, features: np.ndarray) -> np.ndarray:
        """Rows of a full-graph per-node array the pipeline's layer 0 consumes."""
        return features[self.input_nodes]

    def required_node_counts(self) -> List[int]:
        if self.masks is not None:
            return [int(mask.sum()) for mask in self.masks]
        # Each block's src_nodes are the flatnonzero of the matching mask.
        return [block.num_src_nodes for block in self.blocks] + [
            self.blocks[-1].num_dst_nodes
        ]

    def __repr__(self) -> str:
        return (
            f"MFGPipeline(num_layers={self.num_layers}, "
            f"input_layer={self.input_layer}, "
            f"counts={self.required_node_counts()})"
        )


def _compact_edges(src: np.ndarray, dst: np.ndarray, dst_mask: np.ndarray,
                   src_lookup: np.ndarray, dst_lookup: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    keep = dst_mask[dst]
    src_ids = src_lookup[src[keep]]
    dst_ids = dst_lookup[dst[keep]]
    if src_ids.size and src_ids.min() < 0:
        raise AssertionError(
            "MFG masks are inconsistent: an edge into a required destination "
            "has a source outside the previous layer's required set"
        )
    return src_ids, dst_ids


def build_mfg_pipeline(graph: Graph, seed_nodes, num_layers: int,
                       stop_at=None) -> MFGPipeline:
    """Derive the compacted per-layer blocks executing the MFG restriction.

    Parameters
    ----------
    graph:
        The full homogeneous graph.
    seed_nodes:
        Node ids whose layer-``num_layers`` outputs are required.
    num_layers:
        Depth of the model the pipeline will drive.
    stop_at:
        Optional ``stop_at(layer, node_ids) -> bool`` callback probed during
        the backward receptive-field walk, once per layer from deepest
        (``num_layers - 1``) to shallowest (``1``), with the ascending global
        ids required at that layer.  Returning ``True`` truncates the walk:
        the pipeline then only contains blocks for conv layers ``layer ..
        num_layers - 1`` (``MFGPipeline.input_layer == layer``) and its input
        matrix must hold those nodes' layer-``layer`` *activations* — which
        is exactly what the serving subsystem's historical-embedding cache
        supplies (:mod:`repro.serving`).  Truncation never changes any
        block's edge set: every required destination keeps its complete
        in-neighbourhood, so outputs stay bit-identical as long as the
        supplied activations are.
    """
    masks, input_layer = _masks_walk(graph, seed_nodes, num_layers, stop_at=stop_at)
    node_lists = [
        np.flatnonzero(mask) if mask is not None else None for mask in masks
    ]
    lookups = [
        _lookup_table(nodes, graph.num_nodes) if nodes is not None else None
        for nodes in node_lists
    ]
    blocks: List[_CompactBlockBase] = []
    for layer in range(input_layer, num_layers):
        src_nodes, dst_nodes = node_lists[layer], node_lists[layer + 1]
        src_ids, dst_ids = _compact_edges(graph.src, graph.dst, masks[layer + 1],
                                          lookups[layer], lookups[layer + 1])
        blocks.append(MFGBlock(src_nodes, dst_nodes, src_ids, dst_ids,
                               dst_in_src=lookups[layer][dst_nodes]))
    return MFGPipeline(blocks, masks if input_layer == 0 else None,
                       input_layer=input_layer)


def build_hetero_mfg_pipeline(hgraph: HeteroGraph, seed_nodes,
                              num_layers: int) -> MFGPipeline:
    """Hetero counterpart of :func:`build_mfg_pipeline` (one edge set per relation)."""
    masks = hetero_message_flow_masks(hgraph, seed_nodes, num_layers)
    node_lists = [np.flatnonzero(mask) for mask in masks]
    lookups = [_lookup_table(nodes, hgraph.num_nodes) for nodes in node_lists]
    blocks: List[_CompactBlockBase] = []
    for layer in range(num_layers):
        src_nodes, dst_nodes = node_lists[layer], node_lists[layer + 1]
        relation_edges = {
            name: _compact_edges(src, dst, masks[layer + 1],
                                 lookups[layer], lookups[layer + 1])
            for name, (src, dst) in hgraph.relations.items()
        }
        blocks.append(MFGHeteroBlock(src_nodes, dst_nodes, relation_edges,
                                     dst_in_src=lookups[layer][dst_nodes]))
    return MFGPipeline(blocks, masks)
