"""repro — a reproduction of "Sequential Aggregation and Rematerialization:
Distributed Full-batch Training of Graph Neural Networks on Large Graphs"
(Mostafa, MLSys 2022).

The package is organized as:

* :mod:`repro.tensor`       — NumPy-backed autograd engine with per-worker memory tracking
* :mod:`repro.graph`        — graph data structures, generators, message-flow graphs
* :mod:`repro.partition`    — balanced k-way partitioning, partition book, per-worker shards
* :mod:`repro.distributed`  — simulated cluster runtime, communicator, cost model
* :mod:`repro.nn`           — GNN layers (GraphSage, GAT, fused-attention GAT, R-GCN) and models
* :mod:`repro.core`         — SAR itself: the sequential-aggregation engine with pluggable
                              block kernels, distributed graph handles, rematerialized
                              backward passes, gradient synchronization
* :mod:`repro.datasets`     — synthetic stand-ins for ogbn-products / papers100M / mag
* :mod:`repro.sample`       — seeded neighbour sampling: mini-batch block chains,
                              prefetching data loaders, cooperative distributed sampling
* :mod:`repro.training`     — full-batch trainers, label augmentation, Correct & Smooth
* :mod:`repro.serving`      — online inference: micro-batching server, historical-embedding cache
"""

__version__ = "0.2.0"

from repro import tensor
from repro import graph
from repro import partition
from repro import distributed
from repro import nn
from repro import core
from repro import datasets
from repro import sample
from repro import serving
from repro import training
from repro import utils

__all__ = [
    "__version__",
    "tensor",
    "graph",
    "partition",
    "distributed",
    "nn",
    "core",
    "datasets",
    "sample",
    "serving",
    "training",
    "utils",
]
