"""Distributed attention aggregation (GAT) — SAR "case 2" (paper §3.2, §3.3).

The attention aggregator needs the values of the remote neighbour features to
compute gradients (product-like operator), so SAR must *re-fetch* them during
the backward pass and rematerialize the per-edge attention coefficients block
by block — this is the ~50 % communication overhead over vanilla
domain-parallel training discussed in the paper.  The forward pass aggregates
sequentially with the numerically stable running softmax of §3.4.

Execution modes (from :class:`~repro.core.config.SARConfig` plus the layer's
kernel choice):

* vanilla DP (``mode="dp"``): halo feature blocks *and* per-edge attention
  logits are wrapped in tensors and saved for the backward pass (the memory
  profile of the standard DGL implementation), no backward re-fetch;
* plain SAR (``mode="sar"``, ``fused=False``): nothing edge-sized survives the
  forward pass; the backward pass re-fetches remote features and recomputes
  the per-edge quantities with the standard multi-step kernel;
* SAR+FAK (``mode="sar"``, ``fused=True``): same communication pattern, but
  the per-block forward/backward math uses the fused kernels that avoid
  materializing separate logit/weight arrays.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.config import SARConfig
from repro.core.halo import HaloExchange, pack_features, unpack_features
from repro.core.stable_softmax import RunningSoftmaxAccumulator
from repro.core.sage_dist import _block_order, _halo_retention
from repro.distributed.comm import Communicator
from repro.partition.shard import EdgeBlock, ShardedGraph
from repro.tensor.sparse import segment_sum_np
from repro.tensor.tensor import Function, Tensor

_TINY = np.finfo(np.float32).tiny


# --------------------------------------------------------------------------- #
# per-block kernels
# --------------------------------------------------------------------------- #
def _block_logits_standard(score_dst: np.ndarray, score_src_block: np.ndarray,
                           block: EdgeBlock, negative_slope: float
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Standard multi-step computation: gather, add, LeakyReLU (materializes both)."""
    gathered_dst = score_dst[block.dst_local]
    gathered_src = score_src_block[block.src_index]
    raw = gathered_dst + gathered_src
    logits = np.where(raw > 0, raw, negative_slope * raw)
    return raw, logits


def _block_logits_fused(score_dst: np.ndarray, score_src_block: np.ndarray,
                        block: EdgeBlock, negative_slope: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Fused computation: a single expression, only the logits array survives."""
    raw = score_dst[block.dst_local] + score_src_block[block.src_index]
    return raw, np.where(raw > 0, raw, negative_slope * raw)


def _weighted_block_aggregate(block: EdgeBlock, weights: np.ndarray, values: np.ndarray,
                              num_dst: int) -> np.ndarray:
    """``out[d] += Σ_e w_e · values[src_e]`` for one block (per attention head)."""
    heads, dim = values.shape[1], values.shape[2]
    out = np.empty((num_dst, heads, dim), dtype=values.dtype)
    for h in range(heads):
        adj = sp.csr_matrix(
            (weights[:, h], (block.dst_local, block.src_index)),
            shape=(num_dst, values.shape[0]),
        )
        out[:, h, :] = adj @ values[:, h, :]
    return out


def _weighted_block_transpose(block: EdgeBlock, weights: np.ndarray, grad_out: np.ndarray,
                              num_src: int) -> np.ndarray:
    """``grad_src[s] += Σ_e w_e · grad_out[dst_e]`` for one block (per head)."""
    heads, dim = grad_out.shape[1], grad_out.shape[2]
    out = np.empty((num_src, heads, dim), dtype=grad_out.dtype)
    for h in range(heads):
        adj_t = sp.csr_matrix(
            (weights[:, h], (block.src_index, block.dst_local)),
            shape=(num_src, grad_out.shape[0]),
        )
        out[:, h, :] = adj_t @ grad_out[:, h, :]
    return out


# --------------------------------------------------------------------------- #
# the distributed aggregation function
# --------------------------------------------------------------------------- #
class DistributedGATAggregation(Function):
    """Attention-weighted neighbour aggregation across graph partitions."""

    def forward(self, z: Tensor, score_dst: Tensor, score_src: Tensor,
                shard: ShardedGraph, comm: Communicator, halo: HaloExchange,
                config: SARConfig, key: str, negative_slope: float,
                fused: bool) -> np.ndarray:
        z_data, sd, ss = z.data, score_dst.data, score_src.data
        if z_data.ndim != 3:
            raise ValueError(f"Expected z of shape (N, heads, dim), got {z_data.shape}")
        num_local, heads, dim = z_data.shape
        logits_fn = _block_logits_fused if fused else _block_logits_standard

        # Publish the (features, attention score) tuple so peers can fetch both
        # in one message — the "message is a 2-tuple" of the paper's Eq. 3.
        comm.publish(f"{key}/zs", pack_features(z_data, ss))

        accumulator = RunningSoftmaxAccumulator(
            num_local, heads, dim, dtype=z_data.dtype, stable=config.stable_softmax
        )
        retention = _halo_retention(config)
        resident: Deque[Tensor] = deque(maxlen=retention) if retention else deque()
        saved_halos: List[Optional[Tensor]] = [None] * shard.num_parts
        saved_logits: List[Optional[Tensor]] = [None] * shard.num_parts

        for q in _block_order(shard.rank, shard.num_parts):
            block = shard.blocks[q]
            if block.num_edges == 0:
                continue
            if q == shard.rank:
                z_q = z_data[block.required_src_local]
                ss_q = ss[block.required_src_local]
            else:
                fetched = Tensor(
                    comm.fetch(q, f"{key}/zs", rows=block.required_src_local,
                               tag="forward_halo")
                )
                resident.append(fetched)
                if config.is_domain_parallel:
                    saved_halos[q] = fetched
                z_q, ss_q = unpack_features(fetched.data, [(heads, dim), (heads,)])
            raw, logits = logits_fn(sd, ss_q, block, negative_slope)
            if config.is_domain_parallel:
                # Vanilla DP materializes per-edge attention tensors in the graph.
                saved_logits[q] = Tensor(logits if fused else np.stack([raw, logits]))
            accumulator.add_block(
                logits, z_q, block.dst_local,
                lambda weights, _block=block, _z=z_q: _weighted_block_aggregate(
                    _block, weights, _z, num_local
                ),
            )

        out = accumulator.finalize()
        running_max, denominator = accumulator.state()
        self.save_for_backward(
            shard, comm, halo, config, key, negative_slope, fused,
            z_data.shape, sd, running_max, denominator, out,
            saved_halos, saved_logits,
        )
        return out

    # ------------------------------------------------------------------ #
    def backward(self, grad_out):
        (shard, comm, halo, config, key, negative_slope, fused,
         z_shape, sd, running_max, denominator, out,
         saved_halos, saved_logits) = self.saved
        num_local, heads, dim = z_shape
        z_local = self.parents[0].data
        ss_local = self.parents[2].data
        logits_fn = _block_logits_fused if fused else _block_logits_standard
        safe_max = np.where(np.isfinite(running_max), running_max, 0.0)

        # Softmax backward needs Σ_j α_j <z_j, grad_i> per destination node; by
        # linearity that equals <out_i, grad_i>, so no extra pass over edges.
        weighted_sum = np.einsum("nhd,nhd->nh", out, grad_out)

        grad_z = np.zeros(z_shape, dtype=grad_out.dtype)
        grad_sd = np.zeros((num_local, heads), dtype=grad_out.dtype)
        grad_ss = np.zeros((num_local, heads), dtype=grad_out.dtype)
        outgoing: Dict[int, np.ndarray] = {}

        for q in _block_order(shard.rank, shard.num_parts):
            block = shard.blocks[q]
            if block.num_edges == 0:
                continue
            # ---- rematerialize the block inputs -------------------------- #
            if q == shard.rank:
                z_q = z_local[block.required_src_local]
                ss_q = ss_local[block.required_src_local]
            elif config.is_domain_parallel:
                z_q, ss_q = unpack_features(saved_halos[q].data, [(heads, dim), (heads,)])
            else:
                # SAR case 2: re-fetch the remote features (the paper's ~50 %
                # extra communication for attention-based models).
                refetched = comm.fetch(q, f"{key}/zs", rows=block.required_src_local,
                                       tag="backward_refetch")
                z_q, ss_q = unpack_features(refetched, [(heads, dim), (heads,)])
            # ---- rematerialize the per-edge attention coefficients ------- #
            if config.is_domain_parallel and saved_logits[q] is not None:
                stored = saved_logits[q].data
                if fused:
                    raw = None
                    logits = stored
                else:
                    raw, logits = stored[0], stored[1]
            else:
                raw, logits = logits_fn(sd, ss_q, block, negative_slope)
            weights = np.exp(logits - safe_max[block.dst_local])
            alpha = weights / denominator[block.dst_local]

            # ---- gradients ----------------------------------------------- #
            grad_z_q = _weighted_block_transpose(block, alpha, grad_out, z_q.shape[0])
            grad_alpha = np.einsum("ehd,ehd->eh", z_q[block.src_index],
                                   grad_out[block.dst_local])
            grad_logits = alpha * (grad_alpha - weighted_sum[block.dst_local])
            if raw is None:
                positive = logits > 0
            else:
                positive = raw > 0
            grad_raw = np.where(positive, grad_logits, negative_slope * grad_logits)
            grad_ss_q = segment_sum_np(grad_raw, block.src_index, z_q.shape[0])
            grad_sd += segment_sum_np(grad_raw, block.dst_local, num_local)

            if q == shard.rank:
                np.add.at(grad_z, block.required_src_local, grad_z_q)
                np.add.at(grad_ss, block.required_src_local, grad_ss_q)
            else:
                outgoing[q] = pack_features(
                    grad_z_q.astype(np.float32), grad_ss_q.astype(np.float32)
                )

        received = comm.exchange(f"{key}/err", outgoing, tag="backward_error")
        for peer, packed in received.items():
            if peer == shard.rank:
                continue
            rows = halo.rows_needed_by_peer.get(peer)
            if rows is None or packed.size == 0:
                continue
            err_z, err_ss = unpack_features(packed, [(heads, dim), (heads,)])
            np.add.at(grad_z, rows, err_z)
            np.add.at(grad_ss, rows, err_ss)
        return grad_z, grad_sd, grad_ss


def distributed_gat_aggregate(z: Tensor, score_dst: Tensor, score_src: Tensor,
                              shard: ShardedGraph, comm: Communicator, halo: HaloExchange,
                              config: SARConfig, key: str, negative_slope: float = 0.2,
                              fused: bool = False) -> Tensor:
    """Functional wrapper used by :class:`repro.core.dist_graph.DistributedGraph`."""
    return DistributedGATAggregation.apply(
        z, score_dst, score_src, shard, comm, halo, config, key, negative_slope, fused
    )
