"""Distributed attention aggregation (GAT) — SAR "case 2" (paper §3.2, §3.3).

The attention aggregator needs the values of the remote neighbour features to
compute gradients (product-like operator), so SAR must *re-fetch* them during
the backward pass and rematerialize the per-edge attention coefficients block
by block — this is the ~50 % communication overhead over vanilla
domain-parallel training discussed in the paper.  The forward pass aggregates
sequentially with the numerically stable running softmax of §3.4.

:class:`GATKernel` plugs the attention math into the shared
:class:`~repro.core.seq_agg.SequentialAggregationEngine`; the engine owns
block ordering, halo retention, prefetching, the backward re-fetch, and the
error exchange.  Execution modes (from :class:`~repro.core.config.SARConfig`
plus the layer's kernel choice):

* vanilla DP (``mode="dp"``): halo feature blocks *and* per-edge attention
  logits are wrapped in tensors and saved for the backward pass (the memory
  profile of the standard DGL implementation), no backward re-fetch;
* plain SAR (``mode="sar"``, ``fused=False``): nothing edge-sized survives the
  forward pass; the backward pass re-fetches remote features and recomputes
  the per-edge quantities with the standard multi-step kernel;
* SAR+FAK (``mode="sar"``, ``fused=True``): same communication pattern, but
  the per-block forward/backward math uses the fused kernels that avoid
  materializing separate logit/weight arrays.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import SARConfig
from repro.core.halo import HaloExchange, pack_features, unpack_features
from repro.core.seq_agg import (
    BlockKernel,
    KernelPass,
    SequentialAggregationEngine,
)
from repro.core.stable_softmax import RunningSoftmaxAccumulator
from repro.distributed.comm import Communicator
from repro.partition.shard import EdgeBlock, ShardedGraph
from repro.tensor.sparse import segment_sum_np
from repro.tensor.tensor import Tensor


# --------------------------------------------------------------------------- #
# per-block logit kernels
# --------------------------------------------------------------------------- #
def _block_logits_standard(score_dst: np.ndarray, score_src_block: np.ndarray,
                           block: EdgeBlock, negative_slope: float
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Standard multi-step computation: gather, add, LeakyReLU (materializes both)."""
    gathered_dst = score_dst[block.dst_local]
    gathered_src = score_src_block[block.src_index]
    raw = gathered_dst + gathered_src
    logits = np.where(raw > 0, raw, negative_slope * raw)
    return raw, logits


def _block_logits_fused(score_dst: np.ndarray, score_src_block: np.ndarray,
                        block: EdgeBlock, negative_slope: float
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Fused computation: a single expression, only the logits array survives."""
    raw = score_dst[block.dst_local] + score_src_block[block.src_index]
    return raw, np.where(raw > 0, raw, negative_slope * raw)


# --------------------------------------------------------------------------- #
# the engine kernel
# --------------------------------------------------------------------------- #
class GATKernel(BlockKernel):
    """Attention-weighted neighbour aggregation across graph partitions.

    The published payload packs ``(z, score_src)`` so peers fetch both in one
    message — the "message is a 2-tuple" of the paper's Eq. 3.  Per-head
    weighted aggregation reuses the edge blocks' cached CSR structure
    (:meth:`~repro.partition.shard.EdgeBlock.weighted_matrix`), so the
    backward pass no longer re-sorts a scipy matrix per block per head.
    """

    grad_class = "nonlinear"

    def __init__(self, z: Tensor, score_dst: Tensor, score_src: Tensor,
                 shard: ShardedGraph, halo: HaloExchange, config: SARConfig,
                 negative_slope: float, fused: bool):
        super().__init__()
        z_data = z.data
        if z_data.ndim != 3:
            raise ValueError(f"Expected z of shape (N, heads, dim), got {z_data.shape}")
        self.z_data = z_data
        self.sd = score_dst.data
        self.ss = score_src.data
        self.shard = shard
        self.config = config
        self.negative_slope = negative_slope
        self.fused = fused
        self.num_local, self.heads, self.dim = z_data.shape
        self._logits_fn = _block_logits_fused if fused else _block_logits_standard
        self._passes = [KernelPass(name="", blocks=shard.blocks, halo=halo)]
        #: per-edge attention tensors kept alive in vanilla DP mode only
        self._saved_logits: Dict[int, Tensor] = {}

    # -- engine interface ------------------------------------------------ #
    def payload(self) -> np.ndarray:
        return pack_features(self.z_data, self.ss)

    def passes(self):
        return self._passes

    def _unpack(self, feats: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return unpack_features(feats, [(self.heads, self.dim), (self.heads,)])

    def forward_init(self) -> None:
        self._accumulator = RunningSoftmaxAccumulator(
            self.num_local, self.heads, self.dim, dtype=self.z_data.dtype,
            stable=self.config.stable_softmax,
        )

    def forward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                      feats: np.ndarray) -> None:
        z_q, ss_q = self._unpack(feats)
        raw, logits = self._logits_fn(self.sd, ss_q, block, self.negative_slope)
        if self.config.is_domain_parallel:
            # Vanilla DP materializes per-edge attention tensors in the graph.
            self._saved_logits[q] = Tensor(logits if self.fused else np.stack([raw, logits]))
        self._accumulator.add_block(
            logits, z_q, block.dst_local,
            lambda weights, _block=block, _z=z_q: self._weighted_aggregate(
                _block, weights, _z
            ),
            plan=block.plan(),
        )

    def forward_finalize(self) -> np.ndarray:
        self.out = self._accumulator.finalize()
        self.running_max, self.denominator = self._accumulator.state()
        del self._accumulator
        return self.out

    def backward_init(self, grad_out: np.ndarray) -> None:
        self._grad_out = grad_out
        self._safe_max = np.where(np.isfinite(self.running_max), self.running_max, 0.0)
        # Softmax backward needs Σ_j α_j <z_j, grad_i> per destination node; by
        # linearity that equals <out_i, grad_i>, so no extra pass over edges.
        self._weighted_sum = np.einsum("nhd,nhd->nh", self.out, grad_out)
        # Errors for (z, score_src) travel packed, exactly like the payload,
        # so the engine scatters one 2-D target per peer.
        width = self.heads * self.dim + self.heads
        self._grad_packed = np.zeros((self.num_local, width), dtype=grad_out.dtype)
        self._grad_sd = np.zeros((self.num_local, self.heads), dtype=grad_out.dtype)

    def backward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                       feats: Optional[np.ndarray]) -> np.ndarray:
        z_q, ss_q = self._unpack(feats)
        plan = block.plan()
        # ---- rematerialize the per-edge attention coefficients ----------- #
        stored = self._saved_logits.get(q) if self.config.is_domain_parallel else None
        if stored is not None:
            if self.fused:
                raw, logits = None, stored.data
            else:
                raw, logits = stored.data[0], stored.data[1]
        else:
            raw, logits = self._logits_fn(self.sd, ss_q, block, self.negative_slope)
        weights = np.exp(logits - self._safe_max[block.dst_local])
        alpha = weights / self.denominator[block.dst_local]

        # ---- gradients --------------------------------------------------- #
        if plan is not None:
            grad_z_q = plan.u_mul_e_sum_t(self._grad_out, alpha)
        else:
            grad_z_q = self._weighted_transpose(block, alpha, self._grad_out)
        grad_alpha = np.einsum("ehd,ehd->eh", z_q[block.src_index],
                               self._grad_out[block.dst_local])
        grad_logits = alpha * (grad_alpha - self._weighted_sum[block.dst_local])
        positive = logits > 0 if raw is None else raw > 0
        grad_raw = np.where(positive, grad_logits, self.negative_slope * grad_logits)
        if plan is not None:
            grad_ss_q = plan.segment_sum_src(grad_raw)
            self._grad_sd += plan.segment_sum(grad_raw)
        else:
            grad_ss_q = segment_sum_np(grad_raw, block.src_index, z_q.shape[0])
            self._grad_sd += segment_sum_np(grad_raw, block.dst_local, self.num_local)
        return pack_features(grad_z_q, grad_ss_q)

    def error_target(self, p: KernelPass) -> np.ndarray:
        return self._grad_packed

    def backward_finalize(self):
        split = self.heads * self.dim
        grad_z = self._grad_packed[:, :split].reshape(self.num_local, self.heads, self.dim)
        grad_ss = self._grad_packed[:, split:]
        return grad_z, self._grad_sd, grad_ss

    # -- per-head weighted SpMM over the block's cached CSR structure ----- #
    def _weighted_aggregate(self, block: EdgeBlock, weights: np.ndarray,
                            values: np.ndarray) -> np.ndarray:
        """``out[d] += Σ_e w_e · values[src_e]`` for one block (per head)."""
        plan = block.plan()
        if plan is not None:
            return plan.u_mul_e_sum(values, weights)
        out = np.empty((self.num_local, self.heads, self.dim), dtype=values.dtype)
        for h in range(self.heads):
            out[:, h, :] = block.weighted_matrix(weights[:, h]) @ values[:, h, :]
        return out

    def _weighted_transpose(self, block: EdgeBlock, weights: np.ndarray,
                            grad_out: np.ndarray) -> np.ndarray:
        """``grad_src[s] += Σ_e w_e · grad_out[dst_e]`` for one block (per head)."""
        out = np.empty((block.num_required_src, self.heads, self.dim),
                       dtype=grad_out.dtype)
        for h in range(self.heads):
            out[:, h, :] = block.weighted_matrix(weights[:, h], transpose=True) \
                @ grad_out[:, h, :]
        return out


def distributed_gat_aggregate(z: Tensor, score_dst: Tensor, score_src: Tensor,
                              shard: ShardedGraph, comm: Communicator, halo: HaloExchange,
                              config: SARConfig, key: str, negative_slope: float = 0.2,
                              fused: bool = False,
                              engine: Optional[SequentialAggregationEngine] = None
                              ) -> Tensor:
    """Functional wrapper used by :class:`repro.core.dist_graph.DistributedGraph`."""
    engine = engine or SequentialAggregationEngine(comm, config)
    kernel = GATKernel(z, score_dst, score_src, shard, halo, config,
                       negative_slope, fused)
    return engine.aggregate(kernel, key, z, score_dst, score_src)
