"""Halo-exchange bookkeeping shared by SAR and vanilla domain-parallel training.

Two pieces of static information are exchanged once, right after the graph is
sharded (this mirrors the partition-metadata setup phase of DistDGL / the SAR
library, and is tagged ``"setup"`` so epoch-level communication accounting is
unaffected):

* for every peer ``q``: which of *my* local rows ``q`` will need (so that
  gradient contributions arriving from ``q`` during the backward pass can be
  scatter-added without shipping index arrays every iteration);
* nothing else — the forward-direction row indices are already stored in this
  worker's own edge blocks (``EdgeBlock.required_src_local``).

The module also provides small pack/unpack helpers used when a single fetch
has to carry both neighbour features and per-node attention scores (the
"message is a 2-tuple" case of GAT).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.distributed.comm import Communicator
from repro.partition.shard import EdgeBlock


class HaloExchange:
    """Static routing information between one worker and its peers."""

    def __init__(self, comm: Communicator, blocks: Sequence[EdgeBlock], name: str):
        self.comm = comm
        self.rank = comm.rank
        self.world_size = comm.world_size
        outgoing = {
            q: blocks[q].required_src_local.astype(np.int64)
            for q in range(self.world_size)
            if q != self.rank
        }
        received = comm.exchange(f"setup/{name}", outgoing, tag="setup")
        #: rows of *this* worker's partition that each peer reads during the
        #: forward pass (and therefore sends errors for during the backward pass)
        self.rows_needed_by_peer: Dict[int, np.ndarray] = {
            peer: rows.astype(np.int64)
            for peer, rows in received.items()
            if peer != self.rank
        }

    def scatter_add_errors(self, target: np.ndarray,
                           errors: Dict[int, np.ndarray]) -> np.ndarray:
        """Accumulate error blocks received from peers into local rows.

        ``errors[peer]`` must have one row per entry of
        ``rows_needed_by_peer[peer]`` (the compact layout the peer used when
        it fetched those rows).
        """
        for peer, error in errors.items():
            if peer == self.rank:
                continue
            rows = self.rows_needed_by_peer.get(peer)
            if rows is None:
                if error.size:
                    raise RuntimeError(
                        f"Received {error.shape[0]} error rows from peer {peer}, "
                        "but that peer never registered any required rows"
                    )
                continue
            if error.shape[0] != len(rows):
                raise RuntimeError(
                    f"Peer {peer} sent {error.shape[0]} error rows, expected {len(rows)}"
                )
            np.add.at(target, rows, error)
        return target


def pack_features(*arrays: np.ndarray) -> np.ndarray:
    """Concatenate per-node arrays along the feature axis into one 2-D block.

    Each array must have the same number of rows; trailing dimensions are
    flattened.  Used to ship ``(z, attention_score)`` tuples in one fetch.
    """
    rows = arrays[0].shape[0]
    flat = []
    for array in arrays:
        if array.shape[0] != rows:
            raise ValueError("pack_features requires arrays with equal first dimension")
        flat.append(array.reshape(rows, -1))
    return np.concatenate(flat, axis=1)


def unpack_features(packed: np.ndarray, shapes: Sequence[Tuple[int, ...]]) -> List[np.ndarray]:
    """Inverse of :func:`pack_features` given the original trailing shapes."""
    rows = packed.shape[0]
    out: List[np.ndarray] = []
    offset = 0
    for shape in shapes:
        width = int(np.prod(shape)) if shape else 1
        chunk = packed[:, offset:offset + width]
        out.append(chunk.reshape((rows,) + tuple(shape)))
        offset += width
    if offset != packed.shape[1]:
        raise ValueError(
            f"unpack_features consumed {offset} columns but packed block has {packed.shape[1]}"
        )
    return out
