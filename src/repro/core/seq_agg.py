"""The unified sequential-aggregation engine (paper §3.2–§3.4).

The paper's contribution is a *single* algorithmic pattern: iterate over the
per-partition edge blocks ``G_{p,q}``, fetch each remote block's source rows,
fold the block into an accumulator, and discard the block immediately (SAR) or
keep it alive for the backward pass (vanilla domain-parallel).  The backward
pass replays the same loop, rematerializing per-block intermediates and — for
"case 2" aggregators whose gradients need the neighbour values — re-fetching
the remote features, then ships the accumulated errors back to their owners
with one all-to-all exchange.

:class:`SequentialAggregationEngine` owns that loop once, for every
aggregator:

* the block schedule (:func:`block_order` — local block first, then remote
  partitions round-robin starting at ``rank + 1``),
* publish/fetch key management and the halo-retention policy (SAR keeps one
  remote block resident, vanilla DP keeps them all),
* a real double-buffered **prefetch pipeline**: with
  ``SARConfig(prefetch=True)`` the next block's fetch is issued on a
  background thread while the current block computes, bounding resident
  remote blocks at two (the paper's 3/N memory point) while overlapping
  communication with compute,
* the backward re-fetch for nonlinear ("case 2") kernels, and
* the per-pass all-to-all error exchange and scatter-add.

What *differs* between aggregators is captured by :class:`BlockKernel`: the
published payload, the per-block forward/backward math, the gradient class
(``"linear"`` needs no backward re-fetch, ``"nonlinear"`` does), and optional
per-block state such as GAT's running stable-softmax accumulators.  The
concrete kernels live next to their models:

* :class:`repro.core.sage_dist.SumMeanKernel` — case 1 (linear),
* :class:`repro.core.sage_dist.PoolingKernel` — max/min pooling, case 2,
* :class:`repro.core.gat_dist.GATKernel` — attention, case 2,
* :class:`repro.core.rgcn_dist.RGCNKernel` — relational, case 2, one engine
  pass per relation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SARConfig
from repro.core.halo import HaloExchange
from repro.distributed.comm import Communicator
from repro.partition.shard import EdgeBlock
from repro.tensor.memory import active_tracker, track_memory
from repro.tensor.tensor import Function, Tensor


def block_order(rank: int, world_size: int) -> List[int]:
    """Process the local block first, then remote partitions round-robin.

    Starting each worker's remote sweep at ``rank + 1`` spreads simultaneous
    fetches across different owners instead of hammering partition 0 first —
    the same scheduling the SAR library uses.
    """
    return [rank] + [(rank + offset) % world_size for offset in range(1, world_size)]


@dataclass
class KernelPass:
    """One sweep over a grid of edge blocks with its own error exchange.

    Homogeneous aggregators have a single pass; R-GCN has one pass per
    relation (each relation has its own block grid and halo routing).
    ``name`` namespaces the error-exchange key; ``index`` identifies the pass
    to the kernel (e.g. the relation index).
    """

    name: str
    blocks: Sequence[EdgeBlock]
    halo: HaloExchange
    index: int = 0


class BlockKernel:
    """Per-aggregator math plugged into :class:`SequentialAggregationEngine`.

    A kernel instance is created per aggregation call and owns references to
    the call's input arrays.  The engine drives it through the hooks below;
    ``grad_class`` declares whether the backward pass needs the neighbour
    feature values (``"nonlinear"`` → SAR re-fetches remote blocks,
    ``"linear"`` → errors are computed from the gradient alone).
    """

    grad_class: str = "linear"

    def __init__(self) -> None:
        self._saved_halos: Dict[Tuple[int, int], Tensor] = {}
        #: set by the engine before the forward sweep; the same array backs
        #: the published tensor, so holding it adds no memory.
        self._payload: Optional[np.ndarray] = None

    # -- interface implemented by concrete kernels ----------------------- #
    def payload(self) -> np.ndarray:
        """Array published for peers to fetch (forward halo and case-2 re-fetch)."""
        raise NotImplementedError

    def passes(self) -> Sequence[KernelPass]:
        """The block sweeps this kernel performs (one per relation for R-GCN)."""
        raise NotImplementedError

    def forward_init(self) -> None:
        """Allocate forward accumulators."""

    def begin_pass(self, p: KernelPass, backward: bool) -> None:
        """Hook called before a pass's blocks are visited."""

    def forward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                      feats: np.ndarray) -> None:
        """Fold one block into the forward accumulator.

        ``feats`` holds the payload rows for ``block.required_src_local``
        (local slice or fetched remote copy).
        """
        raise NotImplementedError

    def end_pass(self, p: KernelPass, backward: bool) -> None:
        """Hook called after a pass's blocks (before the error exchange)."""

    def forward_finalize(self) -> np.ndarray:
        """Return the aggregation output; keep only what backward needs."""
        raise NotImplementedError

    def backward_init(self, grad_out: np.ndarray) -> None:
        """Allocate gradient accumulators (including :meth:`error_target`)."""
        raise NotImplementedError

    def backward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                       feats: Optional[np.ndarray]) -> np.ndarray:
        """Return the error rows for ``block.required_src_local``.

        ``feats`` is ``None`` for linear kernels; nonlinear kernels receive
        the rematerialized payload rows (local slice, saved DP halo, or SAR
        re-fetch).  The engine scatter-adds the result into
        :meth:`error_target` for the local block and ships it to the owner
        otherwise.
        """
        raise NotImplementedError

    def error_target(self, p: KernelPass) -> np.ndarray:
        """The local array that incoming error rows accumulate into."""
        raise NotImplementedError

    def backward_finalize(self) -> Tuple[np.ndarray, ...]:
        """Return one gradient per input tensor, in input order."""
        raise NotImplementedError

    # -- halo bookkeeping (vanilla DP keeps fetched blocks alive) --------- #
    def save_halo(self, p: KernelPass, q: int, tensor: Tensor) -> None:
        self._saved_halos[(p.index, q)] = tensor

    def saved_halo(self, p: KernelPass, q: int) -> np.ndarray:
        return self._saved_halos[(p.index, q)].data


class _PrefetchPipeline:
    """Double-buffered background fetcher (one fetch in flight at a time).

    The fetch itself is a caller-supplied ``fetch_fn(q, rows)`` — a raw
    ``comm.fetch`` of the published payload, or the attached feature store's
    cached :meth:`~repro.store.PartitionedKVStore.fetch_rows` — so prefetch
    overlap composes with hot-row caching unchanged.

    The fetched block is wrapped in a :class:`Tensor` *on the fetcher thread*
    under the consumer's memory tracker, so the in-flight buffer counts
    towards the worker's peak exactly like a resident halo block — the
    3/N-instead-of-2/N accounting of §3.4.
    """

    def __init__(self, fetch_fn):
        self._fetch = fetch_fn
        self._tracker = active_tracker()
        self._thread: Optional[threading.Thread] = None
        self._q: Optional[int] = None
        self._result: Optional[Tensor] = None
        self._error: Optional[BaseException] = None

    @property
    def busy(self) -> bool:
        return self._thread is not None

    def issue(self, q: int, rows: np.ndarray) -> None:
        def _run() -> None:
            try:
                if self._tracker is not None:
                    with track_memory(self._tracker):
                        self._result = Tensor(self._fetch(q, rows))
                else:
                    self._result = Tensor(self._fetch(q, rows))
            except BaseException as exc:  # noqa: BLE001 - re-raised in take()
                self._error = exc

        self._q = q
        self._result = None
        self._error = None
        self._thread = threading.Thread(target=_run, name="sar-prefetch", daemon=True)
        self._thread.start()

    def take(self, q: int, rows: np.ndarray) -> Tensor:
        thread, expected = self._thread, self._q
        self._thread = None
        if thread is None or expected != q:
            # Defensive fallback; the engine always consumes in issue order.
            return Tensor(self._fetch(q, rows))
        thread.join()
        if self._error is not None:
            raise self._error
        result = self._result
        self._result = None
        return result


class SequentialAggregation(Function):
    """Autograd wrapper: ``forward`` runs the engine's sequential sweep,
    ``backward`` the rematerializing sweep plus the error exchange."""

    def forward(self, kernel: BlockKernel, engine: "SequentialAggregationEngine",
                key: str, *tensors: Tensor) -> np.ndarray:
        out = engine.run_forward(kernel, key)
        self.save_for_backward(kernel, engine, key)
        return out

    def backward(self, grad_out: np.ndarray):
        kernel, engine, key = self.saved
        return engine.run_backward(kernel, key, grad_out)


class SequentialAggregationEngine:
    """Owns the SAR / domain-parallel block loop for every aggregator."""

    def __init__(self, comm: Communicator, config: SARConfig):
        self.comm = comm
        self.config = config
        #: high-water mark of simultaneously resident remote halo blocks
        #: (fetched tensors plus at most one in-flight prefetch) across every
        #: aggregation this engine has run.  SAR keeps this at 1 (2 with
        #: prefetching); vanilla DP grows it to the number of remote blocks.
        self.max_resident_remote_blocks = 0
        #: optional :class:`~repro.store.PartitionedKVStore` (attached via
        #: ``DistributedGraph.attach_feature_store``).  When an aggregation's
        #: payload *is* the store's resident feature matrix — layer 0 of
        #: every step — halo fetches route through the store's deduplicating
        #: hot-row cache instead of raw ``comm.fetch``, and the payload is
        #: not re-published (the store's rows are already remotely readable
        #: under its stream key).
        self.feature_store = None

    # ------------------------------------------------------------------ #
    def aggregate(self, kernel: BlockKernel, key: str, *tensors: Tensor) -> Tensor:
        """Run ``kernel`` through the engine as a differentiable op.

        ``tensors`` are the kernel's differentiable inputs; their order
        defines the order of the gradients ``kernel.backward_finalize``
        returns.
        """
        return SequentialAggregation.apply(kernel, self, key, *tensors)

    def reset_peak_resident(self) -> None:
        self.max_resident_remote_blocks = 0

    # ------------------------------------------------------------------ #
    def run_forward(self, kernel: BlockKernel, key: str) -> np.ndarray:
        payload = kernel.payload()
        kernel._payload = payload
        if not self._store_covers(payload):
            # Covered payloads are already published under the store's
            # stream key (and peers, running the same replicated control
            # flow over the same covered payload, fetch through their own
            # attached store) — re-publishing would copy the full feature
            # matrix into the shared store every step on the mp backend.
            self.comm.publish(f"{key}/h", payload)
        save_halos = self.config.is_domain_parallel
        kernel.forward_init()
        for p in kernel.passes():
            kernel.begin_pass(p, backward=False)
            for q, blk, feats, fetched in self._iter_fetch(p, key, payload,
                                                          tag="forward_halo"):
                if fetched is not None and save_halos:
                    kernel.save_halo(p, q, fetched)
                kernel.forward_block(p, q, blk, feats)
            kernel.end_pass(p, backward=False)
        return kernel.forward_finalize()

    def run_backward(self, kernel: BlockKernel, key: str,
                     grad_out: np.ndarray) -> Tuple[np.ndarray, ...]:
        kernel.backward_init(grad_out)
        rank = self.comm.rank
        refetch = kernel.grad_class == "nonlinear" and self.config.is_sar
        for p in kernel.passes():
            kernel.begin_pass(p, backward=True)
            if refetch:
                # Case 2: re-fetch remote payload rows (the paper's ~50 %
                # communication overhead for attention/relational models).
                blocks = self._iter_fetch(p, key, kernel._payload,
                                          tag="backward_refetch")
            else:
                blocks = self._iter_resident(p, kernel)
            outgoing: Dict[int, np.ndarray] = {}
            for q, blk, feats, _ in blocks:
                error = kernel.backward_block(p, q, blk, feats)
                if q == rank:
                    np.add.at(kernel.error_target(p), blk.required_src_local, error)
                else:
                    outgoing[q] = np.asarray(error, dtype=np.float32)
            kernel.end_pass(p, backward=True)
            err_key = f"{key}/{p.name}/err" if p.name else f"{key}/err"
            received = self.comm.exchange(err_key, outgoing, tag="backward_error")
            p.halo.scatter_add_errors(kernel.error_target(p), received)
        return kernel.backward_finalize()

    # ------------------------------------------------------------------ #
    def _store_covers(self, payload: np.ndarray) -> bool:
        store = self.feature_store
        return store is not None and store.covers(payload)

    def _iter_fetch(self, p: KernelPass, key: str, payload: np.ndarray,
                    tag: str) -> Iterator[Tuple[int, EdgeBlock, np.ndarray, Optional[Tensor]]]:
        """Yield ``(q, block, feats, fetched)`` with fetching, retention, and
        (optionally) the prefetch pipeline applied.

        ``fetched`` is the remote block wrapped in a tracked :class:`Tensor`
        (``None`` for the local block).  Under SAR the block is dropped as
        soon as its compute finishes; under vanilla DP the caller keeps it
        via ``kernel.save_halo``.

        When the attached feature store covers the payload, remote rows come
        from the store's deduplicating hot-row cache (same values, fewer
        bytes on the wire) instead of a raw ``comm.fetch``.
        """
        comm, config = self.comm, self.config
        rank = comm.rank
        fetch_key = f"{key}/h"
        if self._store_covers(payload):
            store = self.feature_store

            def fetch_fn(q: int, rows: np.ndarray) -> np.ndarray:
                return store.fetch_rows(q, rows)
        else:

            def fetch_fn(q: int, rows: np.ndarray) -> np.ndarray:
                return comm.fetch(q, fetch_key, rows=rows, tag=tag)

        order = [q for q in block_order(rank, comm.world_size)
                 if p.blocks[q].num_edges > 0]
        remotes = [q for q in order if q != rank]
        pipeline: Optional[_PrefetchPipeline] = None
        next_prefetch = 0
        if config.prefetch and remotes:
            pipeline = _PrefetchPipeline(fetch_fn)
            pipeline.issue(remotes[0], p.blocks[remotes[0]].required_src_local)
            next_prefetch = 1

        resident: List[Tensor] = []
        keep_all = config.is_domain_parallel
        for q in order:
            blk = p.blocks[q]
            if q == rank:
                yield q, blk, payload[blk.required_src_local], None
                continue
            if pipeline is not None:
                fetched = pipeline.take(q, blk.required_src_local)
                if next_prefetch < len(remotes):
                    nq = remotes[next_prefetch]
                    pipeline.issue(nq, p.blocks[nq].required_src_local)
                    next_prefetch += 1
            else:
                fetched = Tensor(fetch_fn(q, blk.required_src_local))
            resident.append(fetched)
            in_flight = 1 if (pipeline is not None and pipeline.busy) else 0
            self.max_resident_remote_blocks = max(
                self.max_resident_remote_blocks, len(resident) + in_flight
            )
            yield q, blk, fetched.data, fetched
            if not keep_all:
                # Sequential rematerialization: the block has been folded into
                # the accumulator; nothing edge- or halo-sized survives.
                resident.clear()

    def _iter_resident(self, p: KernelPass,
                       kernel: BlockKernel) -> Iterator[Tuple[int, EdgeBlock, Optional[np.ndarray], None]]:
        """Backward sweep without re-fetch: linear kernels need no feature
        values; nonlinear kernels under vanilla DP read the halos saved during
        the forward pass."""
        rank = self.comm.rank
        nonlinear = kernel.grad_class == "nonlinear"
        for q in block_order(rank, self.comm.world_size):
            blk = p.blocks[q]
            if blk.num_edges == 0:
                continue
            feats: Optional[np.ndarray] = None
            if nonlinear:
                if q == rank:
                    feats = kernel._payload[blk.required_src_local]
                else:
                    feats = kernel.saved_halo(p, q)
            yield q, blk, feats, None
