"""Configuration of the distributed training engine.

The paper compares three execution modes for domain-parallel full-batch
training; :class:`SARConfig` selects between them:

* ``"dp"`` — vanilla domain-parallel training: remote (halo) features fetched
  during the forward pass are kept alive as part of the computational graph
  (together with per-edge intermediates such as attention coefficients) until
  the backward pass consumes them.
* ``"sar"`` — Sequential Aggregation and Rematerialization: remote features
  are fetched one partition at a time, aggregated incrementally, and
  discarded immediately; during the backward pass the needed pieces of the
  computational graph are rematerialized (re-fetching remote features only
  for case-2 aggregators such as GAT / R-GCN).

The fused-attention-kernel choice (SAR+FAK) is orthogonal and selected by
building the model from :class:`~repro.nn.gat_fused.FusedGATConv` layers.

``prefetch=True`` enables the practical optimization of §3.4: the engine
issues the next remote block's fetch on a background thread while the current
block is being aggregated, overlapping communication with compute.  This
raises the bound on resident partitions from 2 to 3 — the local partition
plus at most two remote halo blocks (the one computing and the one in
flight), i.e. memory scales as 3/N instead of 2/N.
"""

from __future__ import annotations

from dataclasses import dataclass

_VALID_MODES = ("dp", "sar")


@dataclass(frozen=True)
class SARConfig:
    """Execution-mode configuration shared by all distributed aggregation ops."""

    mode: str = "sar"
    #: Overlap the next block's halo fetch (and case-2 backward re-fetch)
    #: with the current block's compute on a background thread; keeps at most
    #: two remote blocks resident instead of one (§3.4).
    prefetch: bool = False
    #: Use the numerically stable running softmax (§3.4).  Disabling it is only
    #: meant for the ablation benchmark that demonstrates why it is needed.
    stable_softmax: bool = True

    def __post_init__(self):
        if self.mode not in _VALID_MODES:
            raise ValueError(f"mode must be one of {_VALID_MODES}, got {self.mode!r}")

    @property
    def is_sar(self) -> bool:
        return self.mode == "sar"

    @property
    def is_domain_parallel(self) -> bool:
        return self.mode == "dp"


#: Convenience instances used throughout examples, tests, and benchmarks.
SAR = SARConfig(mode="sar")
SAR_PREFETCH = SARConfig(mode="sar", prefetch=True)
DOMAIN_PARALLEL = SARConfig(mode="dp")
