"""GraphSage-style neighbour aggregation kernels (paper §3.2).

Two kernels over the shared :class:`~repro.core.seq_agg.SequentialAggregationEngine`:

* :class:`SumMeanKernel` — SAR "case 1": the aggregation is linear, so the
  gradient of the output w.r.t. the inputs does not depend on the input
  values and SAR needs **no** re-fetch of remote features during the backward
  pass; the error for remote features is computed locally and sent straight
  to its owner.  SAR and vanilla domain-parallel training therefore
  communicate exactly the same volume for these layers.
* :class:`PoolingKernel` — element-wise max/min pooling (the GraphSage
  pooling aggregators).  Which source attains the extremum is only known
  given the neighbour *values*, so backpropagation needs them: this is a
  genuine SAR "case 2" workload and the backward pass re-fetches remote
  features, exactly like attention.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import SARConfig
from repro.core.halo import HaloExchange
from repro.core.seq_agg import (
    BlockKernel,
    KernelPass,
    SequentialAggregationEngine,
)
from repro.distributed.comm import Communicator
from repro.partition.shard import EdgeBlock, ShardedGraph
from repro.tensor.sparse import segment_max_np, segment_min_np
from repro.tensor.tensor import Tensor

SUM_OPS = ("sum", "mean")
POOL_OPS = ("max", "min")


class SumMeanKernel(BlockKernel):
    """``out[i] = Σ_{j ∈ N(i)} z_j`` (optionally divided by the global in-degree)."""

    grad_class = "linear"

    def __init__(self, z: Tensor, shard: ShardedGraph, halo: HaloExchange, op: str):
        super().__init__()
        if op not in SUM_OPS:
            raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
        data = z.data
        if data.ndim != 2:
            raise ValueError(f"Distributed sum aggregation expects 2-D features, got {data.shape}")
        self.data = data
        self.shard = shard
        self.op = op
        self._passes = [KernelPass(name="", blocks=shard.blocks, halo=halo)]

    # -- engine interface ------------------------------------------------ #
    def payload(self) -> np.ndarray:
        return self.data

    def passes(self):
        return self._passes

    def forward_init(self) -> None:
        self._acc = np.zeros((self.shard.num_local_nodes, self.data.shape[1]),
                             dtype=self.data.dtype)

    def forward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                      feats: np.ndarray) -> None:
        plan = block.plan()
        if plan is not None:
            self._acc += plan.aggregate_sum(feats)
        else:
            self._acc += block.aggregation_matrix() @ feats

    def forward_finalize(self) -> np.ndarray:
        self.degrees = np.maximum(self.shard.local_in_degrees, 1).astype(self.data.dtype)
        out = self._acc
        del self._acc
        if self.op == "mean":
            out /= self.degrees[:, None]
        return out

    def backward_init(self, grad_out: np.ndarray) -> None:
        # Case 1: the error for a block's source rows is A_{p,q}^T · grad —
        # no remote values are needed, so nothing is re-fetched.
        self._grad = grad_out / self.degrees[:, None] if self.op == "mean" else grad_out
        self._grad_z = np.zeros(self.data.shape, dtype=grad_out.dtype)

    def backward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                       feats: Optional[np.ndarray]) -> np.ndarray:
        plan = block.plan()
        if plan is not None:
            return plan.aggregate_sum_t(self._grad)
        return block.aggregation_matrix(transpose=True) @ self._grad

    def error_target(self, p: KernelPass) -> np.ndarray:
        return self._grad_z

    def backward_finalize(self):
        return (self._grad_z,)


class PoolingKernel(BlockKernel):
    """``out[i] = max_{j ∈ N(i)} z_j`` (element-wise; ``min`` symmetric).

    Nodes with no in-edges aggregate to ``0``.  The backward pass routes each
    output gradient to every source whose value attains the extremum (the
    subgradient convention shared with the single-machine
    :class:`~repro.tensor.sparse.PoolAggregation`), which requires the
    neighbour values — SAR case 2.
    """

    grad_class = "nonlinear"

    def __init__(self, z: Tensor, shard: ShardedGraph, halo: HaloExchange, op: str):
        super().__init__()
        if op not in POOL_OPS:
            raise ValueError(f"op must be 'max' or 'min', got {op!r}")
        data = z.data
        if data.ndim != 2:
            raise ValueError(f"Distributed pooling expects 2-D features, got {data.shape}")
        self.data = data
        self.shard = shard
        self.op = op
        self._passes = [KernelPass(name="", blocks=shard.blocks, halo=halo)]

    # -- engine interface ------------------------------------------------ #
    def payload(self) -> np.ndarray:
        return self.data

    def passes(self):
        return self._passes

    def forward_init(self) -> None:
        fill = -np.inf if self.op == "max" else np.inf
        self._acc = np.full((self.shard.num_local_nodes, self.data.shape[1]), fill,
                            dtype=self.data.dtype)

    def forward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                      feats: np.ndarray) -> None:
        plan = block.plan()
        if plan is not None:
            if self.op == "max":
                np.maximum(self._acc, plan.aggregate_max(feats), out=self._acc)
            else:
                np.minimum(self._acc, plan.aggregate_min(feats), out=self._acc)
            return
        gathered = feats[block.src_index]
        if self.op == "max":
            reduced = segment_max_np(gathered, block.dst_local, self.shard.num_local_nodes)
            np.maximum(self._acc, reduced, out=self._acc)
        else:
            reduced = segment_min_np(gathered, block.dst_local, self.shard.num_local_nodes)
            np.minimum(self._acc, reduced, out=self._acc)

    def forward_finalize(self) -> np.ndarray:
        acc = self._acc
        del self._acc
        self.out = np.where(np.isfinite(acc), acc, 0.0).astype(self.data.dtype, copy=False)
        return self.out

    def backward_init(self, grad_out: np.ndarray) -> None:
        self._grad_out = grad_out
        self._grad_z = np.zeros(self.data.shape, dtype=grad_out.dtype)

    def backward_block(self, p: KernelPass, q: int, block: EdgeBlock,
                       feats: Optional[np.ndarray]) -> np.ndarray:
        gathered = feats[block.src_index]
        mask = gathered == self.out[block.dst_local]
        contrib = np.where(mask, self._grad_out[block.dst_local], 0.0)
        plan = block.plan()
        if plan is not None:
            return plan.segment_sum_src(contrib).astype(self._grad_out.dtype, copy=False)
        error = np.zeros((block.num_required_src, self.data.shape[1]),
                         dtype=self._grad_out.dtype)
        np.add.at(error, block.src_index, contrib)
        return error

    def error_target(self, p: KernelPass) -> np.ndarray:
        return self._grad_z

    def backward_finalize(self):
        return (self._grad_z,)


def make_neighbor_kernel(z: Tensor, shard: ShardedGraph, halo: HaloExchange,
                         op: str) -> BlockKernel:
    """Pick the kernel implementing aggregation ``op`` ("sum"/"mean"/"max"/"min")."""
    if op in POOL_OPS:
        return PoolingKernel(z, shard, halo, op)
    if op in SUM_OPS:
        return SumMeanKernel(z, shard, halo, op)
    raise ValueError(f"op must be one of {SUM_OPS + POOL_OPS}, got {op!r}")


def distributed_neighbor_aggregate(z: Tensor, shard: ShardedGraph, comm: Communicator,
                                   halo: HaloExchange, config: SARConfig, key: str,
                                   op: str = "mean",
                                   engine: Optional[SequentialAggregationEngine] = None
                                   ) -> Tensor:
    """Functional wrapper used by :class:`repro.core.dist_graph.DistributedGraph`."""
    engine = engine or SequentialAggregationEngine(comm, config)
    return engine.aggregate(make_neighbor_kernel(z, shard, halo, op), key, z)
