"""Distributed sum/mean neighbour aggregation — SAR "case 1" (paper §3.2).

For GraphSage-style aggregation the gradient of the aggregator output with
respect to its inputs does not depend on the input values (the aggregation is
linear), so SAR needs **no** re-fetch of remote features during the backward
pass: the error for remote features is computed locally and sent straight to
its owner.  Consequently SAR and vanilla domain-parallel training communicate
exactly the same volume for these layers — the only difference is that
vanilla DP keeps every fetched halo block alive in the computational graph
until the backward pass, while SAR discards each block right after it has
been folded into the accumulator.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.config import SARConfig
from repro.core.halo import HaloExchange
from repro.distributed.comm import Communicator
from repro.partition.shard import ShardedGraph
from repro.tensor.tensor import Function, Tensor


def _block_order(rank: int, world_size: int) -> List[int]:
    """Process the local block first, then remote partitions round-robin.

    Starting each worker's remote sweep at ``rank + 1`` spreads simultaneous
    fetches across different owners instead of hammering partition 0 first —
    the same scheduling the SAR library uses.
    """
    return [rank] + [(rank + offset) % world_size for offset in range(1, world_size)]


def _halo_retention(config: SARConfig) -> Optional[int]:
    """How many fetched remote blocks stay resident simultaneously.

    ``None`` means unbounded (vanilla DP keeps them all for the backward
    pass); SAR keeps one, or two when prefetching is modeled.
    """
    if config.is_domain_parallel:
        return None
    return 2 if config.prefetch else 1


class DistributedSumAggregation(Function):
    """``out[i] = Σ_{j ∈ N(i)} z_j`` (optionally divided by the global in-degree)."""

    def forward(self, z: Tensor, shard: ShardedGraph, comm: Communicator,
                halo: HaloExchange, config: SARConfig, key: str, op: str) -> np.ndarray:
        if op not in ("sum", "mean"):
            raise ValueError(f"op must be 'sum' or 'mean', got {op!r}")
        data = z.data
        if data.ndim != 2:
            raise ValueError(f"Distributed sum aggregation expects 2-D features, got {data.shape}")
        num_local = shard.num_local_nodes
        comm.publish(f"{key}/z", data)

        acc = np.zeros((num_local, data.shape[1]), dtype=data.dtype)
        retention = _halo_retention(config)
        resident: Deque[Tensor] = deque(maxlen=retention) if retention else deque()
        saved_halos: List[Optional[Tensor]] = [None] * shard.num_parts

        for q in _block_order(shard.rank, shard.num_parts):
            block = shard.blocks[q]
            if block.num_edges == 0:
                continue
            if q == shard.rank:
                feats = data[block.required_src_local]
            else:
                fetched = Tensor(
                    comm.fetch(q, f"{key}/z", rows=block.required_src_local, tag="forward_halo")
                )
                resident.append(fetched)
                if config.is_domain_parallel:
                    saved_halos[q] = fetched
                feats = fetched.data
            acc += block.aggregation_matrix() @ feats

        degrees = np.maximum(shard.local_in_degrees, 1).astype(data.dtype)
        if op == "mean":
            acc /= degrees[:, None]
        self.save_for_backward(shard, comm, halo, config, key, op, degrees,
                               data.shape, saved_halos)
        return acc

    def backward(self, grad_out):
        shard, comm, halo, config, key, op, degrees, z_shape, saved_halos = self.saved
        grad = grad_out / degrees[:, None] if op == "mean" else grad_out
        grad_z = np.zeros(z_shape, dtype=grad_out.dtype)
        outgoing: Dict[int, np.ndarray] = {}
        for q in _block_order(shard.rank, shard.num_parts):
            block = shard.blocks[q]
            if block.num_edges == 0:
                continue
            # Case 1: the error for the block's source rows is A_{p,q}^T · grad —
            # no remote values are needed, so nothing is re-fetched.
            error = block.aggregation_matrix(transpose=True) @ grad
            if q == shard.rank:
                np.add.at(grad_z, block.required_src_local, error)
            else:
                outgoing[q] = error.astype(np.float32)
        received = comm.exchange(f"{key}/err", outgoing, tag="backward_error")
        halo.scatter_add_errors(grad_z, received)
        return (grad_z,)


def distributed_neighbor_aggregate(z: Tensor, shard: ShardedGraph, comm: Communicator,
                                   halo: HaloExchange, config: SARConfig, key: str,
                                   op: str = "mean") -> Tensor:
    """Functional wrapper used by :class:`repro.core.dist_graph.DistributedGraph`."""
    return DistributedSumAggregation.apply(z, shard, comm, halo, config, key, op)
