"""Numerically stable running softmax for incremental attention aggregation.

SAR aggregates the attention-weighted neighbour sum one remote partition at a
time, so the usual "subtract the max before exponentiating" trick cannot be
applied directly — the maximum over *all* of a node's incoming edges is not
known until the last partition has been processed.  Section 3.4 of the paper
keeps a *running* maximum instead: whenever a new block raises the maximum,
the already-accumulated numerator and denominator are rescaled by
``exp(old_max − new_max)``.

:class:`RunningSoftmaxAccumulator` implements exactly that scheme (the same
idea as online/streaming softmax in FlashAttention-style kernels).  Setting
``stable=False`` reproduces the naive accumulation the paper warns about: it
overflows and destabilizes training as soon as attention logits are large.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.edge_plan import EdgePlan
from repro.tensor.sparse import segment_max_np, segment_sum_np

_TINY = np.float64(np.finfo(np.float32).tiny)


class RunningSoftmaxAccumulator:
    """Accumulates ``Σ_e softmax(e) · v_e`` over edge blocks arriving sequentially.

    Parameters
    ----------
    num_nodes:
        Number of destination nodes (rows of the accumulated output).
    num_heads:
        Number of attention heads.
    feature_dim:
        Dimensionality of the aggregated values per head.
    dtype:
        Floating dtype of the accumulators.
    stable:
        Use the running-max rescaling scheme (default).  ``False`` accumulates
        raw exponentials, which is only safe for small logits.
    """

    def __init__(self, num_nodes: int, num_heads: int, feature_dim: int,
                 dtype=np.float32, stable: bool = True):
        self.num_nodes = num_nodes
        self.num_heads = num_heads
        self.feature_dim = feature_dim
        self.stable = stable
        self.dtype = dtype
        self.running_max = np.full((num_nodes, num_heads), -np.inf, dtype=dtype)
        self.numerator = np.zeros((num_nodes, num_heads, feature_dim), dtype=dtype)
        self.denominator = np.zeros((num_nodes, num_heads), dtype=dtype)

    # ------------------------------------------------------------------ #
    def add_block(self, logits: np.ndarray, values: np.ndarray, dst: np.ndarray,
                  aggregate_fn, plan: Optional[EdgePlan] = None) -> None:
        """Fold one edge block into the accumulators.

        Parameters
        ----------
        logits:
            Per-edge attention logits of shape ``(E_block, H)``.
        values:
            Per-source-node values of shape ``(S_block, H, D)``.
        dst:
            Per-edge destination index (into the ``num_nodes`` rows).
        aggregate_fn:
            Callable ``(weights) -> (num_nodes, H, D)`` computing the
            weighted sum of ``values`` into destination rows; the caller
            provides it because the sparse structure (and its cached CSR) is
            block-specific.
        plan:
            Optional :class:`~repro.tensor.edge_plan.EdgePlan` of the block's
            edges; the running max/sum statistics then reuse its cached sort
            instead of re-deriving sparsity per block visit.
        """
        if logits.shape[1] != self.num_heads:
            raise ValueError(
                f"logits has {logits.shape[1]} heads, accumulator expects {self.num_heads}"
            )
        if self.stable:
            block_max = segment_max_np(logits, dst, self.num_nodes, plan=plan)
            new_max = np.maximum(self.running_max, block_max)
            # Nodes that still have no incoming edges keep -inf; exp(-inf - -inf)
            # would be NaN, so rescaling is guarded.
            safe_new_max = np.where(np.isfinite(new_max), new_max, 0.0)
            rescale = np.where(
                np.isfinite(self.running_max),
                np.exp(self.running_max - safe_new_max),
                0.0,
            ).astype(self.dtype)
            self.numerator *= rescale[:, :, None]
            self.denominator *= rescale
            self.running_max = new_max
            weights = np.exp(logits - safe_new_max[dst])
        else:
            weights = np.exp(logits)
        self.denominator += segment_sum_np(weights, dst, self.num_nodes, plan=plan)
        self.numerator += aggregate_fn(weights)

    # ------------------------------------------------------------------ #
    def finalize(self) -> np.ndarray:
        """Return the normalized aggregation ``numerator / denominator``."""
        denom = np.maximum(self.denominator, _TINY).astype(self.dtype)
        return self.numerator / denom[:, :, None]

    def state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(running_max, denominator)`` — what the backward pass needs
        to rematerialize per-edge attention coefficients block by block."""
        return self.running_max, np.maximum(self.denominator, _TINY).astype(self.dtype)
