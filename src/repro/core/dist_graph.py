"""Distributed graph handles.

A :class:`DistributedGraph` (or :class:`DistributedHeteroGraph`) is the
object a worker passes to unmodified model code in place of a regular
:class:`~repro.graph.graph.Graph`: the GNN layers detect it and route their
neighbour aggregation through the SAR / domain-parallel machinery.  This
mirrors how the SAR library swaps DGL's graph for a ``GraphShardManager``
while the model definition stays untouched.

Each handle owns:

* the worker's :class:`~repro.partition.shard.ShardedGraph` (local vertices,
  the ``G_{p,q}`` edge blocks, local slices of node data),
* the communicator,
* the :class:`~repro.core.config.SARConfig` execution mode,
* a shared :class:`~repro.core.seq_agg.SequentialAggregationEngine` that all
  of the handle's aggregation ops (SAGE sum/mean/max/min, GAT, R-GCN) run
  through,
* the one-time halo routing information, and
* a per-step operation counter that generates identical publish/fetch keys on
  every worker (the models are replicas, so the op sequence is identical).
"""

from __future__ import annotations

from typing import Any, Dict, List, MutableMapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SARConfig, SAR
from repro.core.gat_dist import GATKernel
from repro.core.halo import HaloExchange
from repro.core.rgcn_dist import RGCNKernel
from repro.core.sage_dist import make_neighbor_kernel
from repro.core.seq_agg import SequentialAggregationEngine
from repro.distributed.comm import Communicator
from repro.partition.shard import (
    EdgeBlock,
    ShardedGraph,
    ShardedHeteroGraph,
    restrict_block_to_dst,
)
from repro.tensor.tensor import Tensor
from repro.utils.lru import LRUDict

#: distinct restriction keys a handle keeps prepared at once; small because
#: each entry holds per-batch block grids (O(edges) each) for a whole sweep.
RESTRICTION_CACHE_CAPACITY = 4


class _DistributedGraphBase:
    """Shared bookkeeping for the homogeneous and heterogeneous handles."""

    def __init__(self, comm: Communicator, config: SARConfig):
        self.comm = comm
        self.config = config
        #: the sequential-aggregation engine every layer's aggregation runs
        #: through; owns block scheduling, retention, prefetch, and the error
        #: exchange for all kernels.
        self.engine = SequentialAggregationEngine(comm, config)
        self._step = 0
        self._op_counter = 0

    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def world_size(self) -> int:
        return self.comm.world_size

    def begin_step(self) -> None:
        """Start a new training/inference iteration (collective call).

        Clears the previous iteration's published tensors and advances the
        key namespace so stale data can never be fetched by a faster worker.
        """
        self.comm.barrier()
        self.comm.clear_published()
        self._step += 1
        self._op_counter = 0

    @property
    def step(self) -> int:
        """Iterations started so far (advanced by every :meth:`begin_step`).

        Collective callers that publish under their own keys (the serving
        path) fold this into the key so a fast worker can never pair a fresh
        fetch with a peer's stale, not-yet-cleared publish from the previous
        step.
        """
        return self._step

    def _next_key(self, name: str) -> str:
        self._op_counter += 1
        return f"s{self._step}/{name}{self._op_counter}"

    # ------------------------------------------------------------------ #
    @property
    def feature_store(self):
        """The attached :class:`~repro.store.PartitionedKVStore`, or ``None``."""
        return self.engine.feature_store

    def attach_feature_store(self, store) -> None:
        """Route halo fetches of the store's rows through its hot-row cache.

        ``store`` must be this worker's :class:`~repro.store.
        PartitionedKVStore` (or ``None`` to detach).  Whenever an
        aggregation's payload *is* the store's resident feature matrix —
        layer 0 of every step — the engine fetches remote source rows via
        :meth:`~repro.store.PartitionedKVStore.fetch_rows` instead of a raw
        ``comm.fetch``, so frontier rows repeated across batches and steps
        are served from the byte-bounded cache.  Every worker must attach
        (or detach) at the same point — replicated control flow, like every
        other collective discipline on this handle.
        """
        if store is not None:
            for attr in ("covers", "fetch_rows"):
                if not callable(getattr(store, attr, None)):
                    raise TypeError(
                        f"attach_feature_store needs a partitioned store with "
                        f"covers()/fetch_rows(); {type(store).__name__} has no {attr}"
                    )
        self.engine.feature_store = store


class DistributedGraph(_DistributedGraphBase):
    """Worker-local handle over a partitioned homogeneous graph."""

    def __init__(self, shard: ShardedGraph, comm: Communicator,
                 config: SARConfig = SAR,
                 restriction_cache_capacity: Optional[int] = None):
        super().__init__(comm, config)
        self.shard = shard
        self.halo = HaloExchange(comm, shard.blocks, name="homo")
        #: per-conv-layer ``(restricted shard view, halo)`` pairs installed by
        #: :meth:`enable_mfg`; ``None`` means unrestricted execution.
        self._mfg_layers: Optional[List[Tuple[ShardedGraph, HaloExchange]]] = None
        self._mfg_active = False
        self._mfg_cursor = 0
        #: prepared-restriction cache keyed by the caller's structural key
        #: (e.g. ``("layerwise", batch_size)`` for the inference batch
        #: grids).  Restrictions are deterministic per graph, so reusing the
        #: prepared layers skips both the block restriction and the halo
        #: routing exchange on every call after the first — the distributed
        #: analogue of the single-machine structural plan cache.  Bounded:
        #: each entry pins a full list of ``(shard view, halo)`` pairs, so
        #: the LRU drops the least recently used key (and thereby frees its
        #: grids) once :data:`RESTRICTION_CACHE_CAPACITY` distinct keys have
        #: been evaluated.  Eviction only costs re-preparation on a later
        #: revisit — never correctness — but every worker must keep the same
        #: capacity so the replicated control flow re-prepares collectively.
        #: ``restriction_cache_capacity`` overrides the default — the
        #: distributed serving backend sizes it from
        #: ``ServingConfig.restriction_slots`` (one slot per hot seed set).
        self.restriction_cache: MutableMapping[Any, Any] = LRUDict(
            RESTRICTION_CACHE_CAPACITY
            if restriction_cache_capacity is None
            else restriction_cache_capacity
        )

    def in_edge_index(self):
        """This worker's complete per-local-dst in-edge buckets.

        Delegates to :meth:`repro.partition.shard.ShardedGraph.
        in_edge_index` (cached there): destinations local, sources and edge
        ids global, buckets in ascending global edge order — the structure
        the serving receptive-field walk expands through.
        """
        return self.shard.in_edge_index()

    # -- graph-like interface ------------------------------------------- #
    @property
    def num_nodes(self) -> int:
        """Number of *local* nodes (the rows of this worker's feature matrix)."""
        return self.shard.num_local_nodes

    @property
    def num_total_nodes(self) -> int:
        return self.shard.num_total_nodes

    @property
    def ndata(self) -> Dict[str, np.ndarray]:
        return self.shard.node_data

    @property
    def global_node_ids(self) -> np.ndarray:
        return self.shard.global_node_ids

    def in_degrees(self) -> np.ndarray:
        """Global in-degree of each local node."""
        return self.shard.local_in_degrees

    def __repr__(self) -> str:
        return (
            f"DistributedGraph(rank={self.rank}/{self.world_size}, mode={self.config.mode!r}, "
            f"local_nodes={self.num_nodes}, halo={self.shard.halo_size})"
        )

    # -- MFG restriction (paper Appendix B, executed) --------------------- #
    def begin_step(self) -> None:
        super().begin_step()
        self._mfg_cursor = 0

    def install_restricted_layers(self, layer_blocks: Sequence[List[EdgeBlock]],
                                  name: str = "smp",
                                  recompute_in_degrees: bool = False) -> None:
        """Install per-conv-layer substitute block grids (collective call).

        Generalization shared by the persistent MFG restriction
        (:meth:`enable_mfg`), per-batch sampled mini-batch training
        (:mod:`repro.sample.distributed` installs a fresh grid every batch),
        and per-batch layer-wise inference
        (:func:`repro.sample.inference.distributed_layerwise_logits`): conv
        layer ``l``'s aggregation runs over ``layer_blocks[l]``, so halo
        fetches (and the backward error exchange) shrink to the rows those
        edges actually touch, while local feature matrices keep their full
        ``(num_local_nodes, F)`` height and the replicated model code is
        untouched.

        Parameters
        ----------
        layer_blocks:
            One ``world_size``-long :class:`~repro.partition.shard.EdgeBlock`
            grid per conv layer, in input → output layer order; the step's
            ``l``-th aggregation is dispatched onto ``layer_blocks[l]`` (the
            replicas issue aggregations in identical order, so no layer ids
            need to travel with the tensors).
        name:
            Key prefix namespacing the per-layer
            :class:`~repro.core.halo.HaloExchange` routing exchanges.
        recompute_in_degrees:
            Must be ``True`` for *sampled* grids so mean aggregation
            normalizes by the sampled degree; leave ``False`` when every
            destination keeps its complete in-neighbourhood (MFG restriction,
            layer-wise inference) so the full-graph degrees are reused.

        Notes
        -----
        Collective: every worker must call this at the same point with grids
        describing the same global edge set — each restricted layer performs
        its own halo-routing exchange.  The installed grids replace any
        previous restriction; wrap temporary installs with
        :meth:`snapshot_restriction` / :meth:`restore_restriction`.

        Returns the prepared ``(restricted shard view, halo)`` pairs so
        callers whose restriction is deterministic — e.g. the layer-wise
        inference batch grids — can keep them and reinstall later via
        :meth:`install_prepared_layers` without re-deriving the routing.
        """
        layers: List[Tuple[ShardedGraph, HaloExchange]] = []
        for layer, blocks in enumerate(layer_blocks):
            halo = HaloExchange(self.comm, blocks, name=f"{name}{layer}-homo")
            layers.append((
                self.shard.with_blocks(list(blocks),
                                       recompute_in_degrees=recompute_in_degrees),
                halo,
            ))
        self.install_prepared_layers(layers)
        return layers

    def install_prepared_layers(
        self, layers: Sequence[Tuple[ShardedGraph, HaloExchange]]
    ) -> None:
        """Reinstall previously prepared restriction layers (local-only call).

        Unlike :meth:`install_restricted_layers`, this performs **no**
        collective work — the shard views and halo routings were prepared
        earlier — so a cached restriction costs nothing on the wire to put
        back.  All workers must still agree on *which* prepared grids are
        active (the usual replicated-control-flow discipline), since the
        halos' per-step fetches are collective.
        """
        self._mfg_layers = list(layers)
        self._mfg_active = True
        self._mfg_cursor = 0

    def clear_restriction(self) -> None:
        """Drop any installed restriction; aggregations run unrestricted again."""
        self._mfg_layers = None
        self._mfg_active = False
        self._mfg_cursor = 0

    def snapshot_restriction(self):
        """Capture the currently installed restriction (opaque token).

        Lets a temporary restriction user — e.g. layer-wise inference, which
        installs a fresh single-layer grid per batch — put back whatever was
        installed before it ran (a persistent MFG grid, or nothing) via
        :meth:`restore_restriction`, instead of clobbering it.
        """
        return (self._mfg_layers, self._mfg_active)

    def restore_restriction(self, snapshot) -> None:
        """Reinstall a restriction captured by :meth:`snapshot_restriction`."""
        self._mfg_layers, self._mfg_active = snapshot
        self._mfg_cursor = 0

    def enable_mfg(self, layer_masks: Sequence[np.ndarray]) -> None:
        """Install per-layer MFG-restricted block grids (collective call).

        Parameters
        ----------
        layer_masks:
            The ``num_layers + 1`` global boolean masks — each shaped
            ``(num_total_nodes,)`` — from
            :func:`repro.graph.mfg.message_flow_masks` over the
            *unpartitioned* graph.  Conv layer ``l``'s aggregation then runs
            over blocks whose edges all feed a destination required at level
            ``l + 1``.

        Notes
        -----
        The restriction persists across steps until :meth:`clear_restriction`
        (evaluation toggles it off with :meth:`set_mfg_active`).  Because
        every required destination keeps its complete in-neighbourhood in
        original edge order, seed-row outputs under the restriction are
        bit-identical to the unrestricted pass.
        """
        if len(layer_masks) < 2:
            raise ValueError("layer_masks needs at least 2 entries (input and output level)")
        layer_blocks: List[List[EdgeBlock]] = []
        for layer in range(len(layer_masks) - 1):
            mask = np.asarray(layer_masks[layer + 1], dtype=bool)
            if mask.shape != (self.num_total_nodes,):
                raise ValueError(
                    f"layer_masks[{layer + 1}] must cover all {self.num_total_nodes} "
                    f"global nodes, got shape {mask.shape}"
                )
            dst_mask = mask[self.shard.global_node_ids]
            layer_blocks.append([restrict_block_to_dst(b, dst_mask) for b in self.shard.blocks])
        self.install_restricted_layers(layer_blocks, name="mfg")

    @property
    def mfg_active(self) -> bool:
        """Whether aggregations currently run over the restricted block grids."""
        return self._mfg_active and self._mfg_layers is not None

    def set_mfg_active(self, active: bool) -> None:
        """Toggle the installed restriction (evaluation needs full-graph rows)."""
        if active and self._mfg_layers is None:
            raise RuntimeError("enable_mfg() must be called before activating MFG")
        self._mfg_active = bool(active)

    def _layer_context(self, what: str) -> Tuple[ShardedGraph, HaloExchange]:
        """The (shard, halo) pair the next aggregation runs over.

        Under MFG restriction, aggregations are dispatched to the restricted
        layers in call order — the models are replicas, so conv layer ``l``
        issues the step's ``l``-th aggregation on every worker.
        """
        if not (self._mfg_active and self._mfg_layers is not None):
            return self.shard, self.halo
        layer = self._mfg_cursor
        if layer >= len(self._mfg_layers):
            raise RuntimeError(
                f"MFG restriction covers {len(self._mfg_layers)} conv layers but the "
                f"model issued a {layer + 1}th aggregation ({what}) this step"
            )
        self._mfg_cursor += 1
        return self._mfg_layers[layer]

    # -- aggregation entry points (called by the nn layers) -------------- #
    def aggregate_neighbors(self, z: Tensor, op: str = "mean") -> Tensor:
        """Neighbour aggregation over the full (distributed) neighbourhood.

        ``op`` is ``"sum"``/``"mean"`` (linear, SAR case 1) or ``"max"``/
        ``"min"`` (pooling, SAR case 2: the backward pass re-fetches remote
        features to locate the extremal sources).
        """
        shard, halo = self._layer_context("sage")
        kernel = make_neighbor_kernel(z, shard, halo, op)
        return self.engine.aggregate(kernel, self._next_key("sage"), z)

    def gat_aggregate(self, z: Tensor, score_dst: Tensor, score_src: Tensor,
                      negative_slope: float = 0.2, fused: bool = False) -> Tensor:
        """Attention aggregation over the full (distributed) neighbourhood (case 2)."""
        shard, halo = self._layer_context("gat")
        kernel = GATKernel(z, score_dst, score_src, shard, halo,
                           self.config, negative_slope, fused)
        return self.engine.aggregate(kernel, self._next_key("gat"),
                                     z, score_dst, score_src)

    # -- non-learnable propagation (Correct & Smooth) --------------------- #
    def propagate(self, values: np.ndarray, normalization: str = "mean") -> np.ndarray:
        """One round of non-learnable message propagation (no autograd).

        Used by Correct & Smooth, which the paper implements "within the same
        framework as SAR" because it is the same kind of neighbourhood
        aggregation, just without trainable parameters or a backward pass.
        ``normalization`` is ``"mean"`` (divide by in-degree) or ``"sym"``
        (symmetric :math:`D^{-1/2} A D^{-1/2}` using global degrees).
        """
        if normalization not in ("mean", "sym", "none"):
            raise ValueError(f"Unknown normalization {normalization!r}")
        key = self._next_key("prop")
        values = np.asarray(values, dtype=np.float32)
        out_degrees = self._global_out_degrees()
        if normalization == "sym":
            scaled = values / np.sqrt(np.maximum(out_degrees, 1.0))[:, None]
        else:
            scaled = values
        self.comm.publish(f"{key}/v", scaled)
        acc = np.zeros((self.num_nodes, values.shape[1]), dtype=np.float32)
        for q in range(self.world_size):
            block = self.shard.blocks[q]
            if block.num_edges == 0:
                continue
            if q == self.rank:
                feats = scaled[block.required_src_local]
            else:
                feats = self.comm.fetch(q, f"{key}/v", rows=block.required_src_local,
                                        tag="propagate")
            acc += block.aggregation_matrix() @ feats
        degrees = np.maximum(self.shard.local_in_degrees, 1).astype(np.float32)
        if normalization == "mean":
            acc /= degrees[:, None]
        elif normalization == "sym":
            acc /= np.sqrt(degrees)[:, None]
        self.comm.barrier()
        return acc

    def _global_out_degrees(self) -> np.ndarray:
        """Global out-degree of each local node (cached; needs one exchange)."""
        cached = getattr(self, "_out_degree_cache", None)
        if cached is not None:
            return cached
        # Each edge s→d contributes to s's out-degree; the owner of d knows the
        # edge, so workers exchange per-source counts for remote sources.
        local_counts = np.zeros(self.num_nodes, dtype=np.float64)
        outgoing: Dict[int, np.ndarray] = {}
        for q in range(self.world_size):
            block = self.shard.blocks[q]
            if block.num_edges == 0:
                continue
            counts = np.bincount(block.src_index,
                                 minlength=block.num_required_src).astype(np.float64)
            if q == self.rank:
                np.add.at(local_counts, block.required_src_local, counts)
            else:
                outgoing[q] = counts
        received = self.comm.exchange("setup/out_degrees", outgoing, tag="setup")
        self.halo.scatter_add_errors(local_counts[:, None],
                                     {p: v[:, None] for p, v in received.items()})
        self._out_degree_cache = local_counts
        return local_counts


class DistributedHeteroGraph(_DistributedGraphBase):
    """Worker-local handle over a partitioned heterogeneous (relational) graph."""

    def __init__(self, shard: ShardedHeteroGraph, comm: Communicator,
                 config: SARConfig = SAR):
        super().__init__(comm, config)
        self.shard = shard
        self.halos: Dict[str, HaloExchange] = {
            relation: HaloExchange(comm, blocks, name=f"rel-{relation}")
            for relation, blocks in shard.relation_blocks.items()
        }

    @property
    def num_nodes(self) -> int:
        return self.shard.num_local_nodes

    @property
    def num_total_nodes(self) -> int:
        return self.shard.num_total_nodes

    @property
    def ndata(self) -> Dict[str, np.ndarray]:
        return self.shard.node_data

    @property
    def global_node_ids(self) -> np.ndarray:
        return self.shard.global_node_ids

    @property
    def relation_names(self) -> Sequence[str]:
        return self.shard.relation_names

    def __repr__(self) -> str:
        return (
            f"DistributedHeteroGraph(rank={self.rank}/{self.world_size}, "
            f"mode={self.config.mode!r}, local_nodes={self.num_nodes}, "
            f"relations={list(self.relation_names)})"
        )

    def rgcn_aggregate(self, x: Tensor, relation_weights: Tensor,
                       relation_names: Sequence[str], in_features: int,
                       out_features: int) -> Tensor:
        """Relational aggregation over the full (distributed) neighbourhood (case 2)."""
        missing = [r for r in relation_names if r not in self.shard.relation_blocks]
        if missing:
            raise KeyError(f"Relations {missing} are not present in this graph shard")
        kernel = RGCNKernel(x, relation_weights, self.shard, self.halos,
                            relation_names, in_features, out_features)
        return self.engine.aggregate(kernel, self._next_key("rgcn"),
                                     x, relation_weights)
